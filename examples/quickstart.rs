//! Quickstart: align a graph with a shuffled, lightly perturbed copy of
//! itself and score the result on all five quality measures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphalign::grasp::Grasp;
use graphalign::Aligner;
use graphalign_gen::powerlaw_cluster;
use graphalign_metrics::evaluate;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

fn main() {
    // 1. A scale-free graph with clustering (the kind the paper's intro
    //    motivates: social networks, PPI networks, road networks).
    let graph = powerlaw_cluster(400, 5, 0.5, 42);
    println!(
        "source graph: {} nodes, {} edges, avg degree {:.1}",
        graph.node_count(),
        graph.edge_count(),
        graph.avg_degree()
    );

    // 2. The benchmark protocol: permute node ids (so ids carry no signal)
    //    and remove 1% of the target's edges.
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.01);
    let instance = make_instance(&graph, &noise, 7);
    println!(
        "target graph: {} edges after 1% one-way noise + node permutation",
        instance.target.edge_count()
    );

    // 3. Align with GRASP (spectral signatures + JV assignment).
    let aligner = Grasp::default();
    let alignment = aligner
        .align(&instance.source, &instance.target)
        .expect("alignment succeeds on a connected instance");

    // 4. Score against the hidden ground truth.
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    println!("\nGRASP results:");
    println!("  accuracy (node correctness) : {:.1}%", 100.0 * report.accuracy);
    println!("  MNC (neighborhood Jaccard)  : {:.1}%", 100.0 * report.mnc);
    println!("  EC  (edge correctness)      : {:.1}%", 100.0 * report.ec);
    println!("  ICS                         : {:.1}%", 100.0 * report.ics);
    println!("  S3  (symmetric substructure): {:.1}%", 100.0 * report.s3);
}
