//! Protein-interaction network alignment: the paper's biology scenario —
//! "which proteins perform *similar roles* in diverse species".
//!
//! A base yeast-like PPI network is aligned against variants that add
//! candidate interactions (the MultiMagna protocol of §6.5). Because the
//! goal is *functional* correspondence, the structural measures (EC, S³,
//! MNC) matter as much as node accuracy; we report all of them for
//! IsoRank — the method born in this domain — and GRASP.
//!
//! ```sh
//! cargo run --release --example ppi_alignment
//! ```

use graphalign::grasp::Grasp;
use graphalign::isorank::IsoRank;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_datasets::evolving::multi_magna_protocol;
use graphalign_gen::powerlaw_cluster;
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_graph::Permutation;
use graphalign_metrics::evaluate;

fn main() {
    // A yeast-like PPI base network (power-law, moderately dense) plus five
    // variants that add 5%..25% low-confidence candidate interactions.
    let base = powerlaw_cluster(350, 8, 0.5, 7);
    let dataset = multi_magna_protocol(base, 11);
    println!(
        "base PPI network: {} proteins, {} interactions",
        dataset.base.node_count(),
        dataset.base.edge_count()
    );
    println!(
        "\n{:<12} {:<8} {:>8} {:>8} {:>8} {:>8}",
        "variant", "method", "acc", "EC", "S3", "MNC"
    );
    println!("{}", "-".repeat(58));

    for variant in &dataset.variants {
        // Scramble the variant's protein ids: correspondence must come from
        // structure alone (unrestricted alignment — no BLAST scores).
        let perm = Permutation::random(variant.graph.node_count(), 5);
        let instance = AlignmentInstance {
            source: dataset.base.clone(),
            target: perm.apply_to_graph(&variant.graph),
            ground_truth: perm.as_slice().to_vec(),
        };
        for (name, alignment) in [
            (
                "IsoRank",
                IsoRank::default()
                    .align_with(
                        &instance.source,
                        &instance.target,
                        AssignmentMethod::JonkerVolgenant,
                    )
                    .expect("IsoRank aligns"),
            ),
            (
                "GRASP",
                Grasp { q: 50, ..Grasp::default() }
                    .align_with(
                        &instance.source,
                        &instance.target,
                        AssignmentMethod::JonkerVolgenant,
                    )
                    .expect("GRASP aligns"),
            ),
        ] {
            let r =
                evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
            println!(
                "{:<12} {:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                variant.label,
                name,
                100.0 * r.accuracy,
                100.0 * r.ec,
                100.0 * r.s3,
                100.0 * r.mnc,
            );
        }
    }
    println!(
        "\nAs in the paper's Figure 10, quality decays as variants drift from\n\
         the base network; IsoRank's degree prior keeps it competitive on\n\
         PPI-style graphs, its home turf."
    );
}
