//! Social-network re-identification: the paper's motivating scenario of
//! "re-identifying the *same* user in two or more different networks".
//!
//! An "anonymized" release of a social network (node ids scrambled, some
//! relationships missing) is aligned against a public reference network.
//! We compare the two embedding-based aligners the paper recommends for
//! this regime — CONE (quality) and REGAL (scalability) — at increasing
//! levels of edge discrepancy.
//!
//! ```sh
//! cargo run --release --example social_deanonymize
//! ```

use graphalign::cone::Cone;
use graphalign::regal::Regal;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_gen::powerlaw_cluster;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

fn main() {
    // The "public" social network: power-law degrees, strong clustering.
    let public = powerlaw_cluster(500, 6, 0.7, 2023);
    println!("public network: {} users, {} friendships", public.node_count(), public.edge_count());
    println!("\n{:<10} {:>14} {:>14}", "missing", "CONE", "REGAL");
    println!("{}", "-".repeat(40));

    for &noise_level in &[0.0, 0.05, 0.10, 0.20] {
        // The anonymized release: ids scrambled, a fraction of the
        // friendships absent (one-way noise).
        let noise = NoiseConfig::new(NoiseModel::OneWay, noise_level);
        let instance = make_instance(&public, &noise, 99);

        let cone = Cone { outer_iters: 15, ..Cone::default() }
            .align_with(&instance.source, &instance.target, AssignmentMethod::JonkerVolgenant)
            .expect("CONE aligns");
        let regal = Regal::default()
            .align_with(&instance.source, &instance.target, AssignmentMethod::JonkerVolgenant)
            .expect("REGAL aligns");

        let cone_acc = accuracy(&cone, &instance.ground_truth);
        let regal_acc = accuracy(&regal, &instance.ground_truth);
        println!(
            "{:<10} {:>13.1}% {:>13.1}%",
            format!("{:.0}%", 100.0 * noise_level),
            100.0 * cone_acc,
            100.0 * regal_acc,
        );
    }
    println!(
        "\nRe-identification rate = fraction of users matched to their true\n\
         account. The paper's §6 findings reproduce at this scale: CONE\n\
         degrades gracefully with missing edges, REGAL falls off faster but\n\
         costs a fraction of the runtime."
    );
}
