//! Algorithm shootout: run all nine algorithms of the study on one
//! benchmark instance under the level-playing-field protocol (common JV
//! assignment) and print the comparison table — a miniature of the paper's
//! Figure 9 time-vs-accuracy view.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout
//! ```

use graphalign::registry;
use graphalign_assignment::AssignmentMethod;
use graphalign_gen::newman_watts;
use graphalign_metrics::evaluate;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
use std::time::Instant;

fn main() {
    // A small-world benchmark graph (the family the paper's density study
    // uses) with 1% one-way noise — Figure 15's operating point.
    let graph = newman_watts(300, 7, 0.5, 1);
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.01);
    let instance = make_instance(&graph, &noise, 3);
    println!(
        "instance: Newman-Watts n={}, m={}, 1% one-way noise, JV assignment\n",
        graph.node_count(),
        graph.edge_count()
    );
    println!("{:<10} {:>9} {:>9} {:>9} {:>10}", "algorithm", "accuracy", "S3", "MNC", "time");
    println!("{}", "-".repeat(52));

    for aligner in registry() {
        let start = Instant::now();
        match aligner.align_with(
            &instance.source,
            &instance.target,
            AssignmentMethod::JonkerVolgenant,
        ) {
            Ok(alignment) => {
                let elapsed = start.elapsed().as_secs_f64();
                let r = evaluate(
                    &instance.source,
                    &instance.target,
                    &alignment,
                    &instance.ground_truth,
                );
                println!(
                    "{:<10} {:>8.1}% {:>8.1}% {:>8.1}% {:>9.2}s",
                    aligner.name(),
                    100.0 * r.accuracy,
                    100.0 * r.s3,
                    100.0 * r.mnc,
                    elapsed,
                );
            }
            Err(e) => println!("{:<10} failed: {e}", aligner.name()),
        }
    }
    println!(
        "\nEvery algorithm consumed the same similarity-then-JV pipeline, so\n\
         differences reflect the similarity notions themselves (paper §6.2)."
    );
}
