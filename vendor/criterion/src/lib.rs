//! Offline drop-in replacement for the subset of the `criterion` crate API the
//! graphalign workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock benchmark runner with the same source-level API:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified relative to the real crate): each benchmark is
//! warmed up for ~`warm_up` wall time, then `sample_size` samples are taken,
//! where one sample times a batch of iterations sized so a batch lasts at
//! least ~1 ms. Mean, median, and min/max per-iteration times are printed to
//! stdout. When the binary is invoked by `cargo test` (which passes
//! `--test`), every benchmark body runs exactly once so the suite stays fast
//! and the closures are still exercised for panics.

use std::time::{Duration, Instant};

/// Label for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up: Duration,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_mean_ns: f64,
    last_median_ns: f64,
    last_min_ns: f64,
    last_max_ns: f64,
}

impl Bencher {
    /// Benchmarks `f`, timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: run until the warm-up budget elapses, measuring roughly
        // how long one iteration takes so batches can be sized.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters_done.max(1) as f64;
        // Size one sample batch to at least ~1 ms of work.
        let batch = ((1_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.last_mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.last_median_ns = samples[samples.len() / 2];
        self.last_min_ns = samples[0];
        self.last_max_ns = samples[samples.len() - 1];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark registry/runner.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode, sample_size: 20, warm_up: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.test_mode, self.sample_size, self.warm_up, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up, test_mode) = (self.sample_size, self.warm_up, self.test_mode);
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, warm_up, test_mode }
    }

    /// Hook for CLI configuration; the shim has nothing to configure.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.test_mode,
            self.sample_size,
            self.warm_up,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.test_mode,
            self.sample_size,
            self.warm_up,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    test_mode: bool,
    sample_size: usize,
    warm_up: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        test_mode,
        sample_size,
        warm_up,
        last_mean_ns: 0.0,
        last_median_ns: 0.0,
        last_min_ns: 0.0,
        last_max_ns: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (test mode, 1 iteration)");
    } else {
        println!(
            "{label}: mean {} | median {} | range [{} .. {}]",
            format_ns(b.last_mean_ns),
            format_ns(b.last_median_ns),
            format_ns(b.last_min_ns),
            format_ns(b.last_max_ns),
        );
    }
}

/// Re-export of the standard black box, for parity with the real crate.
pub use std::hint::black_box;

/// Defines a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_test_mode() {
        let mut calls = 0usize;
        let mut b = Bencher {
            test_mode: true,
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            last_mean_ns: 0.0,
            last_median_ns: 0.0,
            last_min_ns: 0.0,
            last_max_ns: 0.0,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn timing_mode_produces_positive_stats() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            warm_up: Duration::from_millis(5),
            last_mean_ns: 0.0,
            last_median_ns: 0.0,
            last_min_ns: 0.0,
            last_max_ns: 0.0,
        };
        b.iter(|| std::hint::black_box(2u64.pow(10)));
        assert!(b.last_mean_ns > 0.0);
        assert!(b.last_min_ns <= b.last_median_ns && b.last_median_ns <= b.last_max_ns);
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
