//! Deterministic per-case RNG for the shimmed `proptest`.

use rand::prelude::*;

/// FNV-1a hash, used to derive a stable per-test seed from the test name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RNG handed to strategies. Wraps the workspace [`StdRng`] so the value
/// streams are as deterministic as every other seeded computation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case `case` of the test whose name hashes to `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        Self(StdRng::seed_from_u64(seed ^ ((case as u64) << 32) ^ case as u64))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
