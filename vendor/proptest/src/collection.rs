//! Collection strategies (`vec`).

use crate::test_runner::TestRng;
use crate::Strategy;
use rand::RngExt;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self { lo: r.start, hi: r.end }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
