//! Offline drop-in replacement for the subset of the `proptest` crate API the
//! graphalign workspace uses.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the pieces the test suites rely on: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from the real crate, chosen deliberately for a hermetic test
//! environment:
//!
//! * **No shrinking.** A failing case reports its deterministic case index so
//!   it replays exactly; minimization is manual.
//! * **Deterministic seeding.** Case `k` of test `t` is seeded from
//!   `hash(t) ^ k`, so runs are reproducible with no `PROPTEST_*`
//!   environment dependence and no persistence files.
//! * **Rejections (`prop_assume!`) skip the case** rather than resampling.

use rand::RngExt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
#[derive(Debug)]
pub struct TestCaseReject;

/// Run-configuration for a `proptest!` block. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(-1.0f64..1.0, 5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || -> ::core::result::Result<(), $crate::TestCaseReject> {
                        { $body }
                        Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        Ok(_) => {}
                        Err(__payload) => {
                            eprintln!(
                                "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                                stringify!($name),
                                __case,
                                __config.cases,
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..5).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_have_requested_lengths(v in crate::collection::vec(0u64..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
