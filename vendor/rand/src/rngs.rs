//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ seeded via
/// SplitMix64.
///
/// This is not the ChaCha-based `StdRng` of the real `rand` crate — it is a
/// small, fast, well-studied generator whose statistical quality is more than
/// adequate for synthetic-graph generation and randomized algorithm starts.
/// What matters for the workspace is that the stream for a given seed is
/// stable forever, so seeded experiments replay exactly.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
        // as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2018).
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_for_seed_zero() {
        // Pinned first outputs for seed 0: any change to seeding or the
        // generator breaks every seeded experiment in the workspace, so this
        // test must never be "fixed" by updating the constants casually.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn state_is_never_all_zero() {
        let rng = StdRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
    }
}
