//! Offline drop-in replacement for the subset of the `rand` crate API that the
//! graphalign workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, dependency-free implementation instead of the real `rand`.
//! It provides:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (SplitMix64-seeded xoshiro256++, the same core generator family the real
//!   `rand` has shipped for small RNGs).
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point the
//!   workspace uses; every experiment is seeded explicitly for
//!   reproducibility.
//! * [`RngExt::random_range`] / [`RngExt::random`] — sampling from integer and
//!   float ranges and from the "standard" distributions of the primitive
//!   types.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! The streams produced here are deterministic across platforms and releases:
//! benchmark results and test expectations may depend on them, so **do not
//! change the generator or the sampling arithmetic** without re-validating the
//! seeded tests.

pub mod rngs;
pub mod seq;

pub use seq::SliceRandom;

/// Minimal core-RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is provided; the workspace always
/// seeds explicitly from experiment configuration.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution of `random()`:
/// full-range integers, `[0, 1)` floats, and fair booleans.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Uniform draw from `[0, span)` (`span == 0` means the full 64-bit range),
/// using Lemire's multiply-shift rejection method so results are unbiased.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected: retry with fresh bits (rare unless span is huge).
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
///
/// This is the `Rng`/`RngExt` extension trait of the real crate, reduced to
/// the two methods the workspace calls.
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive, integer or
    /// float).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples from the standard distribution of `T`: full-range integers,
    /// `[0, 1)` floats, fair booleans.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for callers written against the pre-0.9 trait name.
pub use RngExt as Rng;

/// Everything a typical caller needs: traits and the standard generator.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values should appear: {seen:?}");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "unfair coin: {trues}");
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
