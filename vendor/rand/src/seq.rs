//! Sequence helpers (`shuffle`).

use crate::{RngCore, RngExt};

/// Slice extension providing an in-place uniform shuffle.
pub trait SliceRandom {
    /// Shuffles the slice in place with the Fisher–Yates algorithm, consuming
    /// `len - 1` draws from `rng`.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
