//! Alignment quality measures (paper §5.2).
//!
//! An alignment is a function `f : V_A → V_B`, represented as a slice
//! `alignment[u] = f(u)`. The five measures of the study:
//!
//! * [`accuracy`] — node correctness against a ground truth;
//! * [`mnc`] — matched neighborhood consistency (Jaccard of mapped vs actual
//!   neighborhoods), the measure CONE optimizes;
//! * [`edge_correctness`] — fraction of source edges mapped onto target
//!   edges;
//! * [`induced_conserved_structure`] — EC normalized by the target subgraph
//!   induced by the mapped nodes;
//! * [`s3`] — symmetric substructure score, penalizing density mismatch in
//!   both directions.

use graphalign_graph::Graph;
use std::collections::HashSet;

/// Node correctness: fraction of nodes whose alignment matches the ground
/// truth (paper §5.2.2).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(alignment: &[usize], ground_truth: &[usize]) -> f64 {
    assert_eq!(alignment.len(), ground_truth.len(), "accuracy: length mismatch");
    if alignment.is_empty() {
        return 0.0;
    }
    let correct = alignment.iter().zip(ground_truth).filter(|(a, t)| a == t).count();
    correct as f64 / alignment.len() as f64
}

/// Matched Neighborhood Consistency (paper §5.2.1, Equation 15): for each
/// source node `i`, the Jaccard similarity between the *mapped* neighborhood
/// `{f(k) : k ∈ N_A(i)}` and the actual neighborhood `N_B(f(i))`; the score
/// is the average over all source nodes.
///
/// Nodes for which both sets are empty contribute 1 (they are perfectly
/// consistent, vacuously), matching the reference implementation's
/// convention of not penalizing isolated nodes.
///
/// # Panics
/// Panics if `alignment.len() != source.node_count()` or any image is out of
/// bounds in `target`.
pub fn mnc(source: &Graph, target: &Graph, alignment: &[usize]) -> f64 {
    assert_eq!(alignment.len(), source.node_count(), "mnc: alignment length mismatch");
    let n = source.node_count();
    if n == 0 {
        return 0.0;
    }
    // Target neighbor lists are already sorted and deduplicated; the mapped
    // neighborhood needs one sort+dedup (many-to-one alignments can map two
    // neighbors onto the same image), after which intersection and union
    // sizes fall out of a single linear merge — no per-node hash sets.
    let mut mapped: Vec<usize> = Vec::new();
    let mut total = 0.0;
    for i in 0..n {
        mapped.clear();
        mapped.extend(source.neighbors(i).iter().map(|&k| alignment[k]));
        mapped.sort_unstable();
        mapped.dedup();
        let actual = target.neighbors(alignment[i]);
        let mut inter = 0usize;
        let (mut a, mut b) = (0usize, 0usize);
        while a < mapped.len() && b < actual.len() {
            match mapped[a].cmp(&actual[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
        let union = mapped.len() + actual.len() - inter;
        total += if union == 0 { 1.0 } else { inter as f64 / union as f64 };
    }
    total / n as f64
}

/// Size of the image edge set `f(E_A) = {(f(i), f(j)) ∈ E_B : (i, j) ∈ E_A}`.
///
/// Per the paper's definition this is a *set*: for many-to-one alignments,
/// several source edges mapping onto the same target edge count once (for
/// one-to-one alignments the distinction is immaterial).
fn conserved_edges(source: &Graph, target: &Graph, alignment: &[usize]) -> usize {
    let image: HashSet<(usize, usize)> = source
        .edges()
        .filter_map(|(u, v)| {
            let (fu, fv) = (alignment[u], alignment[v]);
            if fu != fv && target.has_edge(fu, fv) {
                Some((fu.min(fv), fu.max(fv)))
            } else {
                None
            }
        })
        .collect();
    image.len()
}

/// Number of target edges within the subgraph induced by the image
/// `f(V_A)`, `|E(G_B[f(V_A)])|`.
fn induced_target_edges(target: &Graph, alignment: &[usize]) -> usize {
    let image: HashSet<usize> = alignment.iter().copied().collect();
    target.edges().filter(|&(x, y)| image.contains(&x) && image.contains(&y)).count()
}

/// Edge correctness `EC(f) = |f(E_A)| / |E_A|` (paper §5.2.3).
///
/// Returns 0 for an edgeless source graph.
pub fn edge_correctness(source: &Graph, target: &Graph, alignment: &[usize]) -> f64 {
    assert_eq!(alignment.len(), source.node_count(), "EC: alignment length mismatch");
    let m = source.edge_count();
    if m == 0 {
        return 0.0;
    }
    conserved_edges(source, target, alignment) as f64 / m as f64
}

/// Induced Conserved Structure `ICS(f) = |f(E_A)| / |E(G_B[f(V_A)])|`
/// (paper §5.2.3).
///
/// Returns 0 when the induced subgraph has no edges.
pub fn induced_conserved_structure(source: &Graph, target: &Graph, alignment: &[usize]) -> f64 {
    assert_eq!(alignment.len(), source.node_count(), "ICS: alignment length mismatch");
    let induced = induced_target_edges(target, alignment);
    if induced == 0 {
        return 0.0;
    }
    conserved_edges(source, target, alignment) as f64 / induced as f64
}

/// Symmetric substructure score (paper Equation 16):
/// `S³(f) = |f(E_A)| / (|E_A| + |E(G_B[f(V_A)])| − |f(E_A)|)`.
///
/// Returns 0 when the denominator is 0 (both graphs edgeless).
pub fn s3(source: &Graph, target: &Graph, alignment: &[usize]) -> f64 {
    assert_eq!(alignment.len(), source.node_count(), "S3: alignment length mismatch");
    let f_ea = conserved_edges(source, target, alignment);
    let denom = source.edge_count() + induced_target_edges(target, alignment) - f_ea;
    if denom == 0 {
        return 0.0;
    }
    f_ea as f64 / denom as f64
}

/// Bundle of all five quality measures for one alignment, as the experiment
/// harness reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Node correctness.
    pub accuracy: f64,
    /// Matched neighborhood consistency.
    pub mnc: f64,
    /// Edge correctness.
    pub ec: f64,
    /// Induced conserved structure.
    pub ics: f64,
    /// Symmetric substructure score.
    pub s3: f64,
}

/// Computes every measure at once.
pub fn evaluate(
    source: &Graph,
    target: &Graph,
    alignment: &[usize],
    ground_truth: &[usize],
) -> QualityReport {
    QualityReport {
        accuracy: accuracy(alignment, ground_truth),
        mnc: mnc(source, target, alignment),
        ec: edge_correctness(source, target, alignment),
        ics: induced_conserved_structure(source, target, alignment),
        s3: s3(source, target, alignment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 1, 3, 2], &[0, 1, 2, 3]), 0.5);
        assert_eq!(accuracy(&[1, 0], &[0, 1]), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_self_alignment_scores_one_everywhere() {
        let g = cycle(8);
        let id = identity(8);
        let r = evaluate(&g, &g, &id, &id);
        assert_eq!(r.accuracy, 1.0);
        assert!((r.mnc - 1.0).abs() < 1e-12);
        assert!((r.ec - 1.0).abs() < 1e-12);
        assert!((r.ics - 1.0).abs() < 1e-12);
        assert!((r.s3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correct_isomorphism_scores_one_even_with_relabeled_truth() {
        use graphalign_graph::Permutation;
        let g = cycle(10);
        let p = Permutation::random(10, 5);
        let h = p.apply_to_graph(&g);
        let alignment: Vec<usize> = p.as_slice().to_vec();
        let r = evaluate(&g, &h, &alignment, p.as_slice());
        assert_eq!(r.accuracy, 1.0);
        assert!((r.ec - 1.0).abs() < 1e-12);
        assert!((r.s3 - 1.0).abs() < 1e-12);
        assert!((r.mnc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ec_detects_broken_edges() {
        // Map the 4-cycle to a path: one edge breaks.
        let c4 = cycle(4);
        let p4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ec = edge_correctness(&c4, &p4, &identity(4));
        assert!((ec - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ics_normalizes_by_induced_subgraph() {
        // Source: path on 3 nodes (2 edges); target: triangle (3 edges).
        // Identity alignment conserves both path edges, but the induced
        // subgraph has 3 edges → ICS = 2/3, EC = 1.
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let id = identity(3);
        assert!((edge_correctness(&path, &tri, &id) - 1.0).abs() < 1e-12);
        assert!((induced_conserved_structure(&path, &tri, &id) - 2.0 / 3.0).abs() < 1e-12);
        // S3 = 2 / (2 + 3 − 2) = 2/3.
        assert!((s3(&path, &tri, &id) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn s3_penalizes_sparse_to_dense_both_ways() {
        // Dense source to sparse target: EC low, ICS high, S3 low.
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let id = identity(3);
        assert!((edge_correctness(&tri, &path, &id) - 2.0 / 3.0).abs() < 1e-12);
        assert!((induced_conserved_structure(&tri, &path, &id) - 1.0).abs() < 1e-12);
        assert!((s3(&tri, &path, &id) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mnc_of_shifted_cycle_alignment() {
        // Aligning C6 to itself by rotation: structurally perfect (MNC 1)
        // but 0 accuracy.
        let g = cycle(6);
        let shift: Vec<usize> = (0..6).map(|i| (i + 1) % 6).collect();
        let truth = identity(6);
        assert_eq!(accuracy(&shift, &truth), 0.0);
        assert!((mnc(&g, &g, &shift) - 1.0).abs() < 1e-12);
        assert!((s3(&g, &g, &shift) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mnc_detects_structural_garbage() {
        // Map everything to node 0: neighborhoods collapse.
        let g = cycle(6);
        let collapse = vec![0usize; 6];
        let v = mnc(&g, &g, &collapse);
        assert!(v < 0.5, "collapsed alignment should have low MNC, got {v}");
    }

    #[test]
    fn isolated_nodes_do_not_tank_mnc() {
        // Two isolated nodes aligned to each other: vacuously consistent.
        let g = Graph::from_edges(2, &[]);
        assert!((mnc(&g, &g, &identity(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapsed_alignment_does_not_fake_edge_conservation() {
        // Mapping both endpoints of an edge to the same node must not count
        // as a conserved edge.
        let e = Graph::from_edges(2, &[(0, 1)]);
        let ec = edge_correctness(&e, &e, &[0, 0]);
        assert_eq!(ec, 0.0);
    }

    #[test]
    fn empty_graphs_are_handled() {
        let g = Graph::from_edges(0, &[]);
        let r = evaluate(&g, &g, &[], &[]);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.mnc, 0.0);
        assert_eq!(r.ec, 0.0);
        assert_eq!(r.ics, 0.0);
        assert_eq!(r.s3, 0.0);
    }

    /// The pre-optimization MNC (two fresh hash sets per node), kept as the
    /// reference oracle for the merge-based implementation.
    fn mnc_hashset_reference(source: &Graph, target: &Graph, alignment: &[usize]) -> f64 {
        let n = source.node_count();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..n {
            let mapped: HashSet<usize> =
                source.neighbors(i).iter().map(|&k| alignment[k]).collect();
            let actual: HashSet<usize> = target.neighbors(alignment[i]).iter().copied().collect();
            let inter = mapped.intersection(&actual).count();
            let union = mapped.union(&actual).count();
            total += if union == 0 { 1.0 } else { inter as f64 / union as f64 };
        }
        total / n as f64
    }

    #[test]
    fn merge_mnc_matches_hashset_reference_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2023);
        for trial in 0..50 {
            let n = rng.random_range(1..25);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0.0..1.0) < 0.25 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let m = rng.random_range(1..25);
            let mut target_edges = Vec::new();
            for u in 0..m {
                for v in (u + 1)..m {
                    if rng.random_range(0.0..1.0) < 0.25 {
                        target_edges.push((u, v));
                    }
                }
            }
            let h = Graph::from_edges(m, &target_edges);
            // Arbitrary (typically many-to-one) alignment into the target.
            let alignment: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
            let fast = mnc(&g, &h, &alignment);
            let reference = mnc_hashset_reference(&g, &h, &alignment);
            assert!(
                (fast - reference).abs() < 1e-12,
                "trial {trial}: merge MNC {fast} != reference {reference}"
            );
        }
    }

    #[test]
    fn measures_are_bounded() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let n = 12;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0.0..1.0) < 0.3 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let alignment: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let truth: Vec<usize> = (0..n).collect();
            let r = evaluate(&g, &g, &alignment, &truth);
            for (name, v) in [
                ("accuracy", r.accuracy),
                ("mnc", r.mnc),
                ("ec", r.ec),
                ("ics", r.ics),
                ("s3", r.s3),
            ] {
                assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0,1]");
            }
        }
    }
}

/// Top-`k` accuracy over a raw similarity matrix (row-major, `n × m`): the
/// fraction of source nodes whose ground-truth target ranks among the `k`
/// highest-scoring columns of their row. The embedding-based aligners
/// (REGAL, CONE) report this relaxation of node correctness in their own
/// papers; `k = 1` reduces to argmax accuracy.
///
/// Ties are counted generously: a truth column tied with the k-th score
/// counts as within the top `k`.
///
/// # Panics
/// Panics if `k == 0`, `similarity.len() != ground_truth.len() * m`, or a
/// ground-truth index is out of range.
pub fn accuracy_at_k(similarity: &[f64], m: usize, ground_truth: &[usize], k: usize) -> f64 {
    assert!(k > 0, "accuracy_at_k: k must be positive");
    let n = ground_truth.len();
    assert_eq!(similarity.len(), n * m, "accuracy_at_k: similarity shape mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (i, &truth) in ground_truth.iter().enumerate() {
        assert!(truth < m, "accuracy_at_k: ground truth {truth} out of range");
        let row = &similarity[i * m..(i + 1) * m];
        let truth_score = row[truth];
        // Rank of the truth = number of strictly better columns.
        let better = row.iter().filter(|&&v| v > truth_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod accuracy_at_k_tests {
    use super::accuracy_at_k;

    #[test]
    fn k1_is_argmax_accuracy() {
        // Row 0: truth col 1 is the max (hit); row 1: truth col 0 is not.
        let sim = [0.1, 0.9, 0.2, 0.3, 0.8, 0.1];
        assert_eq!(accuracy_at_k(&sim, 3, &[1, 0], 1), 0.5);
    }

    #[test]
    fn larger_k_is_monotone() {
        let sim = [0.1, 0.9, 0.5, 0.3, 0.8, 0.4];
        let truth = [2usize, 0];
        let a1 = accuracy_at_k(&sim, 3, &truth, 1);
        let a2 = accuracy_at_k(&sim, 3, &truth, 2);
        let a3 = accuracy_at_k(&sim, 3, &truth, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0, "k = m always hits");
    }

    #[test]
    fn ties_count_generously() {
        let sim = [0.5, 0.5];
        assert_eq!(accuracy_at_k(&sim, 2, &[1], 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        accuracy_at_k(&[1.0], 1, &[0], 0);
    }
}
