//! Streamed edge-list storage and chunked CSR construction for the XL tier.
//!
//! [`Graph::from_edges`] holds the full edge slice *plus* per-node `Vec`s
//! while building — roughly `5×` the final CSR footprint, which is the
//! difference between fitting and not fitting a 10⁶-node graph in an
//! `O(n·d)` budget. This module keeps edges on disk as packed little-endian
//! `u32` pairs and builds the CSR in two streaming passes over the file
//! (degree count, then scatter), so the only resident state is the final
//! `offsets`/`neighbors` arrays plus one bounded chunk buffer.
//!
//! The XL benchmark instance ([`xl_instance`]) writes the edge stream once
//! and derives the permuted target graph by streaming the *same file* through
//! the ground-truth permutation — the source edge list is never duplicated in
//! memory or on disk.

use graphalign_graph::{Graph, Permutation};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Edges per chunk for the streaming reader/writer: 2²⁰ pairs = 8 MiB,
/// the bounded build buffer of the two-pass CSR construction.
pub const CHUNK_EDGES: usize = 1 << 20;

/// Writes an edge stream as packed `u32` little-endian `(u, v)` pairs.
pub struct EdgeStreamWriter {
    out: BufWriter<File>,
    path: PathBuf,
    nodes: usize,
    edges: u64,
}

impl EdgeStreamWriter {
    /// Creates (truncates) the stream file for a graph on `nodes` nodes.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    ///
    /// # Panics
    /// Panics when `nodes` exceeds the `u32` id space.
    pub fn create(path: &Path, nodes: usize) -> io::Result<Self> {
        assert!(nodes <= u32::MAX as usize, "edge stream ids are u32");
        let out = BufWriter::new(File::create(path)?);
        Ok(Self { out, path: path.to_path_buf(), nodes, edges: 0 })
    }

    /// Appends one undirected edge.
    ///
    /// # Errors
    /// Propagates write errors.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints.
    pub fn push(&mut self, u: usize, v: usize) -> io::Result<()> {
        assert!(u < self.nodes && v < self.nodes, "edge ({u},{v}) out of bounds");
        self.out.write_all(&(u as u32).to_le_bytes())?;
        self.out.write_all(&(v as u32).to_le_bytes())?;
        self.edges += 1;
        Ok(())
    }

    /// Flushes and seals the stream, returning its read handle.
    ///
    /// # Errors
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<EdgeStream> {
        self.out.flush()?;
        Ok(EdgeStream { path: self.path, nodes: self.nodes, edges: self.edges })
    }
}

/// A sealed on-disk edge stream: node count, edge count, and the file path.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    path: PathBuf,
    nodes: usize,
    edges: u64,
}

impl EdgeStream {
    /// Node count the stream was created for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of (possibly duplicate) edges in the stream.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Streams the file in bounded chunks of at most [`CHUNK_EDGES`] edges,
    /// calling `f` with each decoded `(u, v)` batch. Peak memory is one chunk
    /// buffer regardless of stream length.
    ///
    /// # Errors
    /// Propagates read errors; a trailing partial record is an
    /// `InvalidData` error.
    pub fn for_each_chunk(&self, mut f: impl FnMut(&[(u32, u32)])) -> io::Result<()> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut raw = vec![0u8; CHUNK_EDGES * 8];
        let mut decoded: Vec<(u32, u32)> = Vec::with_capacity(CHUNK_EDGES);
        let mut filled = 0usize;
        loop {
            let read = reader.read(&mut raw[filled..])?;
            if read == 0 {
                if filled != 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "edge stream ends mid-record",
                    ));
                }
                return Ok(());
            }
            filled += read;
            let whole = filled - filled % 8;
            if whole == 0 {
                continue;
            }
            decoded.clear();
            for rec in raw[..whole].chunks_exact(8) {
                let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
                let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
                decoded.push((u, v));
            }
            f(&decoded);
            raw.copy_within(whole..filled, 0);
            filled -= whole;
        }
    }

    /// Builds the CSR graph by two streaming passes, relabeling every node id
    /// through `map` (pass the identity to materialize the stream as-is).
    /// Self-loops are dropped and duplicate edges deduplicated, matching
    /// [`Graph::from_edges`] semantics. Peak transient memory beyond the
    /// final CSR arrays is one chunk buffer plus the `n+1` cursor array.
    ///
    /// # Errors
    /// Propagates stream read errors.
    ///
    /// # Panics
    /// Panics when `map` produces an out-of-bounds id.
    pub fn build_graph_with(&self, map: impl Fn(usize) -> usize) -> io::Result<Graph> {
        let n = self.nodes;
        // Pass 1: degree counts (self-loops dropped, duplicates still
        // counted — they are removed after the scatter).
        let mut offsets = vec![0usize; n + 1];
        self.for_each_chunk(|chunk| {
            for &(u, v) in chunk {
                let (u, v) = (map(u as usize), map(v as usize));
                assert!(u < n && v < n, "mapped edge ({u},{v}) out of bounds for n={n}");
                if u != v {
                    offsets[u + 1] += 1;
                    offsets[v + 1] += 1;
                }
            }
        })?;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Pass 2: scatter both arc directions into place.
        let mut neighbors = vec![0usize; offsets[n]];
        let mut cursor = offsets.clone();
        self.for_each_chunk(|chunk| {
            for &(u, v) in chunk {
                let (u, v) = (map(u as usize), map(v as usize));
                if u != v {
                    neighbors[cursor[u]] = v;
                    cursor[u] += 1;
                    neighbors[cursor[v]] = u;
                    cursor[v] += 1;
                }
            }
        })?;
        drop(cursor);
        // Sort + dedup each list in place, compacting forward.
        let mut write = 0usize;
        let mut new_offsets = vec![0usize; n + 1];
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            neighbors[lo..hi].sort_unstable();
            let mut prev = usize::MAX;
            for k in lo..hi {
                let u = neighbors[k];
                if u != prev {
                    neighbors[write] = u;
                    write += 1;
                    prev = u;
                }
            }
            new_offsets[v + 1] = write;
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        Ok(Graph::from_csr_parts(new_offsets, neighbors))
    }

    /// [`EdgeStream::build_graph_with`] under the identity relabeling.
    ///
    /// # Errors
    /// Propagates stream read errors.
    pub fn build_graph(&self) -> io::Result<Graph> {
        self.build_graph_with(|v| v)
    }
}

/// An XL alignment instance: streamed source graph, permuted target graph,
/// and the ground-truth permutation — the million-node analog of
/// `AlignmentInstance::permuted`, built without ever holding an edge list
/// resident.
#[derive(Debug, Clone)]
pub struct XlInstance {
    /// Source graph `G_A`.
    pub source: Graph,
    /// Target graph `G_B` (node-relabeled copy of the source stream).
    pub target: Graph,
    /// `ground_truth[u]` is the target node corresponding to source node `u`.
    pub ground_truth: Vec<usize>,
}

/// Generates the XL benchmark instance: a connected ring-plus-random-chords
/// graph on `n` nodes with average degree ≈ `avg_degree`, streamed to
/// `dir/xl_<n>_<seed>.edges`, then materialized twice through the chunked
/// CSR builder — once as-is (source) and once relabeled by a seeded random
/// permutation (target). Deterministic per `(n, avg_degree, seed)`.
///
/// The ring guarantees no isolated nodes (every node has degree ≥ 2); the
/// chords are sampled uniformly with a seeded generator. Total stream length
/// is `n · avg_degree / 2` edges before deduplication.
///
/// # Errors
/// Propagates file I/O errors.
///
/// # Panics
/// Panics when `n < 3` or `avg_degree < 2`.
pub fn xl_instance(dir: &Path, n: usize, avg_degree: f64, seed: u64) -> io::Result<XlInstance> {
    assert!(n >= 3, "xl_instance: need n >= 3 for a ring");
    assert!(avg_degree >= 2.0, "xl_instance: the ring alone has average degree 2");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("xl_{n}_{seed}.edges"));
    let mut writer = EdgeStreamWriter::create(&path, n)?;
    for u in 0..n {
        writer.push(u, (u + 1) % n)?;
    }
    let target_edges = (n as f64 * avg_degree / 2.0) as u64;
    let chords = target_edges.saturating_sub(n as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut written = 0u64;
    while written < chords {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            writer.push(u, v)?;
            written += 1;
        }
    }
    let stream = writer.finish()?;
    let source = stream.build_graph()?;
    let perm = Permutation::random(n, seed);
    let target = stream.build_graph_with(|v| perm.apply(v))?;
    let ground_truth = perm.as_slice().to_vec();
    Ok(XlInstance { source, target, ground_truth })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphalign_stream_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn streamed_build_matches_from_edges() {
        let dir = tmp_dir("match");
        let path = dir.join("small.edges");
        // Duplicates and self-loops on purpose.
        let edges =
            [(0usize, 1usize), (1, 2), (2, 0), (2, 2), (0, 1), (3, 1), (4, 0), (3, 4), (1, 0)];
        let mut w = EdgeStreamWriter::create(&path, 5).unwrap();
        for &(u, v) in &edges {
            w.push(u, v).unwrap();
        }
        let stream = w.finish().unwrap();
        assert_eq!(stream.edges(), edges.len() as u64);
        let streamed = stream.build_graph().unwrap();
        let reference = Graph::from_edges(5, &edges);
        assert_eq!(streamed, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_reader_handles_exact_and_partial_chunks() {
        let dir = tmp_dir("chunks");
        let path = dir.join("three.edges");
        let mut w = EdgeStreamWriter::create(&path, 10).unwrap();
        for i in 0..3u32 {
            w.push(i as usize, (i + 1) as usize).unwrap();
        }
        let stream = w.finish().unwrap();
        let mut seen = Vec::new();
        stream.for_each_chunk(|chunk| seen.extend_from_slice(chunk)).unwrap();
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_stream_is_invalid_data() {
        let dir = tmp_dir("trunc");
        let path = dir.join("torn.edges");
        std::fs::write(&path, [1u8, 0, 0, 0, 2, 0]).unwrap();
        let stream = EdgeStream { path: path.clone(), nodes: 10, edges: 1 };
        let err = stream.for_each_chunk(|_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xl_instance_is_a_valid_permuted_pair() {
        let dir = tmp_dir("inst");
        let n = 200;
        let inst = xl_instance(&dir, n, 6.0, 42).unwrap();
        assert_eq!(inst.source.node_count(), n);
        assert_eq!(inst.target.node_count(), n);
        assert_eq!(inst.source.edge_count(), inst.target.edge_count());
        // Ground truth is a permutation and an isomorphism witness.
        let mut sorted = inst.ground_truth.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        for u in 0..n {
            for &v in inst.source.neighbors(u) {
                assert!(
                    inst.target.has_edge(inst.ground_truth[u], inst.ground_truth[v]),
                    "edge ({u},{v}) not preserved"
                );
            }
        }
        // No isolated nodes, and the average degree is in the right band.
        assert!((0..n).all(|v| inst.source.degree(v) >= 2));
        let avg = inst.source.avg_degree();
        assert!(avg > 4.0 && avg < 7.0, "avg degree {avg} out of band");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xl_instance_is_deterministic_per_seed() {
        let dir = tmp_dir("det");
        let a = xl_instance(&dir, 64, 4.0, 7).unwrap();
        let b = xl_instance(&dir, 64, 4.0, 7).unwrap();
        assert_eq!(a.source, b.source);
        assert_eq!(a.target, b.target);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = xl_instance(&dir, 64, 4.0, 8).unwrap();
        assert_ne!(a.ground_truth, c.ground_truth);
        std::fs::remove_dir_all(&dir).ok();
    }
}
