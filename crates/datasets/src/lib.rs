//! Dataset registry for the benchmark study.
//!
//! The paper evaluates on 16 real networks (Table 2). This build environment
//! has no network access, so [`load`] produces a **seeded synthetic replica**
//! of each dataset: a graph drawn from the random-graph family matching the
//! dataset's structural type, with the same node count and (exactly) the same
//! edge count — see DESIGN.md §3 for why the replicas preserve the phenomena
//! the study measures. When the genuine edge-list file is available, drop it
//! into the directory named by the `GRAPHALIGN_DATA_DIR` environment variable
//! as `<name>.txt` and [`load`] will parse it instead.
//!
//! [`evolving`] provides the three datasets with *real-noise* ground truth
//! (HighSchool, Voles, MultiMagna) under the paper's §6.5 protocol.

pub mod evolving;
pub mod stream;

use graphalign_gen as gen;
use graphalign_graph::{io, Graph, GraphBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Structural family of a network (Table 2's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Email/communication networks (power-law).
    Communication,
    /// Online social networks (power-law, dense, clustered).
    Social,
    /// Co-authorship networks (many triangles).
    Collaboration,
    /// Road and power grids (near-planar, very sparse).
    Infrastructure,
    /// Protein-interaction style networks.
    Biological,
    /// Physical-proximity contact networks (dense, small).
    Proximity,
}

impl NetworkKind {
    /// Lowercase label matching the paper's Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkKind::Communication => "communication",
            NetworkKind::Social => "social",
            NetworkKind::Collaboration => "collaboration",
            NetworkKind::Infrastructure => "infrastructure",
            NetworkKind::Biological => "biological",
            NetworkKind::Proximity => "proximity",
        }
    }
}

/// Identifiers for the paper's 16 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DatasetId {
    Arenas,
    Facebook,
    CaAstroPh,
    InfEuroroad,
    InfPower,
    FbHaverford76,
    FbHamilton46,
    FbBowdoin47,
    FbSwarthmore42,
    SocHamsterster,
    BioCelegans,
    CaGrQc,
    CaNetscience,
    MultiMagna,
    HighSchool,
    Voles,
}

/// Static description of a dataset (the row of Table 2).
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Identifier.
    pub id: DatasetId,
    /// Canonical name as used in the paper.
    pub name: &'static str,
    /// Node count `n`.
    pub n: usize,
    /// Edge count `m`.
    pub m: usize,
    /// Nodes outside the largest connected component (Table 2 column ℓ) in
    /// the genuine dataset.
    pub left_out: usize,
    /// Structural family.
    pub kind: NetworkKind,
}

/// The 16 rows of Table 2.
pub const ALL: [DatasetSpec; 16] = [
    DatasetSpec {
        id: DatasetId::Arenas,
        name: "Arenas",
        n: 1133,
        m: 5451,
        left_out: 0,
        kind: NetworkKind::Communication,
    },
    DatasetSpec {
        id: DatasetId::Facebook,
        name: "Facebook",
        n: 4039,
        m: 88234,
        left_out: 0,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::CaAstroPh,
        name: "CA-AstroPh",
        n: 17903,
        m: 197031,
        left_out: 0,
        kind: NetworkKind::Collaboration,
    },
    DatasetSpec {
        id: DatasetId::InfEuroroad,
        name: "inf-euroroad",
        n: 1174,
        m: 1417,
        left_out: 200,
        kind: NetworkKind::Infrastructure,
    },
    DatasetSpec {
        id: DatasetId::InfPower,
        name: "inf-power",
        n: 4941,
        m: 6594,
        left_out: 0,
        kind: NetworkKind::Infrastructure,
    },
    DatasetSpec {
        id: DatasetId::FbHaverford76,
        name: "fb-Haverford76",
        n: 1446,
        m: 59589,
        left_out: 0,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::FbHamilton46,
        name: "fb-Hamilton46",
        n: 2314,
        m: 96394,
        left_out: 2,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::FbBowdoin47,
        name: "fb-Bowdoin47",
        n: 2252,
        m: 84387,
        left_out: 2,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::FbSwarthmore42,
        name: "fb-Swarthmore42",
        n: 1659,
        m: 61050,
        left_out: 2,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::SocHamsterster,
        name: "soc-hamsterster",
        n: 2426,
        m: 16630,
        left_out: 400,
        kind: NetworkKind::Social,
    },
    DatasetSpec {
        id: DatasetId::BioCelegans,
        name: "bio-celegans",
        n: 453,
        m: 2025,
        left_out: 0,
        kind: NetworkKind::Biological,
    },
    DatasetSpec {
        id: DatasetId::CaGrQc,
        name: "ca-GrQc",
        n: 4158,
        m: 14422,
        left_out: 0,
        kind: NetworkKind::Collaboration,
    },
    DatasetSpec {
        id: DatasetId::CaNetscience,
        name: "ca-netscience",
        n: 379,
        m: 914,
        left_out: 0,
        kind: NetworkKind::Collaboration,
    },
    DatasetSpec {
        id: DatasetId::MultiMagna,
        name: "MultiMagna",
        n: 1004,
        m: 8323,
        left_out: 0,
        kind: NetworkKind::Biological,
    },
    DatasetSpec {
        id: DatasetId::HighSchool,
        name: "HighSchool",
        n: 327,
        m: 5818,
        left_out: 0,
        kind: NetworkKind::Proximity,
    },
    DatasetSpec {
        id: DatasetId::Voles,
        name: "Voles",
        n: 712,
        m: 2391,
        left_out: 0,
        kind: NetworkKind::Proximity,
    },
];

/// Looks up the spec of a dataset.
pub fn spec(id: DatasetId) -> &'static DatasetSpec {
    ALL.iter().find(|s| s.id == id).expect("every DatasetId has a spec row")
}

/// The datasets used by Figure 7 (low-noise real graphs).
pub const FIGURE7: [DatasetId; 3] = [DatasetId::Arenas, DatasetId::Facebook, DatasetId::CaAstroPh];

/// The datasets used by Figure 8 (high-noise real graphs).
pub const FIGURE8: [DatasetId; 10] = [
    DatasetId::InfEuroroad,
    DatasetId::InfPower,
    DatasetId::FbHaverford76,
    DatasetId::FbHamilton46,
    DatasetId::FbBowdoin47,
    DatasetId::FbSwarthmore42,
    DatasetId::SocHamsterster,
    DatasetId::BioCelegans,
    DatasetId::CaGrQc,
    DatasetId::CaNetscience,
];

/// Loads a dataset: the genuine edge list if present under
/// `$GRAPHALIGN_DATA_DIR/<name>.txt`, otherwise the seeded synthetic replica.
pub fn load(id: DatasetId) -> Graph {
    if let Ok(dir) = std::env::var("GRAPHALIGN_DATA_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{}.txt", spec(id).name));
        if let Ok(file) = std::fs::File::open(&path) {
            let reader = std::io::BufReader::new(file);
            if let Ok(parsed) = io::read_edge_list(reader) {
                return parsed.graph;
            }
        }
    }
    replica(id)
}

/// Builds the synthetic replica of a dataset (always; ignores
/// `GRAPHALIGN_DATA_DIR`). Deterministic: the seed is derived from the
/// dataset id.
pub fn replica(id: DatasetId) -> Graph {
    let s = spec(id);
    let seed = replica_seed(id);
    let g = match s.kind {
        NetworkKind::Communication | NetworkKind::Biological => {
            // Power-law with moderate clustering.
            let m_attach = (s.m as f64 / s.n as f64).round().max(1.0) as usize;
            gen::powerlaw_cluster(s.n, m_attach, 0.5, seed)
        }
        NetworkKind::Social | NetworkKind::Collaboration => {
            // Denser power-law with strong clustering (collaboration networks
            // "have many triangles", §5.1.3).
            let m_attach = (s.m as f64 / s.n as f64).round().max(1.0) as usize;
            gen::powerlaw_cluster(s.n, m_attach, 0.8, seed)
        }
        NetworkKind::Infrastructure => {
            // Very sparse, near-planar: configuration model over a narrow
            // normal degree distribution reproduces grids-with-powerlaw-tail.
            let mean = 2.0 * s.m as f64 / s.n as f64;
            let seq = gen::degrees::normal(s.n, mean, mean / 3.0, seed);
            gen::configuration_model(&seq, seed)
        }
        NetworkKind::Proximity => {
            // Dense small-world contact structure with Gaussian degrees.
            let mut k = (2.0 * s.m as f64 / s.n as f64).round() as usize;
            if !k.is_multiple_of(2) {
                k += 1;
            }
            gen::watts_strogatz(s.n, k.clamp(2, s.n - 1), 0.5, seed)
        }
    };
    adjust_edge_count(&g, s.m, seed ^ 0x5eed)
}

fn replica_seed(id: DatasetId) -> u64 {
    // Stable per-dataset seed (position in ALL).
    0xEDB7_2023_u64 ^ ((ALL.iter().position(|s| s.id == id).unwrap() as u64) << 8)
}

/// Adds random non-edges or removes random edges until the graph has exactly
/// `target_m` edges (used to pin replicas to Table 2's edge counts).
fn adjust_edge_count(g: &Graph, target_m: usize, seed: u64) -> Graph {
    let n = g.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::from_graph(g);
    let max_edges = n * (n - 1) / 2;
    let target = target_m.min(max_edges);
    let mut guard = 0usize;
    while builder.edge_count() < target && guard < 100 * target + 1000 {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    while builder.edge_count() > target {
        let edges = builder.edge_vec();
        let (u, v) = edges[rng.random_range(0..edges.len())];
        builder.remove_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_graph::traversal::connected_components;

    #[test]
    fn every_id_has_a_spec() {
        assert_eq!(ALL.len(), 16);
        for s in &ALL {
            assert_eq!(spec(s.id).name, s.name);
        }
    }

    #[test]
    fn small_replicas_match_table2_exactly() {
        for id in [
            DatasetId::Arenas,
            DatasetId::CaNetscience,
            DatasetId::HighSchool,
            DatasetId::Voles,
            DatasetId::BioCelegans,
            DatasetId::InfEuroroad,
        ] {
            let s = spec(id);
            let g = replica(id);
            assert_eq!(g.node_count(), s.n, "{}: node count", s.name);
            assert_eq!(g.edge_count(), s.m, "{}: edge count", s.name);
        }
    }

    #[test]
    fn replicas_are_deterministic() {
        assert_eq!(replica(DatasetId::Arenas), replica(DatasetId::Arenas));
        assert_ne!(replica(DatasetId::HighSchool), replica(DatasetId::Voles));
    }

    #[test]
    fn social_replicas_have_skewed_degrees() {
        let g = replica(DatasetId::Arenas);
        let degrees = g.degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = g.avg_degree();
        assert!(max as f64 > 4.0 * mean, "power-law tail expected: max={max}, mean={mean}");
    }

    #[test]
    fn proximity_replicas_have_flat_degrees() {
        let g = replica(DatasetId::HighSchool);
        let degrees = g.degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = g.avg_degree();
        assert!((max as f64) < 2.5 * mean, "Gaussian degrees expected: max={max}, mean={mean}");
    }

    #[test]
    fn infrastructure_replica_is_sparse_and_fragmented() {
        let g = replica(DatasetId::InfEuroroad);
        assert!(g.avg_degree() < 3.0);
        // Sparse configuration-model graphs are not fully connected, like
        // the genuine euroroad network (ℓ = 200).
        let comps = connected_components(&g);
        assert!(comps.count > 1);
    }

    #[test]
    fn load_falls_back_to_replica_without_data_dir() {
        // The test environment does not define GRAPHALIGN_DATA_DIR.
        if std::env::var("GRAPHALIGN_DATA_DIR").is_err() {
            assert_eq!(load(DatasetId::Voles), replica(DatasetId::Voles));
        }
    }

    #[test]
    fn figure_subsets_reference_valid_specs() {
        for id in FIGURE7.iter().chain(FIGURE8.iter()) {
            let s = spec(*id);
            assert!(s.n > 0 && s.m > 0);
        }
    }
}

#[cfg(test)]
mod data_dir_tests {
    use super::*;
    use std::io::Write as _;
    use std::sync::Mutex;

    /// Serializes the tests that touch GRAPHALIGN_DATA_DIR (env vars are
    /// process-global and the default test harness is multi-threaded).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn load_prefers_real_edge_list_when_data_dir_is_set() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("graphalign-data-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A tiny stand-in "real" Voles file: a triangle.
        let mut f = std::fs::File::create(dir.join("Voles.txt")).unwrap();
        writeln!(f, "0 1\n1 2\n2 0").unwrap();
        std::env::set_var("GRAPHALIGN_DATA_DIR", &dir);
        let g = load(DatasetId::Voles);
        std::env::remove_var("GRAPHALIGN_DATA_DIR");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(g.node_count(), 3, "the real file must win over the replica");
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn load_ignores_missing_files_in_data_dir() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("graphalign-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("GRAPHALIGN_DATA_DIR", &dir);
        let g = load(DatasetId::HighSchool);
        std::env::remove_var("GRAPHALIGN_DATA_DIR");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(g, replica(DatasetId::HighSchool), "must fall back to the replica");
    }
}
