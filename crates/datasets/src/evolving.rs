//! Evolving graphs with real-noise ground truth (paper §6.5).
//!
//! HighSchool and Voles are temporal proximity networks; the paper matches
//! the *last* version of each graph against versions retaining 80 %, 85 %,
//! 90 %, and 99 % of its edges. MultiMagna is a base yeast PPI network with
//! five variants that *add* candidate-interaction edges. The genuine node
//! identities provide ground truth, so no synthetic noise model is involved —
//! "the most challenging scenario, since the real noise distribution is
//! unknown".
//!
//! Our replicas reproduce the exact evaluation protocol on synthetic base
//! topologies (see DESIGN.md §3): the base graph comes from the dataset
//! registry and the variants are seeded edge subsets/supersets, so the
//! harness logic, measures and plots are identical to the paper's — only the
//! base topology is synthetic.

use crate::{replica, DatasetId};
use graphalign_graph::{Graph, GraphBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One variant of an evolving dataset.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable label, e.g. `"80%"` or `"variant-3"`.
    pub label: String,
    /// The variant graph, over the same node set as the base graph.
    pub graph: Graph,
}

/// An evolving dataset: a base graph plus variants sharing its node set.
/// The ground-truth alignment between base and any variant is the identity
/// (the harness additionally permutes variant node ids before handing the
/// pair to an algorithm).
#[derive(Debug, Clone)]
pub struct EvolvingDataset {
    /// Dataset name.
    pub name: &'static str,
    /// The reference (latest/base) graph.
    pub base: Graph,
    /// Variants to align against the base.
    pub variants: Vec<Variant>,
}

/// Keeps a uniformly random `fraction` of the edges of `g`.
fn keep_edges(g: &Graph, fraction: f64, rng: &mut StdRng) -> Graph {
    let mut edges: Vec<(usize, usize)> = g.edges().collect();
    edges.shuffle(rng);
    let keep = ((fraction * edges.len() as f64).round() as usize).min(edges.len());
    Graph::from_edges(g.node_count(), &edges[..keep])
}

/// Adds up to `extra` random non-edges to `g`, returning the new graph and
/// the number of edges actually added. On dense (or small) graphs the
/// rejection sampler can exhaust its draw budget before placing all `extra`
/// edges — the caller must check the returned count instead of assuming the
/// request was met (silently under-delivering here used to skew the
/// MultiMagna noise levels).
fn add_random_edges(g: &Graph, extra: usize, rng: &mut StdRng) -> (Graph, usize) {
    let n = g.node_count();
    let before = g.edge_count();
    let mut b = GraphBuilder::from_graph(g);
    let target = before + extra;
    let mut guard = 0;
    while b.edge_count() < target && guard < 100 * extra + 1000 {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    let added = b.edge_count() - before;
    (b.build(), added)
}

/// Edge-retention levels used by the temporal datasets (§6.5).
pub const RETENTION_LEVELS: [f64; 4] = [0.80, 0.85, 0.90, 0.99];

/// Builds a temporal-style evolving dataset over an arbitrary base graph:
/// variants keep 80/85/90/99 % of the base edges. Public so harnesses can
/// run the same protocol on scaled-down stand-ins.
pub fn temporal(name: &'static str, base: Graph, seed: u64) -> EvolvingDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let variants = RETENTION_LEVELS
        .iter()
        .map(|&f| Variant {
            label: format!("{:.0}%", f * 100.0),
            graph: keep_edges(&base, f, &mut rng),
        })
        .collect();
    EvolvingDataset { name, base, variants }
}

/// The HighSchool contact network with its four temporal variants.
pub fn high_school() -> EvolvingDataset {
    temporal("HighSchool", replica(DatasetId::HighSchool), 0x4165)
}

/// The Voles wildlife contact network with its four temporal variants.
pub fn voles() -> EvolvingDataset {
    temporal("Voles", replica(DatasetId::Voles), 0x70135)
}

/// The MultiMagna yeast network with five variants that add 5 %, 10 %, …,
/// 25 % candidate-interaction edges to the base network.
pub fn multi_magna() -> EvolvingDataset {
    multi_magna_protocol(replica(DatasetId::MultiMagna), 0x3a63a)
}

/// The MultiMagna protocol over an arbitrary base graph: five variants
/// adding 5 %, 10 %, …, 25 % extra candidate edges.
pub fn multi_magna_protocol(base: Graph, seed: u64) -> EvolvingDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = base.edge_count();
    let variants = (1..=5)
        .map(|i| {
            let extra = (0.05 * i as f64 * m as f64).round() as usize;
            let (graph, added) = add_random_edges(&base, extra, &mut rng);
            if added < extra {
                eprintln!(
                    "multi_magna_protocol: variant-{i} wanted {extra} extra edges \
                     but only {added} non-edges could be placed; noise level will \
                     be lower than labeled"
                );
            }
            Variant { label: format!("variant-{i}"), graph }
        })
        .collect();
    EvolvingDataset { name: "MultiMagna", base, variants }
}

/// All three evolving datasets, in the paper's Figure 10 order.
pub fn all() -> Vec<EvolvingDataset> {
    vec![high_school(), voles(), multi_magna()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_variants_are_edge_subsets() {
        let ds = high_school();
        assert_eq!(ds.variants.len(), 4);
        for v in &ds.variants {
            assert_eq!(v.graph.node_count(), ds.base.node_count());
            for (a, b) in v.graph.edges() {
                assert!(ds.base.has_edge(a, b), "variant edge missing in base");
            }
        }
    }

    #[test]
    fn retention_fractions_are_respected() {
        let ds = voles();
        let m = ds.base.edge_count() as f64;
        for (v, &f) in ds.variants.iter().zip(RETENTION_LEVELS.iter()) {
            let ratio = v.graph.edge_count() as f64 / m;
            assert!((ratio - f).abs() < 0.01, "{}: ratio {ratio} vs {f}", v.label);
        }
    }

    #[test]
    fn multimagna_variants_are_edge_supersets() {
        let ds = multi_magna();
        assert_eq!(ds.variants.len(), 5);
        for (a, b) in ds.base.edges() {
            for v in &ds.variants {
                assert!(v.graph.has_edge(a, b), "base edge missing in {}", v.label);
            }
        }
        // Each variant adds more edges than the previous.
        for w in ds.variants.windows(2) {
            assert!(w[1].graph.edge_count() > w[0].graph.edge_count());
        }
    }

    #[test]
    fn add_random_edges_reports_actual_count() {
        let mut rng = StdRng::seed_from_u64(7);
        // A complete graph has no room: the sampler must report 0 added
        // edges rather than pretending it delivered the request.
        let n = 6;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        let complete = Graph::from_edges(n, &edges);
        let (graph, added) = add_random_edges(&complete, 10, &mut rng);
        assert_eq!(added, 0);
        assert_eq!(graph.edge_count(), complete.edge_count());

        // A sparse graph has room: the full request is delivered and the
        // reported count matches the edge-count delta.
        let sparse = Graph::from_edges(50, &[(0, 1), (1, 2)]);
        let (graph, added) = add_random_edges(&sparse, 20, &mut rng);
        assert_eq!(added, 20);
        assert_eq!(graph.edge_count(), sparse.edge_count() + added);
    }

    #[test]
    fn evolving_datasets_are_deterministic() {
        let a = multi_magna();
        let b = multi_magna();
        for (va, vb) in a.variants.iter().zip(&b.variants) {
            assert_eq!(va.graph, vb.graph);
        }
    }

    #[test]
    fn all_returns_three_datasets() {
        let names: Vec<&str> = all().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["HighSchool", "Voles", "MultiMagna"]);
    }
}
