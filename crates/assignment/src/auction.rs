//! Auction algorithm for sparse maximum-weight matching (MWM).
//!
//! LREA (paper §6.2) extracts its alignment by running a sparse
//! maximum-weight-matching solver over a "union of matchings" candidate
//! list. We implement Bertsekas' forward auction with ε-scaling: rows bid
//! for their best column at a premium of ε, prices rise, and the process
//! provably terminates with a matching within `n · ε_final` of optimal. With
//! the default scaling schedule the result matches JV on the benchmark
//! similarity matrices ("MWM produces results similar to those of JV").
//!
//! Rows whose stored candidates are exhausted fall back to zero-similarity
//! bids on any free column (the similarity floor of the alignment problem),
//! so a complete one-to-one matching is always returned.
//!
//! The bidding loop also polls the cooperative cell budget
//! ([`graphalign_par::budget`]) periodically: when the budget expires the
//! auction stops bidding and completes the matching with the free-column
//! fallback. The result is still a valid one-to-one matching, but possibly
//! far from optimal — the harness records such cells as timeouts and
//! discards their measures.

use graphalign_linalg::CsrMatrix;

/// Configuration of the ε-scaling schedule.
#[derive(Debug, Clone, Copy)]
pub struct AuctionParams {
    /// Initial bidding increment, as a fraction of the similarity range.
    pub epsilon_start: f64,
    /// Final bidding increment (controls optimality gap `n · ε`).
    pub epsilon_end: f64,
    /// Multiplicative decrease per scaling phase.
    pub scaling: f64,
    /// Safety cap on total bids per phase.
    pub max_bids_per_phase: usize,
}

impl Default for AuctionParams {
    fn default() -> Self {
        Self { epsilon_start: 0.25, epsilon_end: 1e-4, scaling: 0.25, max_bids_per_phase: 0 }
    }
}

/// Maximum-weight one-to-one matching on a sparse similarity matrix with the
/// default ε-scaling schedule; entries absent from the matrix are treated as
/// zero-similarity fallbacks. Returns `out[row] = col`.
///
/// # Panics
/// Panics if `rows > cols`.
pub fn auction_max(sim: &CsrMatrix) -> Vec<usize> {
    auction_max_with(sim, &AuctionParams::default())
}

/// [`auction_max`] with an explicit parameter schedule.
///
/// # Panics
/// Panics if `rows > cols`.
pub fn auction_max_with(sim: &CsrMatrix, params: &AuctionParams) -> Vec<usize> {
    let (n, m) = (sim.rows(), sim.cols());
    assert!(n <= m, "auction: need rows ≤ cols (got {n} × {m})");
    if n == 0 {
        return Vec::new();
    }
    // Scale ε to the similarity magnitude so the schedule is unitless.
    let max_abs = sim.frobenius_norm().max(1.0);
    let range = (0..n)
        .flat_map(|i| sim.row_values(i).iter().copied())
        .fold(0.0_f64, |acc, v| acc.max(v.abs()))
        .max(max_abs / (n as f64).sqrt().max(1.0))
        .max(1e-12);

    let mut price = vec![0.0; m];
    let mut row_of: Vec<Option<usize>> = vec![None; m];
    let mut col_of: Vec<Option<usize>> = vec![None; n];

    let mut eps = params.epsilon_start * range;
    let eps_end = params.epsilon_end * range;
    let bid_cap = if params.max_bids_per_phase == 0 {
        // Default: generous but finite (auction is O(n² · range/ε) bids).
        100 * n * m + 10_000
    } else {
        params.max_bids_per_phase
    };

    // Budget polls are amortized over batches of bids: one `Instant::now()`
    // per bid would dominate the cheap sparse bidding work.
    const BUDGET_POLL_INTERVAL: usize = 256;
    let mut interrupted = false;
    loop {
        // Phase: reset the matching (standard ε-scaling restarts assignments
        // but keeps prices, which is what accelerates later phases).
        row_of.iter_mut().for_each(|r| *r = None);
        col_of.iter_mut().for_each(|c| *c = None);
        let mut free: Vec<usize> = (0..n).rev().collect();
        let mut bids = 0usize;
        while let Some(i) = free.pop() {
            bids += 1;
            if bids > bid_cap {
                break;
            }
            if bids.is_multiple_of(BUDGET_POLL_INTERVAL) && graphalign_par::budget::exceeded() {
                interrupted = true;
                break;
            }
            // Best and second-best net value over stored candidates plus the
            // zero-similarity fallback on the cheapest column.
            let mut best_j = usize::MAX;
            let mut best_v = f64::NEG_INFINITY;
            let mut second_v = f64::NEG_INFINITY;
            for (j, s) in sim.row_iter(i) {
                let v = s - price[j];
                if v > best_v {
                    second_v = best_v;
                    best_v = v;
                    best_j = j;
                } else if v > second_v {
                    second_v = v;
                }
            }
            // Zero-similarity fallback: the cheapest column *not stored* in
            // this row (absent entries mean similarity 0; stored entries —
            // including negative ones — must keep their true value).
            let stored = sim.row_cols(i);
            let fallback = price
                .iter()
                .enumerate()
                .filter(|(j, _)| stored.binary_search(j).is_err())
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("prices are finite"));
            if let Some((cheap_j, cheap_p)) = fallback {
                let fallback_v = 0.0 - cheap_p;
                if fallback_v > best_v {
                    second_v = best_v;
                    best_v = fallback_v;
                    best_j = cheap_j;
                } else if fallback_v > second_v && cheap_j != best_j {
                    second_v = fallback_v;
                }
            }
            debug_assert!(best_j != usize::MAX);
            // Bid: raise the price so the row is indifferent at second_v − ε.
            let increment = if second_v.is_finite() { best_v - second_v + eps } else { eps };
            price[best_j] += increment;
            // Assign, evicting any current owner.
            if let Some(prev) = row_of[best_j] {
                col_of[prev] = None;
                free.push(prev);
            }
            row_of[best_j] = Some(i);
            col_of[i] = Some(best_j);
        }
        graphalign_par::telemetry::count_auction_bids(bids as u64);
        if interrupted || eps <= eps_end {
            break;
        }
        eps = (eps * params.scaling).max(eps_end);
    }

    // Complete any rows the bid cap left unmatched (degenerate inputs only).
    let mut free_cols: Vec<usize> = (0..m).filter(|&j| row_of[j].is_none()).collect();
    let out: Vec<usize> = col_of
        .into_iter()
        .map(|c| c.unwrap_or_else(|| free_cols.pop().expect("cols ≥ rows")))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_linalg::DenseMatrix;

    fn value(sim: &DenseMatrix, a: &[usize]) -> f64 {
        a.iter().enumerate().map(|(i, &j)| sim.get(i, j)).sum()
    }

    #[test]
    fn matches_optimal_on_random_dense_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(321);
        for trial in 0..20 {
            let n = rng.random_range(2..=8);
            let sim_dense = DenseMatrix::from_fn(n, n, |_, _| rng.random_range(0.0..1.0));
            let sparse = CsrMatrix::from_dense(&sim_dense);
            let a = auction_max(&sparse);
            let opt = value(&sim_dense, &crate::hungarian::hungarian_max(&sim_dense));
            let got = value(&sim_dense, &a);
            assert!(got >= opt - 0.01 * n as f64, "trial {trial}: auction {got} vs optimal {opt}");
            // One-to-one.
            let mut seen = vec![false; n];
            for &j in &a {
                assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }

    #[test]
    fn sparse_candidates_complete_to_full_matching() {
        // Only a diagonal of candidates on a 5×5 problem.
        let sparse = CsrMatrix::from_triplets(5, 5, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let a = auction_max(&sparse);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1);
        assert_eq!(a[2], 2);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prefers_heavy_edges() {
        let sparse =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 10.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 0.0)]);
        // Optimal is the anti-diagonal: 9 + 9 > 10 + 0.
        let a = auction_max(&sparse);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn rectangular_problem_leaves_columns_free() {
        let sparse = CsrMatrix::from_triplets(2, 4, &[(0, 3, 1.0), (1, 2, 1.0)]);
        let a = auction_max(&sparse);
        assert_eq!(a, vec![3, 2]);
    }

    #[test]
    fn empty_matrix() {
        assert!(auction_max(&CsrMatrix::zeros(0, 0)).is_empty());
    }

    #[test]
    fn expired_budget_still_yields_valid_matching() {
        // With a dead budget the auction gives up bidding early but must
        // still return a complete one-to-one matching via the fallback.
        let n = 20;
        let dense = DenseMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64);
        let sparse = CsrMatrix::from_dense(&dense);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let a = auction_max(&sparse);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod param_tests {
    use super::*;
    use graphalign_linalg::DenseMatrix;

    #[test]
    fn coarser_epsilon_trades_quality_for_speed() {
        let mut rng = StdRngCompat::seed(77);
        let n = 12;
        let dense = DenseMatrix::from_fn(n, n, |_, _| rng.next());
        let sparse = CsrMatrix::from_dense(&dense);
        let value =
            |a: &[usize]| -> f64 { a.iter().enumerate().map(|(i, &j)| dense.get(i, j)).sum() };
        let fine = AuctionParams { epsilon_end: 1e-6, ..AuctionParams::default() };
        let coarse = AuctionParams {
            epsilon_start: 0.5,
            epsilon_end: 0.5,
            scaling: 1.0,
            max_bids_per_phase: 0,
        };
        let v_fine = value(&auction_max_with(&sparse, &fine));
        let v_coarse = value(&auction_max_with(&sparse, &coarse));
        // Fine ε is at least as good; both are valid matchings.
        assert!(v_fine >= v_coarse - 1e-9, "fine {v_fine} vs coarse {v_coarse}");
    }

    /// Deterministic tiny RNG for this module (keeps the test self-contained).
    struct StdRngCompat(u64);
    impl StdRngCompat {
        fn seed(s: u64) -> Self {
            Self(s.wrapping_mul(0x9e3779b97f4a7c15) | 1)
        }
        fn next(&mut self) -> f64 {
            // xorshift64*
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}
