//! Linear-assignment solvers — the final step of every alignment pipeline.
//!
//! Every algorithm in the study reduces graph alignment to extracting a
//! matching from a node-similarity matrix (paper §3, "Assignment"). The four
//! extraction strategies the paper compares (§6.2, Figure 1) are all here:
//!
//! * [`nn`] — nearest neighbor: each source node takes its most similar
//!   target node; many-to-one (what REGAL/CONE/GWL/S-GWL propose);
//! * [`greedy`] — SortGreedy: scan pairs by decreasing similarity, matching
//!   greedily one-to-one (IsoRank/NSD/GRAAL);
//! * [`hungarian`] — Kuhn–Munkres with potentials, the optimal LAP baseline;
//! * [`jv`] — Jonker–Volgenant, the paper's common assignment of choice
//!   ("JV is our assignment method of choice as it improves alignment
//!   accuracy with all algorithms");
//! * [`auction`] — an auction-algorithm Maximum Weight Matching for sparse
//!   similarity matrices (LREA's MWM);
//! * [`kdtree`] — the k-d tree REGAL and CONE use to extract nearest
//!   neighbors from embeddings without materializing the similarity matrix.
//!
//! All entry points **maximize** total similarity and return, for each
//! source row, the assigned target column.
//!
//! # Representation dispatch
//!
//! [`assign`] consumes the [`Similarity`] pipeline currency and routes each
//! method to its best native path: nearest neighbor and SortGreedy work
//! directly on factored (`LowRank`) and sparse input without ever
//! materializing an `n × m` matrix, auction consumes sparse candidates
//! natively, and the optimal LAP solvers (Hungarian/JV), which genuinely
//! need random access to every entry, densify through the single audited
//! [`Similarity::to_dense`] choke point backed by a thread-local
//! [`Workspace`] pool (reuses are tallied as `allocs_saved`, the
//! materializations as `densifications` telemetry). Whatever the route, the
//! matching is bit-identical to running the method on the densified matrix.

pub mod auction;
pub mod greedy;
pub mod hungarian;
pub mod jv;
pub mod kdtree;
pub mod nn;
pub mod topk;

use graphalign_linalg::{DenseMatrix, Similarity, Workspace};
use std::cell::RefCell;

/// The assignment strategies compared in the paper's §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignmentMethod {
    /// Row-wise argmax; many-to-one.
    NearestNeighbor,
    /// Greedy one-to-one matching on similarity-sorted pairs.
    SortGreedy,
    /// Optimal LAP via Kuhn–Munkres.
    Hungarian,
    /// Optimal LAP via Jonker–Volgenant (the study's common choice).
    JonkerVolgenant,
    /// Near-optimal sparse maximum-weight matching via the auction algorithm.
    Auction,
}

impl AssignmentMethod {
    /// All methods, in the order of the paper's Figure 1 legends.
    pub const ALL: [AssignmentMethod; 5] = [
        AssignmentMethod::NearestNeighbor,
        AssignmentMethod::SortGreedy,
        AssignmentMethod::Hungarian,
        AssignmentMethod::JonkerVolgenant,
        AssignmentMethod::Auction,
    ];

    /// Label used in harness output ("NN", "SG", "HUN", "JV", "MWM").
    pub fn label(&self) -> &'static str {
        match self {
            AssignmentMethod::NearestNeighbor => "NN",
            AssignmentMethod::SortGreedy => "SG",
            AssignmentMethod::Hungarian => "HUN",
            AssignmentMethod::JonkerVolgenant => "JV",
            AssignmentMethod::Auction => "MWM",
        }
    }

    /// Parses a case-insensitive method label as accepted by the CLI and the
    /// serving protocol: the short forms `nn|sg|hun|jv|mwm` plus the
    /// spelled-out aliases `hungarian` and `auction`.
    pub fn parse_label(label: &str) -> Result<Self, String> {
        match label.to_ascii_lowercase().as_str() {
            "nn" => Ok(AssignmentMethod::NearestNeighbor),
            "sg" => Ok(AssignmentMethod::SortGreedy),
            "hun" | "hungarian" => Ok(AssignmentMethod::Hungarian),
            "jv" => Ok(AssignmentMethod::JonkerVolgenant),
            "mwm" | "auction" => Ok(AssignmentMethod::Auction),
            other => Err(format!("unknown assignment {other:?}; use nn|sg|hun|jv|mwm")),
        }
    }
}

thread_local! {
    /// Scratch pool backing [`with_dense`]: Hungarian/JV densifications at
    /// every cell of a sweep reuse one buffer instead of allocating afresh
    /// (PR-4 `Workspace` semantics, observable via `allocs_saved`).
    static DENSIFY_POOL: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Runs `f` on a dense view of `sim`: borrowed directly when already dense,
/// otherwise materialized through the audited [`Similarity::to_dense`] choke
/// point into the thread-local scratch pool and returned to it afterwards.
fn with_dense<R>(sim: &Similarity, f: impl FnOnce(&DenseMatrix) -> R) -> R {
    if let Some(m) = sim.as_dense() {
        return f(m);
    }
    DENSIFY_POOL.with(|pool| {
        let mut ws = pool.borrow_mut();
        let dense = sim.to_dense(&mut ws);
        let out = f(&dense);
        ws.give_matrix(dense);
        out
    })
}

/// Extracts an alignment from a similarity matrix with the chosen method,
/// maximizing total similarity. Returns `out[row] = column`.
///
/// Dispatches to the method's best path for the input representation (see
/// the module docs); the matching is always bit-identical to running the
/// method on `sim.to_dense(..)`.
///
/// One-to-one methods require `rows ≤ cols`; [`AssignmentMethod::NearestNeighbor`]
/// accepts any shape (and may assign a column twice).
///
/// # Panics
/// Panics if a one-to-one method is requested with `rows > cols`, or if the
/// similarity contains NaN (for factored input: in the factors or offsets).
pub fn assign(sim: &Similarity, method: AssignmentMethod) -> Vec<usize> {
    assert!(sim.all_finite(), "assignment requires a finite similarity matrix");
    match method {
        AssignmentMethod::NearestNeighbor => nn::nearest_neighbor_sim(sim),
        AssignmentMethod::SortGreedy => greedy::sort_greedy_sim(sim),
        AssignmentMethod::Hungarian => with_dense(sim, hungarian::hungarian_max),
        AssignmentMethod::JonkerVolgenant => with_dense(sim, jv::jv_max),
        AssignmentMethod::Auction => match sim {
            Similarity::Sparse(s) => {
                // The densified route runs `CsrMatrix::from_dense`, which drops
                // exact zeros; strip stored `±0.0` entries so the native path
                // hands auction the identical candidate set.
                let zeros = (0..s.rows()).any(|i| s.row_values(i).contains(&0.0));
                if zeros {
                    let trips: Vec<(usize, usize, f64)> = (0..s.rows())
                        .flat_map(|i| {
                            s.row_iter(i).filter(|&(_, v)| v != 0.0).map(move |(j, v)| (i, j, v))
                        })
                        .collect();
                    let stripped =
                        graphalign_linalg::CsrMatrix::from_triplets(s.rows(), s.cols(), &trips);
                    auction::auction_max(&stripped)
                } else {
                    auction::auction_max(s)
                }
            }
            _ => with_dense(sim, |m| {
                let sparse = graphalign_linalg::CsrMatrix::from_dense(m);
                auction::auction_max(&sparse)
            }),
        },
    }
}

/// Total similarity of an assignment (the LAP objective), for tests and the
/// assignment-method ablation.
pub fn assignment_value(sim: &DenseMatrix, assignment: &[usize]) -> f64 {
    assignment.iter().enumerate().map(|(i, &j)| sim.get(i, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Similarity {
        Similarity::Dense(DenseMatrix::from_rows(&[
            &[0.9, 0.1, 0.2],
            &[0.8, 0.7, 0.1],
            &[0.1, 0.3, 0.2],
        ]))
    }

    #[test]
    fn one_to_one_methods_return_permutations() {
        let sim = sample();
        for method in [
            AssignmentMethod::SortGreedy,
            AssignmentMethod::Hungarian,
            AssignmentMethod::JonkerVolgenant,
            AssignmentMethod::Auction,
        ] {
            let a = assign(&sim, method);
            let mut seen = [false; 3];
            for &j in &a {
                assert!(!seen[j], "{method:?} produced a duplicate column");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn optimal_methods_agree_on_objective() {
        let sim = sample();
        let dense = sim.as_dense().unwrap();
        let hun = assignment_value(dense, &assign(&sim, AssignmentMethod::Hungarian));
        let jv = assignment_value(dense, &assign(&sim, AssignmentMethod::JonkerVolgenant));
        assert!((hun - jv).abs() < 1e-9, "Hungarian {hun} vs JV {jv}");
        // Optimum for `sample` is 0.9 + 0.7 + 0.2 = 1.8.
        assert!((hun - 1.8).abs() < 1e-9);
    }

    #[test]
    fn nn_takes_row_maxima() {
        let a = assign(&sample(), AssignmentMethod::NearestNeighbor);
        assert_eq!(a, vec![0, 0, 1], "NN is many-to-one");
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic greedy trap: greedy takes (0,0)=10 then is forced into
        // (1,1)=0; optimal is (0,1)+(1,0) = 9 + 9.
        let sim = Similarity::Dense(DenseMatrix::from_rows(&[&[10.0, 9.0], &[9.0, 0.0]]));
        let dense = sim.as_dense().unwrap();
        let g = assignment_value(dense, &assign(&sim, AssignmentMethod::SortGreedy));
        let o = assignment_value(dense, &assign(&sim, AssignmentMethod::JonkerVolgenant));
        assert!((g - 10.0).abs() < 1e-12);
        assert!((o - 18.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite similarity")]
    fn nan_matrix_is_rejected() {
        let sim = Similarity::Dense(DenseMatrix::from_rows(&[&[f64::NAN]]));
        let _ = assign(&sim, AssignmentMethod::JonkerVolgenant);
    }

    #[test]
    fn every_method_matches_its_densified_path_on_every_representation() {
        use graphalign_linalg::{CsrMatrix, LowRankKernel, LowRankSim};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(123);
        let ya = DenseMatrix::from_fn(8, 3, |_, _| rng.random_range(-4..5) as f64 * 0.25);
        let yb = DenseMatrix::from_fn(10, 3, |_, _| rng.random_range(-4..5) as f64 * 0.25);
        let mut trips = Vec::new();
        for i in 0..8 {
            for j in 0..10 {
                if rng.random_range(0..10) < 3 {
                    trips.push((i, j, rng.random_range(-3..4) as f64 * 0.5));
                }
            }
        }
        let sims = [
            Similarity::LowRank(LowRankSim::new(ya.clone(), yb.clone(), LowRankKernel::Dot)),
            Similarity::LowRank(LowRankSim::new(ya.clone(), yb.clone(), LowRankKernel::NegSqDist)),
            Similarity::LowRank(LowRankSim::new(ya, yb, LowRankKernel::ExpNegSqDist)),
            Similarity::Sparse(CsrMatrix::from_triplets(8, 10, &trips)),
        ];
        for sim in &sims {
            let dense = Similarity::Dense(sim.to_dense(&mut Workspace::new()));
            for method in AssignmentMethod::ALL {
                assert_eq!(
                    assign(sim, method),
                    assign(&dense, method),
                    "{method:?} on {}",
                    sim.repr_kind()
                );
            }
        }
    }

    #[test]
    fn hungarian_densifications_reuse_the_thread_local_pool() {
        use graphalign_linalg::{LowRankKernel, LowRankSim};
        let _g = graphalign_par::telemetry::install(false);
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::from_fn(6, 2, |i, j| (i + j) as f64 * 0.1),
            DenseMatrix::from_fn(6, 2, |i, j| (i * j) as f64 * 0.1),
            LowRankKernel::Dot,
        ));
        let _ = assign(&lr, AssignmentMethod::Hungarian);
        let _ = graphalign_par::telemetry::drain();
        let _ = assign(&lr, AssignmentMethod::JonkerVolgenant);
        let t = graphalign_par::telemetry::drain();
        assert_eq!(t.densifications, 1, "JV densified once");
        assert!(t.allocs_saved > 0, "the second densification reuses the pooled buffer");
    }

    #[test]
    fn nn_and_sg_never_densify_factored_input() {
        use graphalign_linalg::{LowRankKernel, LowRankSim};
        let _g = graphalign_par::telemetry::install(false);
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::from_fn(6, 2, |i, j| (i as f64 - j as f64) * 0.3),
            DenseMatrix::from_fn(7, 2, |i, j| (i as f64 + j as f64) * 0.2),
            LowRankKernel::ExpNegSqDist,
        ));
        let _ = assign(&lr, AssignmentMethod::NearestNeighbor);
        let _ = assign(&lr, AssignmentMethod::SortGreedy);
        let t = graphalign_par::telemetry::drain();
        assert_eq!(t.densifications, 0, "NN/SG must stay on the factored path");
    }
}
