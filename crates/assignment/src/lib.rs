//! Linear-assignment solvers — the final step of every alignment pipeline.
//!
//! Every algorithm in the study reduces graph alignment to extracting a
//! matching from a node-similarity matrix (paper §3, "Assignment"). The four
//! extraction strategies the paper compares (§6.2, Figure 1) are all here:
//!
//! * [`nn`] — nearest neighbor: each source node takes its most similar
//!   target node; many-to-one (what REGAL/CONE/GWL/S-GWL propose);
//! * [`greedy`] — SortGreedy: scan pairs by decreasing similarity, matching
//!   greedily one-to-one (IsoRank/NSD/GRAAL);
//! * [`hungarian`] — Kuhn–Munkres with potentials, the optimal LAP baseline;
//! * [`jv`] — Jonker–Volgenant, the paper's common assignment of choice
//!   ("JV is our assignment method of choice as it improves alignment
//!   accuracy with all algorithms");
//! * [`auction`] — an auction-algorithm Maximum Weight Matching for sparse
//!   similarity matrices (LREA's MWM);
//! * [`kdtree`] — the k-d tree REGAL and CONE use to extract nearest
//!   neighbors from embeddings without materializing the similarity matrix.
//!
//! All entry points **maximize** total similarity and return, for each
//! source row, the assigned target column.

pub mod auction;
pub mod greedy;
pub mod hungarian;
pub mod jv;
pub mod kdtree;
pub mod nn;

use graphalign_linalg::DenseMatrix;

/// The assignment strategies compared in the paper's §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignmentMethod {
    /// Row-wise argmax; many-to-one.
    NearestNeighbor,
    /// Greedy one-to-one matching on similarity-sorted pairs.
    SortGreedy,
    /// Optimal LAP via Kuhn–Munkres.
    Hungarian,
    /// Optimal LAP via Jonker–Volgenant (the study's common choice).
    JonkerVolgenant,
    /// Near-optimal sparse maximum-weight matching via the auction algorithm.
    Auction,
}

impl AssignmentMethod {
    /// All methods, in the order of the paper's Figure 1 legends.
    pub const ALL: [AssignmentMethod; 5] = [
        AssignmentMethod::NearestNeighbor,
        AssignmentMethod::SortGreedy,
        AssignmentMethod::Hungarian,
        AssignmentMethod::JonkerVolgenant,
        AssignmentMethod::Auction,
    ];

    /// Label used in harness output ("NN", "SG", "HUN", "JV", "MWM").
    pub fn label(&self) -> &'static str {
        match self {
            AssignmentMethod::NearestNeighbor => "NN",
            AssignmentMethod::SortGreedy => "SG",
            AssignmentMethod::Hungarian => "HUN",
            AssignmentMethod::JonkerVolgenant => "JV",
            AssignmentMethod::Auction => "MWM",
        }
    }
}

/// Extracts an alignment from a similarity matrix with the chosen method,
/// maximizing total similarity. Returns `out[row] = column`.
///
/// One-to-one methods require `rows ≤ cols`; [`AssignmentMethod::NearestNeighbor`]
/// accepts any shape (and may assign a column twice).
///
/// # Panics
/// Panics if a one-to-one method is requested with `rows > cols`, or if the
/// matrix contains NaN.
pub fn assign(sim: &DenseMatrix, method: AssignmentMethod) -> Vec<usize> {
    assert!(sim.all_finite(), "assignment requires a finite similarity matrix");
    match method {
        AssignmentMethod::NearestNeighbor => nn::nearest_neighbor(sim),
        AssignmentMethod::SortGreedy => greedy::sort_greedy(sim),
        AssignmentMethod::Hungarian => hungarian::hungarian_max(sim),
        AssignmentMethod::JonkerVolgenant => jv::jv_max(sim),
        AssignmentMethod::Auction => {
            let sparse = graphalign_linalg::CsrMatrix::from_dense(sim);
            auction::auction_max(&sparse)
        }
    }
}

/// Total similarity of an assignment (the LAP objective), for tests and the
/// assignment-method ablation.
pub fn assignment_value(sim: &DenseMatrix, assignment: &[usize]) -> f64 {
    assignment.iter().enumerate().map(|(i, &j)| sim.get(i, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[0.9, 0.1, 0.2], &[0.8, 0.7, 0.1], &[0.1, 0.3, 0.2]])
    }

    #[test]
    fn one_to_one_methods_return_permutations() {
        let sim = sample();
        for method in [
            AssignmentMethod::SortGreedy,
            AssignmentMethod::Hungarian,
            AssignmentMethod::JonkerVolgenant,
            AssignmentMethod::Auction,
        ] {
            let a = assign(&sim, method);
            let mut seen = [false; 3];
            for &j in &a {
                assert!(!seen[j], "{method:?} produced a duplicate column");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn optimal_methods_agree_on_objective() {
        let sim = sample();
        let hun = assignment_value(&sim, &assign(&sim, AssignmentMethod::Hungarian));
        let jv = assignment_value(&sim, &assign(&sim, AssignmentMethod::JonkerVolgenant));
        assert!((hun - jv).abs() < 1e-9, "Hungarian {hun} vs JV {jv}");
        // Optimum for `sample` is 0.9 + 0.7 + 0.2 = 1.8.
        assert!((hun - 1.8).abs() < 1e-9);
    }

    #[test]
    fn nn_takes_row_maxima() {
        let a = assign(&sample(), AssignmentMethod::NearestNeighbor);
        assert_eq!(a, vec![0, 0, 1], "NN is many-to-one");
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic greedy trap: greedy takes (0,0)=10 then is forced into
        // (1,1)=0; optimal is (0,1)+(1,0) = 9 + 9.
        let sim = DenseMatrix::from_rows(&[&[10.0, 9.0], &[9.0, 0.0]]);
        let g = assignment_value(&sim, &assign(&sim, AssignmentMethod::SortGreedy));
        let o = assignment_value(&sim, &assign(&sim, AssignmentMethod::JonkerVolgenant));
        assert!((g - 10.0).abs() < 1e-12);
        assert!((o - 18.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite similarity")]
    fn nan_matrix_is_rejected() {
        let sim = DenseMatrix::from_rows(&[&[f64::NAN]]);
        let _ = assign(&sim, AssignmentMethod::JonkerVolgenant);
    }
}
