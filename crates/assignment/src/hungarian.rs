//! Kuhn–Munkres (Hungarian) algorithm with potentials.
//!
//! The `O(n²m)` shortest-augmenting-path formulation with dual potentials —
//! the optimal LAP baseline against which the paper's heuristics (NN, SG)
//! are compared. Works on rectangular problems with `rows ≤ cols`.

use graphalign_linalg::DenseMatrix;

/// Solves the LAP *minimizing* total cost; returns `out[row] = col`.
///
/// # Panics
/// Panics if `rows > cols` or the matrix contains NaN.
pub fn hungarian_min(cost: &DenseMatrix) -> Vec<usize> {
    let (n, m) = cost.shape();
    assert!(n <= m, "hungarian: need rows ≤ cols (got {n} × {m})");
    assert!(cost.all_finite(), "hungarian: cost matrix must be finite");
    if n == 0 {
        return Vec::new();
    }
    // 1-indexed arrays with a virtual 0 column/row, per the classical
    // potential-based formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j]: row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut out = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            out[p[j] - 1] = j - 1;
        }
    }
    out
}

/// Solves the LAP *maximizing* total similarity (negates and delegates to
/// [`hungarian_min`]).
///
/// # Panics
/// See [`hungarian_min`].
pub fn hungarian_max(sim: &DenseMatrix) -> Vec<usize> {
    hungarian_min(&sim.scaled(-1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal assignment by permutation enumeration.
    pub(crate) fn brute_force_max(sim: &DenseMatrix) -> f64 {
        let (n, m) = sim.shape();
        assert!(n <= m && m <= 8, "brute force only for tiny instances");
        fn rec(sim: &DenseMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
            if row == sim.rows() {
                return 0.0;
            }
            let mut best = f64::NEG_INFINITY;
            for j in 0..sim.cols() {
                if used[j] {
                    continue;
                }
                used[j] = true;
                let v = sim.get(row, j) + rec(sim, row + 1, used);
                used[j] = false;
                best = best.max(v);
            }
            best
        }
        rec(sim, 0, &mut vec![false; m])
    }

    #[test]
    fn known_3x3() {
        // Optimal: (0,1), (1,0), (2,2) with cost 1 + 2 + 3 = 6... verify by
        // brute force instead of hand arithmetic.
        let cost = DenseMatrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let a = hungarian_min(&cost);
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost.get(i, j)).sum();
        let best = -brute_force_max(&cost.scaled(-1.0));
        assert!((total - best).abs() < 1e-12, "{total} vs {best}");
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..30 {
            let n = rng.random_range(1..=6);
            let m = rng.random_range(n..=7);
            let sim = DenseMatrix::from_fn(n, m, |_, _| rng.random_range(-5.0..5.0));
            let a = hungarian_max(&sim);
            let total: f64 = a.iter().enumerate().map(|(i, &j)| sim.get(i, j)).sum();
            let best = brute_force_max(&sim);
            assert!(
                (total - best).abs() < 1e-9,
                "trial {trial}: hungarian {total} vs brute force {best}"
            );
            // Validity: distinct columns.
            let mut seen = vec![false; m];
            for &j in &a {
                assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }

    #[test]
    fn identity_similarity_prefers_diagonal() {
        let sim = DenseMatrix::identity(5);
        assert_eq!(hungarian_max(&sim), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_row() {
        let sim = DenseMatrix::from_rows(&[&[1.0, 5.0, 3.0]]);
        assert_eq!(hungarian_max(&sim), vec![1]);
    }

    #[test]
    fn empty_problem() {
        assert!(hungarian_min(&DenseMatrix::zeros(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "rows ≤ cols")]
    fn too_many_rows_panics() {
        hungarian_min(&DenseMatrix::zeros(2, 1));
    }
}
