//! Nearest-neighbor extraction (many-to-one).
//!
//! The assignment REGAL, CONE, GWL and S-GWL propose natively: each source
//! node independently takes its most similar target node. The paper restricts
//! these methods to one-to-one outputs for comparability (§6.2) — that
//! restriction is [`crate::greedy`] or [`crate::jv`] applied to the same
//! similarity matrix; this module provides the raw NN form plus the
//! embedding-space variant backed by the k-d tree.

use crate::kdtree::KdTree;
use graphalign_linalg::{CsrMatrix, DenseMatrix, LowRankSim, Similarity};

/// Row-wise argmax: `out[i] = argmax_j sim[i][j]`. Many-to-one. Ties break
/// to the lowest column index.
///
/// # Panics
/// Panics if the matrix has zero columns (no candidate to take).
pub fn nearest_neighbor(sim: &DenseMatrix) -> Vec<usize> {
    assert!(sim.cols() > 0, "nearest_neighbor: no columns to assign to");
    (0..sim.rows())
        .map(|i| {
            graphalign_linalg::vec_ops::argmax(sim.row(i))
                .expect("non-empty finite row has an argmax")
        })
        .collect()
}

/// Nearest neighbor on any similarity representation, dispatching to the
/// best native path: dense rows take [`nearest_neighbor`]'s argmax, factored
/// distance kernels query the k-d tree over the target factor rows (REGAL and
/// CONE's native extraction — no `n × m` materialization), factored dot
/// kernels scan one implicit row at a time through a pooled scratch row, and
/// sparse rows run an argmax that treats absent entries as exact `0.0`.
///
/// Every path selects exactly the column the dense argmax would select on
/// `sim.to_dense(..)` — see the per-path notes below.
///
/// # Panics
/// Panics if the matrix has zero columns (no candidate to take).
pub fn nearest_neighbor_sim(sim: &Similarity) -> Vec<usize> {
    assert!(sim.cols() > 0, "nearest_neighbor: no columns to assign to");
    match sim {
        Similarity::Dense(m) => nearest_neighbor(m),
        Similarity::LowRank(lr) => nearest_neighbor_lowrank(lr),
        Similarity::Sparse(s) => nearest_neighbor_sparse(s),
    }
}

/// Row argmax of an implicit factored similarity.
///
/// For the distance kernels (`NegSqDist`, `ExpNegSqDist`) the entry is a
/// strictly decreasing function of the factor-row distance, so the row
/// argmax is the nearest `yb` row; the k-d tree answers that in `O(d log m)`
/// per query and breaks exact-distance ties to the lowest target index —
/// the same winner as the dense first-strict-maximum argmax. (`-d²` is an
/// order-reversing bijection, so the match is exact; for `exp(-d²)` on the
/// L2-normalized embeddings REGAL/CONE produce, `d² ∈ [0, 4]` where `exp` is
/// injective on doubles, so equal similarities imply equal distances there
/// too.) Per-row offsets shift a whole row and never change its argmax.
///
/// For the `Dot` kernel there is no metric structure; the sharded blocked
/// top-1 scan ([`crate::topk::nearest_neighbor_sharded`]) walks each implicit
/// row in fixed tile order, evaluating bit-identical values to the densified
/// product and selecting the same first-strict-maximum winner — in parallel
/// over row shards.
fn nearest_neighbor_lowrank(lr: &LowRankSim) -> Vec<usize> {
    if lr.kernel().is_distance_kernel() {
        nearest_neighbor_embeddings(lr.ya(), lr.yb())
    } else {
        crate::topk::nearest_neighbor_sharded(lr, &crate::topk::TopKConfig::default())
    }
}

/// Row argmax of a sparse similarity whose absent entries are exact `0.0`,
/// replicating [`nearest_neighbor`]'s first-strict-maximum rule on the
/// densified row without materializing it: the winner is the smallest column
/// holding the row maximum, where every absent column is a `0.0` candidate.
fn nearest_neighbor_sparse(s: &CsrMatrix) -> Vec<usize> {
    let m = s.cols();
    (0..s.rows())
        .map(|i| {
            let cols = s.row_cols(i);
            let vals = s.row_values(i);
            // Smallest absent column, if the row is not fully stored.
            let absent = cols
                .iter()
                .enumerate()
                .find_map(|(k, &j)| (j != k).then_some(k))
                .or_else(|| (cols.len() < m).then_some(cols.len()));
            // First strict maximum over the stored entries (columns ascend).
            let stored =
                cols.iter().zip(vals).fold(None, |acc: Option<(usize, f64)>, (&j, &v)| match acc {
                    Some((_, bv)) if v <= bv => acc,
                    _ => Some((j, v)),
                });
            match (stored, absent) {
                (None, Some(z)) => z,
                (Some((j, _)), None) => j,
                (Some((j, v)), Some(z)) => {
                    // `==` treats a stored `-0.0` and the implicit `0.0` as a
                    // tie, exactly like the dense argmax's `>` test.
                    if v > 0.0 {
                        j
                    } else if v == 0.0 {
                        j.min(z)
                    } else {
                        z
                    }
                }
                (None, None) => unreachable!("cols > 0 means a row has stored or absent entries"),
            }
        })
        .collect()
}

/// Embedding-space nearest neighbor: aligns each row of `source_emb` to the
/// closest row of `target_emb` by Euclidean distance, via a k-d tree over the
/// target embeddings — exactly how REGAL and CONE query their embeddings
/// without materializing an `n × n` similarity matrix.
///
/// # Panics
/// Panics if the embedding dimensionalities differ or the target set is
/// empty.
pub fn nearest_neighbor_embeddings(
    source_emb: &DenseMatrix,
    target_emb: &DenseMatrix,
) -> Vec<usize> {
    assert_eq!(
        source_emb.cols(),
        target_emb.cols(),
        "embedding dimensionality mismatch ({} vs {})",
        source_emb.cols(),
        target_emb.cols()
    );
    assert!(target_emb.rows() > 0, "no target embeddings to match against");
    let tree = KdTree::build(target_emb.as_slice(), target_emb.cols());
    (0..source_emb.rows())
        .map(|i| tree.nearest(source_emb.row(i)).expect("tree is non-empty").0)
        .collect()
}

/// Converts embeddings into the similarity matrix the one-to-one solvers
/// need, using REGAL's kernel `sim(u, v) = exp(−‖Y_A[u] − Y_B[v]‖²)`
/// (paper Equation 10). Computed in parallel over row blocks for large
/// embedding sets (REGAL/CONE's n × n materialization step).
///
/// # Panics
/// Panics if the embedding dimensionalities differ.
pub fn embedding_similarity(source_emb: &DenseMatrix, target_emb: &DenseMatrix) -> DenseMatrix {
    assert_eq!(source_emb.cols(), target_emb.cols(), "embedding dimensionality mismatch");
    let (n, m) = (source_emb.rows(), target_emb.rows());
    DenseMatrix::par_from_fn(n, m, |i, j| {
        (-graphalign_linalg::vec_ops::dist2_sq(source_emb.row(i), target_emb.row(j))).exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_linalg::Workspace;

    #[test]
    fn argmax_per_row() {
        let sim = DenseMatrix::from_rows(&[&[0.2, 0.9, 0.1], &[0.5, 0.4, 0.5]]);
        assert_eq!(nearest_neighbor(&sim), vec![1, 0]);
    }

    #[test]
    fn embeddings_route_to_closest_target() {
        let src = DenseMatrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let tgt = DenseMatrix::from_rows(&[&[4.9, 5.1], &[0.1, -0.1], &[10.0, 10.0]]);
        assert_eq!(nearest_neighbor_embeddings(&src, &tgt), vec![1, 0]);
    }

    #[test]
    fn embedding_similarity_is_one_at_zero_distance() {
        let e = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let s = embedding_similarity(&e, &e);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn embedding_similarity_argmax_agrees_with_kdtree_nn() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(44);
        let src = DenseMatrix::from_fn(20, 4, |_, _| rng.random_range(-1.0..1.0));
        let tgt = DenseMatrix::from_fn(25, 4, |_, _| rng.random_range(-1.0..1.0));
        let via_matrix = nearest_neighbor(&embedding_similarity(&src, &tgt));
        let via_tree = nearest_neighbor_embeddings(&src, &tgt);
        assert_eq!(via_matrix, via_tree);
    }

    #[test]
    fn sparse_nn_matches_densified_argmax() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let (n, m) = (rng.random_range(1..8usize), rng.random_range(1..8usize));
            let mut trips = Vec::new();
            for i in 0..n {
                for j in 0..m.min(n) {
                    if rng.random_range(0..10) < 4 {
                        // Mix of positive, negative, exact-zero and -0.0.
                        let v = [1.5, -2.0, 0.0, -0.0, 0.25][rng.random_range(0..5usize)];
                        trips.push((i, j, v));
                    }
                }
            }
            let s = graphalign_linalg::CsrMatrix::from_triplets(n, m, &trips);
            let sim = Similarity::Sparse(s);
            let dense = sim.to_dense(&mut Workspace::new());
            if dense.cols() == 0 {
                continue;
            }
            assert_eq!(nearest_neighbor_sim(&sim), nearest_neighbor(&dense));
        }
    }

    #[test]
    fn lowrank_nn_matches_densified_argmax_for_every_kernel() {
        use graphalign_linalg::LowRankKernel;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(78);
        for kernel in [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist] {
            let src = DenseMatrix::from_fn(12, 3, |_, _| rng.random_range(-1.0..1.0));
            let tgt = DenseMatrix::from_fn(15, 3, |_, _| rng.random_range(-1.0..1.0));
            let sim = Similarity::LowRank(LowRankSim::new(src, tgt, kernel));
            let dense = sim.to_dense(&mut Workspace::new());
            assert_eq!(nearest_neighbor_sim(&sim), nearest_neighbor(&dense), "{kernel:?}");
        }
    }

    #[test]
    fn many_to_one_is_allowed() {
        let sim = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        assert_eq!(nearest_neighbor(&sim), vec![0, 0]);
    }
}
