//! Nearest-neighbor extraction (many-to-one).
//!
//! The assignment REGAL, CONE, GWL and S-GWL propose natively: each source
//! node independently takes its most similar target node. The paper restricts
//! these methods to one-to-one outputs for comparability (§6.2) — that
//! restriction is [`crate::greedy`] or [`crate::jv`] applied to the same
//! similarity matrix; this module provides the raw NN form plus the
//! embedding-space variant backed by the k-d tree.

use crate::kdtree::KdTree;
use graphalign_linalg::DenseMatrix;

/// Row-wise argmax: `out[i] = argmax_j sim[i][j]`. Many-to-one. Ties break
/// to the lowest column index.
///
/// # Panics
/// Panics if the matrix has zero columns (no candidate to take).
pub fn nearest_neighbor(sim: &DenseMatrix) -> Vec<usize> {
    assert!(sim.cols() > 0, "nearest_neighbor: no columns to assign to");
    (0..sim.rows())
        .map(|i| {
            graphalign_linalg::vec_ops::argmax(sim.row(i))
                .expect("non-empty finite row has an argmax")
        })
        .collect()
}

/// Embedding-space nearest neighbor: aligns each row of `source_emb` to the
/// closest row of `target_emb` by Euclidean distance, via a k-d tree over the
/// target embeddings — exactly how REGAL and CONE query their embeddings
/// without materializing an `n × n` similarity matrix.
///
/// # Panics
/// Panics if the embedding dimensionalities differ or the target set is
/// empty.
pub fn nearest_neighbor_embeddings(
    source_emb: &DenseMatrix,
    target_emb: &DenseMatrix,
) -> Vec<usize> {
    assert_eq!(
        source_emb.cols(),
        target_emb.cols(),
        "embedding dimensionality mismatch ({} vs {})",
        source_emb.cols(),
        target_emb.cols()
    );
    assert!(target_emb.rows() > 0, "no target embeddings to match against");
    let tree = KdTree::build(target_emb.as_slice(), target_emb.cols());
    (0..source_emb.rows())
        .map(|i| tree.nearest(source_emb.row(i)).expect("tree is non-empty").0)
        .collect()
}

/// Converts embeddings into the similarity matrix the one-to-one solvers
/// need, using REGAL's kernel `sim(u, v) = exp(−‖Y_A[u] − Y_B[v]‖²)`
/// (paper Equation 10). Computed in parallel over row blocks for large
/// embedding sets (REGAL/CONE's n × n materialization step).
///
/// # Panics
/// Panics if the embedding dimensionalities differ.
pub fn embedding_similarity(source_emb: &DenseMatrix, target_emb: &DenseMatrix) -> DenseMatrix {
    assert_eq!(source_emb.cols(), target_emb.cols(), "embedding dimensionality mismatch");
    let (n, m) = (source_emb.rows(), target_emb.rows());
    DenseMatrix::par_from_fn(n, m, |i, j| {
        (-graphalign_linalg::vec_ops::dist2_sq(source_emb.row(i), target_emb.row(j))).exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_per_row() {
        let sim = DenseMatrix::from_rows(&[&[0.2, 0.9, 0.1], &[0.5, 0.4, 0.5]]);
        assert_eq!(nearest_neighbor(&sim), vec![1, 0]);
    }

    #[test]
    fn embeddings_route_to_closest_target() {
        let src = DenseMatrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let tgt = DenseMatrix::from_rows(&[&[4.9, 5.1], &[0.1, -0.1], &[10.0, 10.0]]);
        assert_eq!(nearest_neighbor_embeddings(&src, &tgt), vec![1, 0]);
    }

    #[test]
    fn embedding_similarity_is_one_at_zero_distance() {
        let e = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let s = embedding_similarity(&e, &e);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn embedding_similarity_argmax_agrees_with_kdtree_nn() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(44);
        let src = DenseMatrix::from_fn(20, 4, |_, _| rng.random_range(-1.0..1.0));
        let tgt = DenseMatrix::from_fn(25, 4, |_, _| rng.random_range(-1.0..1.0));
        let via_matrix = nearest_neighbor(&embedding_similarity(&src, &tgt));
        let via_tree = nearest_neighbor_embeddings(&src, &tgt);
        assert_eq!(via_matrix, via_tree);
    }

    #[test]
    fn many_to_one_is_allowed() {
        let sim = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        assert_eq!(nearest_neighbor(&sim), vec![0, 0]);
    }
}
