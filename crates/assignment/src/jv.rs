//! Jonker–Volgenant algorithm for dense linear assignment.
//!
//! JV (Jonker & Volgenant 1987) is the paper's common assignment method: a
//! shortest-augmenting-path LAP solver accelerated by two initialization
//! passes — *column reduction* and *augmenting row reduction* — that match
//! most rows before any Dijkstra search runs. On the similarity matrices the
//! alignment algorithms produce, the initialization typically resolves the
//! bulk of the rows, which is exactly why the paper picks JV over plain
//! Hungarian.

use graphalign_linalg::DenseMatrix;

/// Solves the LAP *minimizing* total cost with the JV algorithm; returns
/// `out[row] = col`. Requires a square matrix (pad rectangular problems or
/// use [`crate::hungarian`], which handles `rows < cols` directly).
///
/// # Panics
/// Panics if the matrix is not square or contains NaN.
// The passes below transcribe the 1987 paper's index-coupled loops; explicit
// indices preserve the correspondence with the reference formulation.
#[allow(clippy::needless_range_loop)]
pub fn jv_min(cost: &DenseMatrix) -> Vec<usize> {
    let (n, m) = cost.shape();
    assert_eq!(n, m, "jv: need a square matrix (got {n} × {m}); pad rectangular inputs");
    assert!(cost.all_finite(), "jv: cost matrix must be finite");
    if n == 0 {
        return Vec::new();
    }
    let inf = f64::INFINITY;
    let mut x: Vec<Option<usize>> = vec![None; n]; // row -> col
    let mut y: Vec<Option<usize>> = vec![None; n]; // col -> row
    let mut v = vec![0.0; n]; // column potentials

    // --- Column reduction (scan columns right-to-left). ---
    for j in (0..n).rev() {
        // Row with minimal cost in column j.
        let mut imin = 0;
        let mut min = cost.get(0, j);
        for i in 1..n {
            let c = cost.get(i, j);
            if c < min {
                min = c;
                imin = i;
            }
        }
        v[j] = min;
        if x[imin].is_none() {
            x[imin] = Some(j);
            y[j] = Some(imin);
        }
    }

    // --- Augmenting row reduction (two sweeps). ---
    for _ in 0..2 {
        let free: Vec<usize> = (0..n).filter(|&i| x[i].is_none()).collect();
        for &i in &free {
            if x[i].is_some() {
                continue;
            }
            // Find the two smallest reduced costs in row i.
            let mut u1 = inf;
            let mut u2 = inf;
            let mut j1 = 0usize;
            for j in 0..n {
                let r = cost.get(i, j) - v[j];
                if r < u1 {
                    u2 = u1;
                    u1 = r;
                    j1 = j;
                } else if r < u2 {
                    u2 = r;
                }
            }
            if u2.is_finite() && u1 < u2 {
                v[j1] -= u2 - u1;
            }
            match y[j1] {
                None => {
                    x[i] = Some(j1);
                    y[j1] = Some(i);
                }
                Some(prev) if u1 < u2 => {
                    // Steal j1; prev becomes free and is retried later.
                    x[prev] = None;
                    x[i] = Some(j1);
                    y[j1] = Some(i);
                }
                Some(_) => {}
            }
        }
    }

    // --- Augmentation (Dijkstra shortest augmenting paths) for the rest. ---
    let free: Vec<usize> = (0..n).filter(|&i| x[i].is_none()).collect();
    for &f in &free {
        let mut d: Vec<f64> = (0..n).map(|j| cost.get(f, j) - v[j]).collect();
        let mut pred = vec![f; n];
        let mut scanned = vec![false; n];
        let mut ready: Vec<usize> = Vec::new();
        let endpoint;
        loop {
            // Pick the unscanned column with minimal d.
            let mut jmin = usize::MAX;
            let mut dmin = inf;
            for j in 0..n {
                if !scanned[j] && d[j] < dmin {
                    dmin = d[j];
                    jmin = j;
                }
            }
            assert!(jmin != usize::MAX, "jv: augmentation failed (disconnected problem)");
            scanned[jmin] = true;
            ready.push(jmin);
            match y[jmin] {
                None => {
                    endpoint = jmin;
                    break;
                }
                Some(i) => {
                    // Relax columns through row i.
                    for j in 0..n {
                        if scanned[j] {
                            continue;
                        }
                        let nd = dmin + (cost.get(i, j) - v[j]) - (cost.get(i, jmin) - v[jmin]);
                        if nd < d[j] {
                            d[j] = nd;
                            pred[j] = i;
                        }
                    }
                }
            }
        }
        // Update potentials for scanned columns.
        let dend = d[endpoint];
        for &j in &ready {
            if j != endpoint {
                v[j] += d[j] - dend;
            }
        }
        // Augment along the alternating path back to the free row.
        let mut j = endpoint;
        loop {
            let i = pred[j];
            y[j] = Some(i);
            let prev = x[i];
            x[i] = Some(j);
            if i == f {
                break;
            }
            j = prev.expect("alternating path alternates matched edges until the free row");
        }
    }

    x.into_iter().map(|c| c.expect("JV matches every row")).collect()
}

/// Solves the LAP *maximizing* total similarity. Rectangular inputs with
/// `rows < cols` are padded with zero-similarity dummy rows (the dummies
/// absorb the surplus columns), so the returned assignment is optimal for
/// the original problem.
///
/// # Panics
/// Panics if `rows > cols` or the matrix contains NaN.
pub fn jv_max(sim: &DenseMatrix) -> Vec<usize> {
    let (n, m) = sim.shape();
    assert!(n <= m, "jv_max: need rows ≤ cols (got {n} × {m})");
    let cost = if n == m {
        sim.scaled(-1.0)
    } else {
        let mut padded = DenseMatrix::zeros(m, m);
        for i in 0..n {
            for j in 0..m {
                padded.set(i, j, -sim.get(i, j));
            }
        }
        padded
    };
    let full = jv_min(&cost);
    full.into_iter().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::hungarian_max;

    fn value(sim: &DenseMatrix, a: &[usize]) -> f64 {
        a.iter().enumerate().map(|(i, &j)| sim.get(i, j)).sum()
    }

    #[test]
    fn agrees_with_hungarian_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let n = rng.random_range(1..=12);
            let sim = DenseMatrix::from_fn(n, n, |_, _| rng.random_range(-3.0..3.0));
            let jv_val = value(&sim, &jv_max(&sim));
            let hun_val = value(&sim, &hungarian_max(&sim));
            assert!(
                (jv_val - hun_val).abs() < 1e-9,
                "trial {trial} (n={n}): JV {jv_val} vs Hungarian {hun_val}"
            );
        }
    }

    #[test]
    fn produces_a_permutation() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let sim = DenseMatrix::from_fn(20, 20, |_, _| rng.random_range(0.0..1.0));
        let a = jv_max(&sim);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn rectangular_padding_is_optimal() {
        let sim = DenseMatrix::from_rows(&[&[0.1, 0.9, 0.3], &[0.8, 0.85, 0.2]]);
        let a = jv_max(&sim);
        // Optimal: row 0 → col 1 (0.9), row 1 → col 0 (0.8) = 1.7.
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn identity_similarity_prefers_diagonal() {
        let sim = DenseMatrix::identity(6);
        assert_eq!(jv_max(&sim), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn degenerate_equal_costs() {
        let sim = DenseMatrix::filled(4, 4, 1.0);
        let a = jv_max(&sim);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_problem() {
        assert!(jv_min(&DenseMatrix::zeros(0, 0)).is_empty());
    }
}
