//! k-d tree for nearest-neighbor queries over embedding rows.
//!
//! REGAL and CONE extract alignments by querying, for every source-node
//! embedding, the nearest target-node embedding (paper §3.5, §3.7). A k-d
//! tree makes that `O(log n)` per query in low dimension and degrades
//! gracefully to a pruned linear scan in high dimension.

/// A static k-d tree over points of fixed dimensionality.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    /// Points in tree order (contiguous, `dim` values each).
    points: Vec<f64>,
    /// Original index of each tree-ordered point.
    index: Vec<usize>,
    /// Node layout: recursive median split over `points[lo..hi]`; implicit
    /// balanced structure, no explicit node records needed.
    len: usize,
}

impl KdTree {
    /// Builds a tree over `n` points stored row-major in `data`
    /// (`data.len() == n * dim`).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn build(data: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "kdtree: dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "kdtree: data length {} not a multiple of dim {dim}",
            data.len()
        );
        let n = data.len() / dim;
        let mut order: Vec<usize> = (0..n).collect();
        let mut tree = Self { dim, points: vec![0.0; data.len()], index: vec![0; n], len: n };
        if n > 0 {
            build_recursive(data, dim, &mut order, 0);
        }
        for (pos, &orig) in order.iter().enumerate() {
            tree.points[pos * dim..(pos + 1) * dim]
                .copy_from_slice(&data[orig * dim..(orig + 1) * dim]);
            tree.index[pos] = orig;
        }
        tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index (into the original data) of the nearest point to `query`, with
    /// its squared Euclidean distance. Returns `None` on an empty tree.
    ///
    /// Exact-distance ties break to the **lowest original index**, matching
    /// the first-strict-maximum tie rule of the dense row-argmax
    /// (`vec_ops::argmax`) so that k-d-tree nearest neighbor and dense
    /// similarity argmax select the same target.
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn nearest(&self, query: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(query.len(), self.dim, "kdtree: query dimension mismatch");
        if self.is_empty() {
            return None;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        self.search(0, self.len, 0, query, &mut best);
        Some((self.index[best.0], best.1))
    }

    /// The `k` nearest original indices to `query`, closest first.
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.dim, "kdtree: query dimension mismatch");
        let mut heap: Vec<(usize, f64)> = Vec::new(); // max at position 0 kept by scan
        self.search_k(0, self.len, 0, query, k, &mut heap);
        heap.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
        heap.into_iter().map(|(pos, d)| (self.index[pos], d)).collect()
    }

    fn point(&self, pos: usize) -> &[f64] {
        &self.points[pos * self.dim..(pos + 1) * self.dim]
    }

    fn search(&self, lo: usize, hi: usize, depth: usize, query: &[f64], best: &mut (usize, f64)) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = self.point(mid);
        let d = sq_dist(p, query);
        // Strict improvement, or an exact tie won by a lower original index —
        // the same rule as the dense first-strict-maximum argmax.
        if d < best.1
            || (d == best.1 && best.0 != usize::MAX && self.index[mid] < self.index[best.0])
        {
            *best = (mid, d);
        }
        let axis = depth % self.dim;
        let diff = query[axis] - p[axis];
        let (near_lo, near_hi, far_lo, far_hi) =
            if diff < 0.0 { (lo, mid, mid + 1, hi) } else { (mid + 1, hi, lo, mid) };
        self.search(near_lo, near_hi, depth + 1, query, best);
        // `<=` (not `<`): the far half-space can still hold an exact-distance
        // tie with a lower original index when the splitting plane is exactly
        // `best.1` away.
        if diff * diff <= best.1 {
            self.search(far_lo, far_hi, depth + 1, query, best);
        }
    }

    fn search_k(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        query: &[f64],
        k: usize,
        heap: &mut Vec<(usize, f64)>,
    ) {
        if lo >= hi || k == 0 {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = self.point(mid);
        let d = sq_dist(p, query);
        let worst = heap.iter().map(|&(_, hd)| hd).fold(f64::NEG_INFINITY, f64::max);
        if heap.len() < k {
            heap.push((mid, d));
        } else if d < worst {
            let worst_pos = heap
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
                .map(|(i, _)| i)
                .expect("heap non-empty");
            heap[worst_pos] = (mid, d);
        }
        let axis = depth % self.dim;
        let diff = query[axis] - p[axis];
        let (near_lo, near_hi, far_lo, far_hi) =
            if diff < 0.0 { (lo, mid, mid + 1, hi) } else { (mid + 1, hi, lo, mid) };
        self.search_k(near_lo, near_hi, depth + 1, query, k, heap);
        let worst = heap.iter().map(|&(_, hd)| hd).fold(f64::NEG_INFINITY, f64::max);
        if heap.len() < k || diff * diff < worst {
            self.search_k(far_lo, far_hi, depth + 1, query, k, heap);
        }
    }
}

/// Recursively arranges `order[lo..hi]`'s median (by the split axis) at the
/// middle position, classic in-place k-d construction.
fn build_recursive(data: &[f64], dim: usize, order: &mut [usize], depth: usize) {
    let n = order.len();
    if n <= 1 {
        return;
    }
    let axis = depth % dim;
    let mid = n / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        data[a * dim + axis].partial_cmp(&data[b * dim + axis]).expect("finite coordinates")
    });
    let (left, rest) = order.split_at_mut(mid);
    build_recursive(data, dim, left, depth + 1);
    build_recursive(data, dim, &mut rest[1..], depth + 1);
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_nearest(data: &[f64], dim: usize, query: &[f64]) -> (usize, f64) {
        let n = data.len() / dim;
        (0..n)
            .map(|i| (i, sq_dist(&data[i * dim..(i + 1) * dim], query)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    #[test]
    fn nearest_on_a_line() {
        let data = [0.0, 1.0, 2.0, 3.0, 10.0];
        let tree = KdTree::build(&data, 1);
        assert_eq!(tree.nearest(&[2.2]).unwrap().0, 2);
        assert_eq!(tree.nearest(&[8.0]).unwrap().0, 4);
    }

    #[test]
    fn matches_linear_scan_on_random_points() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(55);
        for &dim in &[1usize, 2, 3, 8] {
            let n = 200;
            let data: Vec<f64> = (0..n * dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            let tree = KdTree::build(&data, dim);
            for _ in 0..50 {
                let q: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                let (ti, td) = tree.nearest(&q).unwrap();
                let (li, ld) = linear_nearest(&data, dim, &q);
                assert!(
                    (td - ld).abs() < 1e-12,
                    "dim {dim}: tree found {ti} at {td}, linear {li} at {ld}"
                );
            }
        }
    }

    #[test]
    fn k_nearest_matches_sorted_linear_scan() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(66);
        let dim = 3;
        let n = 100;
        let data: Vec<f64> = (0..n * dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        let tree = KdTree::build(&data, dim);
        let q: Vec<f64> = vec![0.1, -0.2, 0.3];
        let got = tree.k_nearest(&q, 5);
        let mut all: Vec<(usize, f64)> =
            (0..n).map(|i| (i, sq_dist(&data[i * dim..(i + 1) * dim], &q))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let expect: Vec<usize> = all[..5].iter().map(|&(i, _)| i).collect();
        let got_idx: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(got_idx, expect);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let tree = KdTree::build(&data, 2);
        let (i, d) = tree.nearest(&[1.0, 1.0]).unwrap();
        assert_eq!(i, 0, "exact-distance ties break to the lowest original index");
        assert_eq!(d, 0.0);
        assert_eq!(tree.k_nearest(&[1.0, 1.0], 3).len(), 3);
    }

    #[test]
    fn ties_always_break_to_lowest_original_index() {
        // Points at the four corners of a square, query at the center: all
        // distances are exactly equal, so index 0 must win regardless of the
        // tree layout. Repeat with shuffled duplicates.
        let data = [1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let tree = KdTree::build(&data, 2);
        assert_eq!(tree.nearest(&[0.0, 0.0]).unwrap().0, 0);
        // Two coincident points far from the others.
        let data = [5.0, 5.0, 0.0, 0.0, 5.0, 5.0];
        let tree = KdTree::build(&data, 2);
        assert_eq!(tree.nearest(&[5.0, 5.0]).unwrap().0, 0);
        assert_eq!(tree.nearest(&[4.0, 6.0]).unwrap().0, 0);
    }

    #[test]
    fn empty_tree_returns_none() {
        let tree = KdTree::build(&[], 4);
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0; 4]).is_none());
        assert!(tree.k_nearest(&[0.0; 4], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dimension_panics() {
        let tree = KdTree::build(&[0.0, 0.0], 2);
        let _ = tree.nearest(&[0.0]);
    }
}
