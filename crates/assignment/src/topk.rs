//! Sharded blocked top-k over factored similarities.
//!
//! The XL-tier replacement for per-row full scans: rows are partitioned into
//! fixed shards, each shard walks the column space in fixed-order tiles of the
//! implicit factor product, and every row keeps only a bounded heap of its
//! `k` best candidates. Live memory per worker is one logical tile plus the
//! heaps — never a full row of an `n × m` product, let alone the product.
//!
//! Determinism: each row is owned by exactly one shard, shards are mapped over
//! a fixed ascending range by [`par::map_collect`] (which assembles results in
//! input order regardless of scheduling), and the tile walk within a shard is
//! sequential ascending. The per-row result is therefore a pure function of
//! `(similarity, k, config)` — bit-identical at any thread count and any
//! shard/tile size, which the tests pin against the single-shard reference
//! [`LowRankSim::row_top_k_after`].

use graphalign_linalg::LowRankSim;
use graphalign_par as par;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Shard/tile geometry for [`sharded_row_top_k`].
#[derive(Debug, Clone, Copy)]
pub struct TopKConfig {
    /// Rows per shard (one parallel work item).
    pub shard_rows: usize,
    /// Columns per tile within a shard's scan.
    pub tile_cols: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        Self { shard_rows: 128, tile_cols: 2048 }
    }
}

/// Heap entry ordered by *worseness*: the heap max is the worst kept
/// candidate, so a bounded top-k needs only `peek`/`pop`/`push`. A candidate
/// `a` is worse than `b` when `a.v < b.v`, ties broken toward the larger
/// column — the exact complement of the dense order (value descending by
/// `partial_cmp`, column ascending).
#[derive(Debug, PartialEq)]
struct Worst(f64, usize);

impl Eq for Worst {}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .expect("finite similarities")
            .then_with(|| self.1.cmp(&other.1))
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded per-row candidate heap: keeps the `k` best `(value, col)` pairs
/// seen so far under the dense order.
struct BoundedTopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl BoundedTopK {
    fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    #[inline]
    fn offer(&mut self, v: f64, j: usize) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Worst(v, j));
        } else if let Some(worst) = self.heap.peek() {
            // Strictly better than the worst kept candidate?
            if Worst(v, j) < *worst {
                self.heap.pop();
                self.heap.push(Worst(v, j));
            }
        }
    }

    /// Best-first candidate list (value descending, column ascending) —
    /// exactly the order `row_top_k_after(i, None, k)` returns.
    fn into_sorted(self) -> Vec<(f64, usize)> {
        self.heap.into_sorted_vec().into_iter().map(|Worst(v, j)| (v, j)).collect()
    }
}

/// Top-`k` candidates of every row of the factored similarity, computed by
/// fixed-order sharded tile scans. Returns one best-first candidate list per
/// row, each bit-identical to `lr.row_top_k_after(i, None, k, ..)` at any
/// thread count (proven by the cross-checks in the tests and the XL
/// integration suite).
pub fn sharded_row_top_k(lr: &LowRankSim, k: usize, cfg: &TopKConfig) -> Vec<Vec<(f64, usize)>> {
    let (n, m) = (lr.rows(), lr.cols());
    let shard_rows = cfg.shard_rows.max(1);
    let tile_cols = cfg.tile_cols.max(1);
    let shards = n.div_ceil(shard_rows);
    // Cost per shard ≈ shard_rows × m kernel evaluations; the weight makes
    // the scheduler fork even for a single large shard row range.
    let weight = shard_rows.saturating_mul(m).max(1);
    let per_shard: Vec<Vec<Vec<(f64, usize)>>> = par::map_collect(shards, weight, |s| {
        let lo = s * shard_rows;
        let hi = (lo + shard_rows).min(n);
        let mut heaps: Vec<BoundedTopK> = (lo..hi).map(|_| BoundedTopK::new(k)).collect();
        let mut c0 = 0;
        while c0 < m {
            let c1 = (c0 + tile_cols).min(m);
            for (slot, i) in (lo..hi).enumerate() {
                let heap = &mut heaps[slot];
                for j in c0..c1 {
                    heap.offer(lr.value(i, j), j);
                }
            }
            c0 = c1;
        }
        heaps.into_iter().map(BoundedTopK::into_sorted).collect()
    });
    // Fixed shard order: concatenation is row order 0..n.
    let mut out = Vec::with_capacity(n);
    for shard in per_shard {
        out.extend(shard);
    }
    out
}

/// Sharded top-1: the nearest-neighbor column of every row (maximum value,
/// lowest column on ties — the [`graphalign_linalg::vec_ops`] `argmax`
/// convention), computed with the same deterministic shard scan.
///
/// # Panics
/// Panics when the similarity has zero columns.
pub fn nearest_neighbor_sharded(lr: &LowRankSim, cfg: &TopKConfig) -> Vec<usize> {
    assert!(lr.cols() > 0, "nearest_neighbor_sharded: no columns to match");
    sharded_row_top_k(lr, 1, cfg)
        .into_iter()
        .map(|row| row.first().expect("cols > 0 guarantees a candidate").1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_linalg::{DenseMatrix, LowRankKernel, Workspace};
    use rand::prelude::*;

    fn random_lowrank(rng: &mut StdRng, kernel: LowRankKernel) -> LowRankSim {
        let (n, d) = (rng.random_range(1..40usize), rng.random_range(1..4usize));
        let m = rng.random_range(1..60usize);
        // Coarse grid values force plenty of exact ties.
        let ya = DenseMatrix::from_fn(n, d, |_, _| rng.random_range(-2..3) as f64 * 0.5);
        let yb = DenseMatrix::from_fn(m, d, |_, _| rng.random_range(-2..3) as f64 * 0.5);
        let lr = LowRankSim::new(ya, yb, kernel);
        if rng.random_range(0..10) < 3 {
            let offs = (0..n).map(|i| (i % 3) as f64 * 0.25).collect();
            lr.with_row_offsets(offs)
        } else {
            lr
        }
    }

    #[test]
    fn matches_single_shard_reference_for_all_kernels() {
        let mut rng = StdRng::seed_from_u64(1031);
        let mut ws = Workspace::new();
        for kernel in [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist] {
            for _ in 0..8 {
                let lr = random_lowrank(&mut rng, kernel);
                let k = rng.random_range(1..8usize);
                // Deliberately tiny shards/tiles to exercise every boundary.
                let cfg = TopKConfig {
                    shard_rows: rng.random_range(1..5usize),
                    tile_cols: rng.random_range(1..7usize),
                };
                let got = sharded_row_top_k(&lr, k, &cfg);
                for (i, row) in got.iter().enumerate() {
                    let want = lr.row_top_k_after(i, None, k, &mut ws);
                    assert_eq!(*row, want, "{kernel:?} row {i} cfg {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn identical_across_thread_counts_and_geometries() {
        let mut rng = StdRng::seed_from_u64(77);
        let lr = random_lowrank(&mut rng, LowRankKernel::NegSqDist);
        let reference = sharded_row_top_k(
            &lr,
            5,
            &TopKConfig { shard_rows: usize::MAX, tile_cols: usize::MAX },
        );
        for threads in [1usize, 2, 8] {
            graphalign_par::set_max_threads(threads);
            for cfg in [
                TopKConfig::default(),
                TopKConfig { shard_rows: 1, tile_cols: 3 },
                TopKConfig { shard_rows: 7, tile_cols: 2 },
            ] {
                assert_eq!(
                    sharded_row_top_k(&lr, 5, &cfg),
                    reference,
                    "threads={threads} cfg={cfg:?}"
                );
            }
        }
        graphalign_par::set_max_threads(0);
    }

    #[test]
    fn top1_matches_row_argmax() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ws = Workspace::new();
        for kernel in [LowRankKernel::Dot, LowRankKernel::ExpNegSqDist] {
            for _ in 0..6 {
                let lr = random_lowrank(&mut rng, kernel);
                let nn = nearest_neighbor_sharded(&lr, &TopKConfig::default());
                for (i, &col) in nn.iter().enumerate() {
                    assert_eq!(Some(col), lr.row_argmax(i, &mut ws), "{kernel:?} row {i}");
                }
            }
        }
    }

    #[test]
    fn k_zero_and_k_beyond_cols_are_well_defined() {
        let ya = DenseMatrix::filled(3, 2, 1.0);
        let yb = DenseMatrix::filled(4, 2, 1.0);
        let lr = LowRankSim::new(ya, yb, LowRankKernel::Dot);
        let none = sharded_row_top_k(&lr, 0, &TopKConfig::default());
        assert!(none.iter().all(Vec::is_empty));
        let all = sharded_row_top_k(&lr, 99, &TopKConfig::default());
        // All values tie at 2.0, so each row lists columns in ascending order.
        for row in &all {
            assert_eq!(row.iter().map(|&(_, j)| j).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        }
    }
}
