//! SortGreedy one-to-one matching.
//!
//! The SG heuristic of the paper (§6.2; Doka et al., reference 12): sort all
//! `(row, col)` pairs by decreasing similarity and accept a pair whenever
//! both endpoints are still unmatched. `O(nm log nm)` but trivially robust —
//! the paper recommends it over JV on large graphs where the LAP solve
//! dominates runtime.

use graphalign_linalg::{CsrMatrix, DenseMatrix, LowRankSim, Similarity, Workspace};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Greedy one-to-one matching maximizing similarity pair-by-pair.
/// Ties are broken by `(row, col)` order, making the result deterministic.
///
/// # Panics
/// Panics if `rows > cols` (a full one-to-one matching is impossible).
pub fn sort_greedy(sim: &DenseMatrix) -> Vec<usize> {
    let (n, m) = sim.shape();
    assert!(n <= m, "sort_greedy: need rows ≤ cols (got {n} × {m})");
    let mut pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..m).map(move |j| (i, j))).collect();
    // Stable sort by descending similarity; the pair order is the tiebreak.
    pairs.sort_by(|&(i1, j1), &(i2, j2)| {
        sim.get(i2, j2).partial_cmp(&sim.get(i1, j1)).expect("finite similarities")
    });
    let mut row_taken = vec![false; n];
    let mut col_taken = vec![false; m];
    let mut out = vec![usize::MAX; n];
    let mut matched = 0usize;
    for (i, j) in pairs {
        if matched == n {
            break;
        }
        if row_taken[i] || col_taken[j] {
            continue;
        }
        row_taken[i] = true;
        col_taken[j] = true;
        out[i] = j;
        matched += 1;
    }
    out
}

/// SortGreedy on any similarity representation, producing exactly the
/// matching [`sort_greedy`] produces on `sim.to_dense(..)`:
///
/// * dense input runs [`sort_greedy`] directly;
/// * factored input streams each row's candidates through
///   [`LowRankSim::row_top_k_after`] pages merged by a global heap with the
///   dense tie order (value descending by `partial_cmp`, then `(row, col)`
///   ascending) — `O(rows · page)` live candidates instead of an `n × m`
///   pair sort;
/// * sparse input partitions the densified pair order into stored positives,
///   the zero band (stored zeros *and* absent entries, in `(row, col)`
///   order), and stored negatives, without materializing the zeros.
///
/// # Panics
/// Panics if `rows > cols` (a full one-to-one matching is impossible).
pub fn sort_greedy_sim(sim: &Similarity) -> Vec<usize> {
    match sim {
        Similarity::Dense(m) => sort_greedy(m),
        Similarity::LowRank(lr) => sort_greedy_lowrank(lr),
        Similarity::Sparse(s) => sort_greedy_csr(s),
    }
}

/// One heap entry of the streaming SortGreedy: ordered so that popping the
/// max yields the dense pair order — greater value first (`partial_cmp`, so
/// `-0.0` ties `0.0` exactly like the dense stable sort), then smaller
/// `(row, col)`.
#[derive(Debug, PartialEq)]
struct Cand {
    v: f64,
    i: usize,
    j: usize,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.v
            .partial_cmp(&other.v)
            .expect("finite similarities")
            .then_with(|| other.i.cmp(&self.i))
            .then_with(|| other.j.cmp(&self.j))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming SortGreedy over an implicit factored similarity: each unmatched
/// row keeps a page of its next `PAGE` candidates in the dense pair order
/// and exposes its head to a global max-heap. The heap therefore always pops
/// the globally next pair the dense sort would visit (restricted to
/// unmatched rows, whose pairs the dense scan would skip anyway), so the
/// matching is identical while live memory stays `O(rows · PAGE + cols)`.
fn sort_greedy_lowrank(lr: &LowRankSim) -> Vec<usize> {
    const PAGE: usize = 64;
    let (n, m) = (lr.rows(), lr.cols());
    assert!(n <= m, "sort_greedy: need rows ≤ cols (got {n} × {m})");
    let mut ws = Workspace::new();
    // Initial pages come from the sharded blocked top-k: per-row results are
    // bit-identical to `row_top_k_after(i, None, PAGE)` (pinned by the topk
    // tests), but the scan parallelizes over row shards — the dominant cost
    // of the streaming SortGreedy when few pages need refilling.
    let pages: Vec<Vec<(f64, usize)>> =
        crate::topk::sharded_row_top_k(lr, PAGE, &crate::topk::TopKConfig::default());
    let mut pages = pages;
    let mut cursors: Vec<usize> = vec![0; n];
    let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(n);
    for (i, page) in pages.iter().enumerate() {
        if let Some(&(v, j)) = page.first() {
            heap.push(Cand { v, i, j });
        }
    }
    let mut col_taken = vec![false; m];
    let mut out = vec![usize::MAX; n];
    let mut matched = 0usize;
    while matched < n {
        let Cand { i, j, .. } = heap.pop().expect("an unmatched row always has a candidate");
        if !col_taken[j] {
            col_taken[j] = true;
            out[i] = j;
            matched += 1;
            continue;
        }
        // Column already taken: advance row `i` to its next candidate,
        // refilling the page from the factored row when it runs out.
        cursors[i] += 1;
        if cursors[i] == pages[i].len() {
            let after = Some(*pages[i].last().expect("a consumed page is non-empty"));
            pages[i] = lr.row_top_k_after(i, after, PAGE, &mut ws);
            cursors[i] = 0;
            // At most n-1 columns can be taken by other rows, and a row sees
            // every column once, so it matches before exhausting its cols ≥
            // rows candidates.
            assert!(!pages[i].is_empty(), "unmatched row exhausted its candidates");
        }
        let (v, j) = pages[i][cursors[i]];
        heap.push(Cand { v, i, j });
    }
    out
}

/// Exact SortGreedy on a CSR similarity whose absent entries are `0.0`. The
/// dense pair order visits all stored positives first (value descending,
/// `(i, j)` ascending within ties), then every zero cell — stored `±0.0` and
/// absent alike — in plain `(i, j)` order, then the stored negatives; each
/// band is processed greedily without materializing the zero band.
fn sort_greedy_csr(s: &CsrMatrix) -> Vec<usize> {
    let (n, m) = (s.rows(), s.cols());
    assert!(n <= m, "sort_greedy: need rows ≤ cols (got {n} × {m})");
    let mut row_taken = vec![false; n];
    let mut col_taken = vec![false; m];
    let mut out = vec![usize::MAX; n];
    let mut matched = 0usize;
    let band = |entries: &mut Vec<(usize, usize, f64)>,
                row_taken: &mut [bool],
                col_taken: &mut [bool],
                out: &mut [usize],
                matched: &mut usize| {
        // Stable sort by value only: collection order was `(i, j)` ascending,
        // which the dense pair sort uses as its tiebreak.
        entries.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite similarities"));
        for &(i, j, _) in entries.iter() {
            if *matched == n {
                break;
            }
            if row_taken[i] || col_taken[j] {
                continue;
            }
            row_taken[i] = true;
            col_taken[j] = true;
            out[i] = j;
            *matched += 1;
        }
    };
    // Band 1: stored positives.
    let mut pos: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for (j, v) in s.row_iter(i) {
            if v > 0.0 {
                pos.push((i, j, v));
            }
        }
    }
    band(&mut pos, &mut row_taken, &mut col_taken, &mut out, &mut matched);
    // Band 2: the zero band — stored `±0.0` and absent cells — in `(i, j)`
    // order. A row takes its first free zero column, exactly what the dense
    // lexicographic scan over equal values does.
    for i in 0..n {
        if matched == n {
            break;
        }
        if row_taken[i] {
            continue;
        }
        let cols = s.row_cols(i);
        let vals = s.row_values(i);
        let mut k = 0usize;
        for (j, taken) in col_taken.iter_mut().enumerate() {
            // Advance the stored pointer; a stored non-zero at `j` is not a
            // zero cell (`v != 0.0` is false for `-0.0`, keeping it in band).
            let stored_nonzero = if k < cols.len() && cols[k] == j {
                let nz = vals[k] != 0.0;
                k += 1;
                nz
            } else {
                false
            };
            if !stored_nonzero && !*taken {
                row_taken[i] = true;
                *taken = true;
                out[i] = j;
                matched += 1;
                break;
            }
        }
    }
    // Band 3: stored negatives.
    let mut neg: Vec<(usize, usize, f64)> = Vec::new();
    for (i, &taken) in row_taken.iter().enumerate() {
        if !taken {
            for (j, v) in s.row_iter(i) {
                if v < 0.0 {
                    neg.push((i, j, v));
                }
            }
        }
    }
    band(&mut neg, &mut row_taken, &mut col_taken, &mut out, &mut matched);
    debug_assert_eq!(matched, n, "cols ≥ rows guarantees a complete matching");
    out
}

/// SortGreedy over an explicit sparse candidate list `(row, col, similarity)`.
/// Rows that exhaust their candidates are matched to the lexicographically
/// smallest free columns afterwards (similarity 0), so the result is always
/// a complete one-to-one matching. This is the form LREA and the sparse NSD
/// variant use.
///
/// # Panics
/// Panics if `rows > cols`.
pub fn sort_greedy_sparse(
    n_rows: usize,
    n_cols: usize,
    candidates: &[(usize, usize, f64)],
) -> Vec<usize> {
    assert!(n_rows <= n_cols, "sort_greedy_sparse: need rows ≤ cols");
    let mut pairs: Vec<&(usize, usize, f64)> = candidates.iter().collect();
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite similarities"));
    let mut row_taken = vec![false; n_rows];
    let mut col_taken = vec![false; n_cols];
    let mut out = vec![usize::MAX; n_rows];
    for &&(i, j, _) in pairs.iter() {
        if row_taken[i] || col_taken[j] {
            continue;
        }
        row_taken[i] = true;
        col_taken[j] = true;
        out[i] = j;
    }
    // Complete the matching with free columns.
    let mut free_cols = (0..n_cols).filter(|&j| !col_taken[j]);
    for (i, slot) in out.iter_mut().enumerate() {
        if *slot == usize::MAX {
            *slot = free_cols.next().expect("cols ≥ rows guarantees a free column");
            let _ = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_global_maximum_first() {
        let sim = DenseMatrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(sort_greedy(&sim), vec![1, 0]);
    }

    #[test]
    fn rectangular_input_leaves_extra_columns_unused() {
        let sim = DenseMatrix::from_rows(&[&[0.1, 0.9, 0.5]]);
        assert_eq!(sort_greedy(&sim), vec![1]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let sim = DenseMatrix::filled(3, 3, 1.0);
        assert_eq!(sort_greedy(&sim), vec![0, 1, 2]);
    }

    #[test]
    fn sparse_variant_completes_partial_matchings() {
        // Only one candidate given; the other rows fall back to free columns.
        let out = sort_greedy_sparse(3, 3, &[(1, 2, 0.9)]);
        assert_eq!(out[1], 2);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "must be a permutation");
    }

    #[test]
    fn sparse_variant_prefers_high_similarity() {
        let out = sort_greedy_sparse(2, 2, &[(0, 0, 0.5), (0, 1, 0.9), (1, 1, 0.8)]);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "rows ≤ cols")]
    fn too_many_rows_panics() {
        let sim = DenseMatrix::zeros(3, 2);
        sort_greedy(&sim);
    }

    #[test]
    fn lowrank_streaming_matches_densified_sort_greedy() {
        use graphalign_linalg::LowRankKernel;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(91);
        for kernel in [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist] {
            for _ in 0..5 {
                let (n, d) = (rng.random_range(1..20usize), rng.random_range(1..4usize));
                let m = n + rng.random_range(0..4usize);
                // Coarse values force plenty of exact ties.
                let ya = DenseMatrix::from_fn(n, d, |_, _| rng.random_range(-2..3) as f64 * 0.5);
                let yb = DenseMatrix::from_fn(m, d, |_, _| rng.random_range(-2..3) as f64 * 0.5);
                let sim = Similarity::LowRank(LowRankSim::new(ya, yb, kernel));
                let dense = sim.to_dense(&mut Workspace::new());
                assert_eq!(sort_greedy_sim(&sim), sort_greedy(&dense), "{kernel:?} {n}x{m}");
            }
        }
    }

    #[test]
    fn lowrank_streaming_pages_past_the_first_chunk() {
        // All 70 × 72 values tie, so the dense order is pure (row, col)
        // lexicographic and the matching is the identity. Rows past 64 see
        // their entire first 64-candidate page taken by earlier rows and
        // must refill from the factored row before matching.
        let ya = DenseMatrix::filled(70, 1, 1.0);
        let yb = DenseMatrix::filled(72, 1, 1.0);
        let sim =
            Similarity::LowRank(LowRankSim::new(ya, yb, graphalign_linalg::LowRankKernel::Dot));
        let dense = sim.to_dense(&mut Workspace::new());
        let got = sort_greedy_sim(&sim);
        assert_eq!(got, sort_greedy(&dense));
        assert_eq!(got, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_exact_matches_densified_sort_greedy() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(92);
        for _ in 0..30 {
            let n = rng.random_range(1..12usize);
            let m = n + rng.random_range(0..4usize);
            let mut trips = Vec::new();
            for i in 0..n {
                for j in 0..m {
                    if rng.random_range(0..100) < 35 {
                        let v = [2.0, 1.0, 0.5, 0.0, -0.0, -1.0, -3.0][rng.random_range(0..7usize)];
                        trips.push((i, j, v));
                    }
                }
            }
            let sim = Similarity::Sparse(CsrMatrix::from_triplets(n, m, &trips));
            let dense = sim.to_dense(&mut Workspace::new());
            assert_eq!(sort_greedy_sim(&sim), sort_greedy(&dense), "{n}x{m} {trips:?}");
        }
    }
}
