//! SortGreedy one-to-one matching.
//!
//! The SG heuristic of the paper (§6.2; Doka et al., reference 12): sort all
//! `(row, col)` pairs by decreasing similarity and accept a pair whenever
//! both endpoints are still unmatched. `O(nm log nm)` but trivially robust —
//! the paper recommends it over JV on large graphs where the LAP solve
//! dominates runtime.

use graphalign_linalg::DenseMatrix;

/// Greedy one-to-one matching maximizing similarity pair-by-pair.
/// Ties are broken by `(row, col)` order, making the result deterministic.
///
/// # Panics
/// Panics if `rows > cols` (a full one-to-one matching is impossible).
pub fn sort_greedy(sim: &DenseMatrix) -> Vec<usize> {
    let (n, m) = sim.shape();
    assert!(n <= m, "sort_greedy: need rows ≤ cols (got {n} × {m})");
    let mut pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..m).map(move |j| (i, j))).collect();
    // Stable sort by descending similarity; the pair order is the tiebreak.
    pairs.sort_by(|&(i1, j1), &(i2, j2)| {
        sim.get(i2, j2).partial_cmp(&sim.get(i1, j1)).expect("finite similarities")
    });
    let mut row_taken = vec![false; n];
    let mut col_taken = vec![false; m];
    let mut out = vec![usize::MAX; n];
    let mut matched = 0usize;
    for (i, j) in pairs {
        if matched == n {
            break;
        }
        if row_taken[i] || col_taken[j] {
            continue;
        }
        row_taken[i] = true;
        col_taken[j] = true;
        out[i] = j;
        matched += 1;
    }
    out
}

/// SortGreedy over an explicit sparse candidate list `(row, col, similarity)`.
/// Rows that exhaust their candidates are matched to the lexicographically
/// smallest free columns afterwards (similarity 0), so the result is always
/// a complete one-to-one matching. This is the form LREA and the sparse NSD
/// variant use.
///
/// # Panics
/// Panics if `rows > cols`.
pub fn sort_greedy_sparse(
    n_rows: usize,
    n_cols: usize,
    candidates: &[(usize, usize, f64)],
) -> Vec<usize> {
    assert!(n_rows <= n_cols, "sort_greedy_sparse: need rows ≤ cols");
    let mut pairs: Vec<&(usize, usize, f64)> = candidates.iter().collect();
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite similarities"));
    let mut row_taken = vec![false; n_rows];
    let mut col_taken = vec![false; n_cols];
    let mut out = vec![usize::MAX; n_rows];
    for &&(i, j, _) in pairs.iter() {
        if row_taken[i] || col_taken[j] {
            continue;
        }
        row_taken[i] = true;
        col_taken[j] = true;
        out[i] = j;
    }
    // Complete the matching with free columns.
    let mut free_cols = (0..n_cols).filter(|&j| !col_taken[j]);
    for (i, slot) in out.iter_mut().enumerate() {
        if *slot == usize::MAX {
            *slot = free_cols.next().expect("cols ≥ rows guarantees a free column");
            let _ = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_global_maximum_first() {
        let sim = DenseMatrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(sort_greedy(&sim), vec![1, 0]);
    }

    #[test]
    fn rectangular_input_leaves_extra_columns_unused() {
        let sim = DenseMatrix::from_rows(&[&[0.1, 0.9, 0.5]]);
        assert_eq!(sort_greedy(&sim), vec![1]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let sim = DenseMatrix::filled(3, 3, 1.0);
        assert_eq!(sort_greedy(&sim), vec![0, 1, 2]);
    }

    #[test]
    fn sparse_variant_completes_partial_matchings() {
        // Only one candidate given; the other rows fall back to free columns.
        let out = sort_greedy_sparse(3, 3, &[(1, 2, 0.9)]);
        assert_eq!(out[1], 2);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "must be a permutation");
    }

    #[test]
    fn sparse_variant_prefers_high_similarity() {
        let out = sort_greedy_sparse(2, 2, &[(0, 0, 0.5), (0, 1, 0.9), (1, 1, 0.8)]);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "rows ≤ cols")]
    fn too_many_rows_panics() {
        let sim = DenseMatrix::zeros(3, 2);
        sort_greedy(&sim);
    }
}
