//! Property-based tests of the assignment solvers: optimality against brute
//! force, validity of matchings, k-d tree vs linear scan.

use graphalign_assignment::kdtree::KdTree;
use graphalign_assignment::{assign, assignment_value, AssignmentMethod};
use graphalign_linalg::{CsrMatrix, DenseMatrix, LowRankKernel, LowRankSim, Similarity, Workspace};
use proptest::prelude::*;

fn similarity(n: usize, m: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-2.0f64..2.0, n * m)
        .prop_map(move |data| DenseMatrix::from_vec(n, m, data))
}

/// Wraps a dense matrix in the pipeline-currency enum for [`assign`].
fn dense(sim: &DenseMatrix) -> Similarity {
    Similarity::Dense(sim.clone())
}

/// Exhaustive optimal value by permutation enumeration (tiny n only).
fn brute_force(sim: &DenseMatrix) -> f64 {
    fn rec(sim: &DenseMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
        if row == sim.rows() {
            return 0.0;
        }
        let mut best = f64::NEG_INFINITY;
        for j in 0..sim.cols() {
            if used[j] {
                continue;
            }
            used[j] = true;
            best = best.max(sim.get(row, j) + rec(sim, row + 1, used));
            used[j] = false;
        }
        best
    }
    rec(sim, 0, &mut vec![false; sim.cols()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JV and Hungarian are exactly optimal on square problems.
    #[test]
    fn optimal_solvers_match_brute_force(sim in (2usize..6).prop_flat_map(|n| similarity(n, n))) {
        let best = brute_force(&sim);
        for method in [AssignmentMethod::JonkerVolgenant, AssignmentMethod::Hungarian] {
            let got = assignment_value(&sim, &assign(&dense(&sim), method));
            prop_assert!((got - best).abs() < 1e-9, "{method:?}: {got} vs {best}");
        }
    }

    /// Hungarian is optimal on rectangular problems too.
    #[test]
    fn hungarian_optimal_rectangular(
        sim in (2usize..5, 0usize..3).prop_flat_map(|(n, extra)| similarity(n, n + extra)),
    ) {
        let best = brute_force(&sim);
        let got = assignment_value(&sim, &assign(&dense(&sim), AssignmentMethod::Hungarian));
        prop_assert!((got - best).abs() < 1e-9);
    }

    /// Every one-to-one method returns distinct columns; NN returns valid
    /// columns.
    #[test]
    fn matchings_are_valid(sim in (1usize..8).prop_flat_map(|n| similarity(n, n))) {
        for method in AssignmentMethod::ALL {
            let a = assign(&dense(&sim), method);
            prop_assert_eq!(a.len(), sim.rows());
            for &j in &a {
                prop_assert!(j < sim.cols());
            }
            if method != AssignmentMethod::NearestNeighbor {
                let mut seen = vec![false; sim.cols()];
                for &j in &a {
                    prop_assert!(!seen[j], "{method:?} duplicated a column");
                    seen[j] = true;
                }
            }
        }
    }

    /// Heuristics never beat the optimum, and the auction stays within its
    /// ε-scaling guarantee of it.
    #[test]
    fn heuristics_bounded_by_optimum(sim in (2usize..6).prop_flat_map(|n| similarity(n, n))) {
        let best = brute_force(&sim);
        let greedy = assignment_value(&sim, &assign(&dense(&sim), AssignmentMethod::SortGreedy));
        prop_assert!(greedy <= best + 1e-9);
        let auction = assignment_value(&sim, &assign(&dense(&sim), AssignmentMethod::Auction));
        prop_assert!(auction <= best + 1e-9);
        prop_assert!(auction >= best - 0.05 * sim.rows() as f64, "auction too far from optimum");
    }

    /// Shifting every similarity by a constant changes no optimal matching
    /// (LAP is translation-invariant); values shift by n·c.
    #[test]
    fn lap_translation_invariance(
        sim in (2usize..6).prop_flat_map(|n| similarity(n, n)),
        c in -3.0f64..3.0,
    ) {
        let base = assign(&dense(&sim), AssignmentMethod::JonkerVolgenant);
        let mut shifted = sim.clone();
        shifted.map_inplace(|v| v + c);
        let shifted_assignment = assign(&dense(&shifted), AssignmentMethod::JonkerVolgenant);
        let v1 = assignment_value(&sim, &base);
        let v2 = assignment_value(&sim, &shifted_assignment);
        prop_assert!((v1 - v2).abs() < 1e-9, "shift changed the optimum: {v1} vs {v2}");
    }

    /// The k-d tree finds the same nearest neighbor as a linear scan.
    #[test]
    fn kdtree_matches_linear_scan(
        dim in 1usize..5,
        points in proptest::collection::vec(-1.0f64..1.0, 8..120),
        query in proptest::collection::vec(-1.0f64..1.0, 5),
    ) {
        let n = points.len() / dim;
        prop_assume!(n >= 2);
        let data = &points[..n * dim];
        let q = &query[..dim];
        let tree = KdTree::build(data, dim);
        let (ti, td) = tree.nearest(q).unwrap();
        let (li, ld) = (0..n)
            .map(|i| {
                let p = &data[i * dim..(i + 1) * dim];
                let d: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        prop_assert!((td - ld).abs() < 1e-12, "tree {ti}@{td} vs linear {li}@{ld}");
    }

    /// k-NN returns k results in non-decreasing distance order, matching the
    /// sorted linear scan's distances.
    #[test]
    fn kdtree_knn_sorted_and_exact(
        points in proptest::collection::vec(-1.0f64..1.0, 30..90),
        k in 1usize..6,
    ) {
        let dim = 3;
        let n = points.len() / dim;
        let data = &points[..n * dim];
        let tree = KdTree::build(data, dim);
        let q = [0.0, 0.0, 0.0];
        let got = tree.k_nearest(&q, k.min(n));
        prop_assert_eq!(got.len(), k.min(n));
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-15);
        }
        let mut all: Vec<f64> = (0..n)
            .map(|i| data[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (j, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - all[j]).abs() < 1e-12);
        }
    }
}

/// Coarse factor grids (quarter steps) so random instances hit plenty of
/// exact value ties — the hard case for representation equivalence.
fn factor(rows: usize, rank: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-6i32..7, rows * rank).prop_map(move |v| {
        DenseMatrix::from_vec(rows, rank, v.iter().map(|&x| x as f64 * 0.25).collect())
    })
}

fn sparse_sim(n: usize, m: usize) -> impl Strategy<Value = CsrMatrix> {
    // Each cell: present with probability 0.4, coarse half-step values.
    proptest::collection::vec((0u32..10, -4i32..5), n * m).prop_map(move |cells| {
        let mut trips = Vec::new();
        for (k, &(p, x)) in cells.iter().enumerate() {
            if p < 4 {
                trips.push((k / m, k % m, x as f64 * 0.5));
            }
        }
        CsrMatrix::from_triplets(n, m, &trips)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tentpole invariant: every assignment method on a factored similarity
    /// returns the exact matching of the densified path, for every kernel.
    #[test]
    fn lowrank_matches_densified_path_for_every_method(
        (ya, yb, kernel_idx) in (1usize..8, 0usize..4, 1usize..4).prop_flat_map(|(n, extra, d)| {
            (factor(n, d), factor(n + extra, d), 0usize..3)
        }),
    ) {
        let kernel = [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist]
            [kernel_idx];
        let sim = Similarity::LowRank(LowRankSim::new(ya, yb, kernel));
        let densified = Similarity::Dense(sim.to_dense(&mut Workspace::new()));
        for method in AssignmentMethod::ALL {
            prop_assert_eq!(
                assign(&sim, method),
                assign(&densified, method),
                "{:?} on {:?} diverged from the densified path", method, kernel
            );
        }
    }

    /// Same invariant for sparse similarities, whose absent entries must act
    /// as exact zeros.
    #[test]
    fn sparse_matches_densified_path_for_every_method(
        s in (1usize..7, 0usize..3).prop_flat_map(|(n, extra)| sparse_sim(n, n + extra)),
    ) {
        let sim = Similarity::Sparse(s);
        let densified = Similarity::Dense(sim.to_dense(&mut Workspace::new()));
        for method in AssignmentMethod::ALL {
            prop_assert_eq!(
                assign(&sim, method),
                assign(&densified, method),
                "{:?} diverged from the densified path", method
            );
        }
    }

    /// Row offsets are part of the representation contract: a factored
    /// similarity with offsets still matches its densified path.
    #[test]
    fn lowrank_row_offsets_match_densified_path(
        (ya, yb, offs) in (2usize..6, 1usize..3).prop_flat_map(|(n, d)| {
            (factor(n, d), factor(n + 1, d),
             proptest::collection::vec(-2i32..3, n).prop_map(|v| v.iter().map(|&x| x as f64 * 0.5).collect::<Vec<f64>>()))
        }),
    ) {
        let sim = Similarity::LowRank(
            LowRankSim::new(ya, yb, LowRankKernel::Dot).with_row_offsets(offs),
        );
        let densified = Similarity::Dense(sim.to_dense(&mut Workspace::new()));
        for method in AssignmentMethod::ALL {
            prop_assert_eq!(assign(&sim, method), assign(&densified, method), "{:?}", method);
        }
    }
}

#[test]
fn degenerate_shapes_match_densified_path() {
    // n = 1, rank 1; a single-entry sparse row; and the empty matching.
    let one = Similarity::LowRank(LowRankSim::new(
        DenseMatrix::filled(1, 1, 0.5),
        DenseMatrix::filled(1, 1, -0.25),
        LowRankKernel::Dot,
    ));
    let single = Similarity::Sparse(CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0)]));
    let empty_sparse = Similarity::Sparse(CsrMatrix::from_triplets(0, 0, &[]));
    for sim in [&one, &single] {
        let densified = Similarity::Dense(sim.to_dense(&mut Workspace::new()));
        for method in AssignmentMethod::ALL {
            assert_eq!(assign(sim, method), assign(&densified, method), "{method:?}");
        }
    }
    // An empty graph has no rows to assign; NN's zero-column panic is part of
    // the dense contract, so only the shape-agnostic methods run here.
    for method in [
        AssignmentMethod::SortGreedy,
        AssignmentMethod::Hungarian,
        AssignmentMethod::JonkerVolgenant,
        AssignmentMethod::Auction,
    ] {
        assert_eq!(assign(&empty_sparse, method), Vec::<usize>::new(), "{method:?}");
    }
}
