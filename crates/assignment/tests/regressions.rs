//! Deterministic regression tests for the assignment solvers.
//!
//! The first test pins the proptest-shrunk counterexample recorded in
//! `proptests.proptest-regressions` as a named test, so the case is exercised
//! on every run (proptest only replays regressions on the machine holding the
//! file). The rest cover rectangular and degenerate shapes the random
//! strategies hit rarely: single-row problems, duplicate-best columns, and
//! all-equal costs.

use graphalign_assignment::hungarian::{hungarian_max, hungarian_min};
use graphalign_assignment::jv::{jv_max, jv_min};
use graphalign_assignment::{assign, assignment_value, AssignmentMethod};
use graphalign_linalg::DenseMatrix;

/// Exhaustive optimal value by permutation enumeration (tiny n only).
fn brute_force_max(sim: &DenseMatrix) -> f64 {
    fn rec(sim: &DenseMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
        if row == sim.rows() {
            return 0.0;
        }
        let mut best = f64::NEG_INFINITY;
        for j in 0..sim.cols() {
            if used[j] {
                continue;
            }
            used[j] = true;
            best = best.max(sim.get(row, j) + rec(sim, row + 1, used));
            used[j] = false;
        }
        best
    }
    rec(sim, 0, &mut vec![false; sim.cols()])
}

fn assert_one_to_one(assignment: &[usize], cols: usize) {
    let mut seen = vec![false; cols];
    for &j in assignment {
        assert!(j < cols, "column {j} out of range");
        assert!(!seen[j], "column {j} assigned twice");
        seen[j] = true;
    }
}

/// The shrunk counterexample from `proptests.proptest-regressions`
/// (`optimal_solvers_match_brute_force`): a 2×2 matrix whose optimal
/// matching is the diagonal, but where the anti-diagonal contains the
/// largest single entry — a greedy-looking initialization that commits to
/// `(1, 0) = 1.925` can only recover through an augmenting path.
#[test]
fn proptest_regression_2x2_antidiagonal_trap() {
    let sim = DenseMatrix::from_vec(
        2,
        2,
        vec![1.5480272261091679, -1.7181816553859925, 1.925055930351128, 0.0],
    );
    let best = brute_force_max(&sim);
    for method in [AssignmentMethod::JonkerVolgenant, AssignmentMethod::Hungarian] {
        let a = assign(&graphalign_linalg::Similarity::Dense(sim.clone()), method);
        assert_eq!(a, vec![0, 1], "{method:?} must take the diagonal");
        let got = assignment_value(&sim, &a);
        assert!((got - best).abs() < 1e-12, "{method:?}: {got} vs {best}");
    }
}

#[test]
fn hungarian_single_row_takes_argmax() {
    // 1×k: the optimal matching is the row argmax, for any k.
    for k in 1..=6 {
        let sim = DenseMatrix::from_fn(1, k, |_, j| if j == k / 2 { 2.0 } else { -(j as f64) });
        assert_eq!(hungarian_max(&sim), vec![k / 2], "1×{k}");
        // min form: the cheapest column.
        let cost = DenseMatrix::from_fn(1, k, |_, j| if j == k - 1 { -3.0 } else { j as f64 });
        assert_eq!(hungarian_min(&cost), vec![k - 1], "1×{k} min");
    }
}

#[test]
fn duplicate_best_columns_still_yield_optimal_one_to_one() {
    // Every row's best value (5.0) appears in two columns; a solver that
    // breaks ties carelessly double-assigns or settles for a suboptimal
    // total. Optimal total is 5 + 5 + 1 = 11.
    let sim = DenseMatrix::from_rows(&[&[5.0, 5.0, 1.0], &[5.0, 5.0, 0.0], &[1.0, 0.0, 1.0]]);
    let best = brute_force_max(&sim);
    assert!((best - 11.0).abs() < 1e-12);
    for a in [hungarian_max(&sim), jv_max(&sim)] {
        assert_one_to_one(&a, 3);
        let got = assignment_value(&sim, &a);
        assert!((got - best).abs() < 1e-12, "{got} vs {best}");
    }
}

#[test]
fn duplicate_best_rectangular_hungarian() {
    // 2×4 with the shared maximum in the same column for both rows: one row
    // must fall back to its second-best, and the solver picks the split that
    // maximizes the total (0 → col 2, 1 → col 0).
    let sim = DenseMatrix::from_rows(&[&[9.0, 1.0, 8.0, 0.0], &[9.0, 2.0, 1.0, 0.0]]);
    let a = hungarian_max(&sim);
    assert_one_to_one(&a, 4);
    let got = assignment_value(&sim, &a);
    assert!((got - 17.0).abs() < 1e-12, "expected 8 + 9 = 17, got {got}");
}

#[test]
fn all_equal_costs_yield_valid_matchings() {
    // With every entry equal, any permutation is optimal; the solvers must
    // still terminate and return a one-to-one matching of value n·c.
    for n in [1, 2, 5] {
        let sim = DenseMatrix::from_fn(n, n, |_, _| 0.75);
        for a in [hungarian_max(&sim), jv_max(&sim), jv_min(&sim), hungarian_min(&sim)] {
            assert_one_to_one(&a, n);
        }
        let v = assignment_value(&sim, &hungarian_max(&sim));
        assert!((v - 0.75 * n as f64).abs() < 1e-12);
    }
    // Rectangular all-equal (Hungarian only; JV requires square).
    let sim = DenseMatrix::from_fn(3, 6, |_, _| -1.25);
    let a = hungarian_max(&sim);
    assert_one_to_one(&a, 6);
    assert!((assignment_value(&sim, &a) + 3.75).abs() < 1e-12);
}
