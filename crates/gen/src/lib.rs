//! Synthetic graph generators.
//!
//! The paper evaluates alignment algorithms on five random-graph families
//! (§5.1.2) plus configuration-model graphs for the scalability study
//! (§6.6). All generators here are seeded and deterministic.
//!
//! * [`erdos_renyi`] — G(n, p) random graphs (paper: `p = 0.009`);
//! * [`barabasi_albert`] — preferential attachment (paper: `m = 5`);
//! * [`watts_strogatz`] — small-world rewiring (paper: `k = 10, p = 0.5`);
//! * [`newman_watts`] — small-world with shortcut addition only (paper:
//!   `k = 7, p = 0.5`);
//! * [`powerlaw_cluster`] — Holme–Kim scale-free graphs with tunable
//!   clustering (paper: `m = 5, p = 0.5`);
//! * [`configuration_model`] — graphs with a prescribed degree sequence,
//!   with [`degrees`] providing the normal/uniform/power-law sequences the
//!   scalability and density sweeps use.

pub mod degrees;

use graphalign_graph::{Graph, GraphBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p` (paper default `p = 0.009`).
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability {p} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Geometric skipping: sample the gap to the next edge instead of a coin
    // per pair; O(m) instead of O(n²) for sparse p.
    if p > 0.0 {
        let log_q = (1.0 - p).ln();
        let total_pairs = n * n.saturating_sub(1) / 2;
        let mut idx: usize = 0;
        let pair = |k: usize| -> (usize, usize) {
            // Map linear index k to pair (u, v), u < v, row-major over u.
            let mut u = 0usize;
            let mut k = k;
            let mut row = n - 1;
            while k >= row {
                k -= row;
                u += 1;
                row -= 1;
            }
            (u, u + 1 + k)
        };
        if p >= 1.0 {
            for k in 0..total_pairs {
                edges.push(pair(k));
            }
        } else {
            loop {
                let r: f64 = rng.random_range(0.0_f64..1.0).max(f64::MIN_POSITIVE);
                let gap = (r.ln() / log_q).floor() as usize;
                idx = match idx.checked_add(gap) {
                    Some(i) => i,
                    None => break,
                };
                if idx >= total_pairs {
                    break;
                }
                edges.push(pair(idx));
                idx += 1;
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: start from a star on `m + 1`
/// nodes, then attach each new node to `m` existing nodes chosen with
/// probability proportional to their degree (paper default `m = 5`).
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need n > m (got n={n}, m={m})");
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is exactly degree-proportional sampling.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * m * n);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m * n);
    // Seed star.
    for v in 0..m {
        edges.push((v, m));
        endpoint_pool.push(v);
        endpoint_pool.push(m);
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let t = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Watts–Strogatz small-world graph: ring lattice where each node connects
/// to its `k` nearest neighbors (`k/2` on each side), then each edge is
/// rewired with probability `p` (paper default `k = 10, p = 0.5`).
///
/// # Panics
/// Panics if `k` is odd, `k == 0`, `k >= n`, or `p` outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k > 0 && k.is_multiple_of(2), "k must be positive and even (got {k})");
    assert!(k < n, "need k < n (got k={k}, n={n})");
    assert!((0.0..=1.0).contains(&p), "rewiring probability {p} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for d in 1..=(k / 2) {
            builder.add_edge(u, (u + d) % n);
        }
    }
    // Rewire: for each lattice edge (u, u+d), with probability p replace it
    // by (u, w) with w uniform (avoiding self-loops and duplicates).
    for u in 0..n {
        for d in 1..=(k / 2) {
            let v = (u + d) % n;
            if rng.random_range(0.0_f64..1.0) >= p {
                continue;
            }
            if !builder.has_edge(u, v) {
                continue; // already rewired away by an earlier step
            }
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 100 {
                    break; // node saturated; keep the lattice edge
                }
                let w = rng.random_range(0..n);
                if w != u && !builder.has_edge(u, w) {
                    builder.remove_edge(u, v);
                    builder.add_edge(u, w);
                    break;
                }
            }
        }
    }
    builder.build()
}

/// Newman–Watts small-world graph: like [`watts_strogatz`] but shortcuts are
/// *added* (per lattice edge, with probability `p`) instead of rewired, so
/// no edge is ever removed (paper default `k = 7, p = 0.5`).
///
/// `k` may be odd (the lattice connects to `⌈k/2⌉` clockwise neighbors and
/// `⌊k/2⌋` counter-clockwise, matching networkx's
/// `newman_watts_strogatz_graph` rounding).
///
/// # Panics
/// Panics if `k == 0`, `k >= n`, or `p` outside `[0, 1]`.
pub fn newman_watts(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k > 0, "k must be positive");
    assert!(k < n, "need k < n (got k={k}, n={n})");
    assert!((0.0..=1.0).contains(&p), "shortcut probability {p} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    let half = k.div_ceil(2);
    for u in 0..n {
        for d in 1..=half {
            builder.add_edge(u, (u + d) % n);
        }
    }
    let lattice: Vec<(usize, usize)> = builder.edge_vec();
    for &(u, _) in &lattice {
        if rng.random_range(0.0_f64..1.0) >= p {
            continue;
        }
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 100 {
                break;
            }
            let w = rng.random_range(0..n);
            if w != u && !builder.has_edge(u, w) {
                builder.add_edge(u, w);
                break;
            }
        }
    }
    builder.build()
}

/// Holme–Kim power-law cluster graph: preferential attachment with `m` edges
/// per new node, where after each preferential step a *triad formation* step
/// follows with probability `p` — connect to a random neighbor of the node
/// just linked, closing a triangle (paper default `m = 5, p = 0.5`).
///
/// # Panics
/// Panics if `m == 0`, `n <= m`, or `p` outside `[0, 1]`.
pub fn powerlaw_cluster(n: usize, m: usize, p: f64, seed: u64) -> Graph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need n > m (got n={n}, m={m})");
    assert!((0.0..=1.0).contains(&p), "triangle probability {p} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * m * n);
    let mut builder = GraphBuilder::new(n);
    for v in 0..m {
        builder.add_edge(v, m);
        endpoint_pool.push(v);
        endpoint_pool.push(m);
    }
    for v in (m + 1)..n {
        let mut added = 0usize;
        let mut last_target: Option<usize> = None;
        let mut guard = 0usize;
        while added < m && guard < 200 * m {
            guard += 1;
            // Triad formation with probability p, when possible.
            let candidate = if let Some(prev) = last_target {
                if rng.random_range(0.0_f64..1.0) < p {
                    let neigh: Vec<usize> = builder
                        .edges()
                        .filter_map(|(a, b)| {
                            if a == prev {
                                Some(b)
                            } else if b == prev {
                                Some(a)
                            } else {
                                None
                            }
                        })
                        .collect();
                    if neigh.is_empty() {
                        None
                    } else {
                        Some(neigh[rng.random_range(0..neigh.len())])
                    }
                } else {
                    None
                }
            } else {
                None
            };
            let t = candidate
                .unwrap_or_else(|| endpoint_pool[rng.random_range(0..endpoint_pool.len())]);
            if t == v || builder.has_edge(v, t) {
                continue;
            }
            builder.add_edge(v, t);
            endpoint_pool.push(v);
            endpoint_pool.push(t);
            last_target = Some(t);
            added += 1;
        }
    }
    builder.build()
}

/// Erased configuration model: wires a graph whose degree sequence
/// approximates `degrees` by random stub matching, then drops self-loops and
/// duplicate edges (so realized degrees can fall slightly short — the
/// standard "erased" variant, which is what the paper's scalability
/// workloads need).
///
/// The sum of `degrees` may be odd; one stub is dropped in that case.
pub fn configuration_model(degree_seq: &[usize], seed: u64) -> Graph {
    let n = degree_seq.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<usize> = Vec::with_capacity(degree_seq.iter().sum());
    for (v, &d) in degree_seq.iter().enumerate() {
        assert!(d < n, "degree {d} of node {v} impossible in a simple graph on {n} nodes");
        stubs.extend(std::iter::repeat_n(v, d));
    }
    if !stubs.len().is_multiple_of(2) {
        stubs.pop();
    }
    stubs.shuffle(&mut rng);
    let edges: Vec<(usize, usize)> = stubs.chunks_exact(2).map(|pair| (pair[0], pair[1])).collect();
    // Graph::from_edges drops self-loops and duplicates (erasure).
    Graph::from_edges(n, &edges)
}

/// The powerlaw-family benchmark graph of §6.2 / Figure 1 ("a random graph
/// with power-law degree distribution"): a Holme–Kim graph with the paper's
/// PL parameters at the requested size.
pub fn figure1_powerlaw(n: usize, seed: u64) -> Graph {
    powerlaw_cluster(n, 5, 0.5, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_graph::traversal::connected_components;

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, 7);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!((m - expected).abs() < 4.0 * expected.sqrt(), "m={m}, expected≈{expected}");
    }

    #[test]
    fn er_determinism_and_seed_sensitivity() {
        assert_eq!(erdos_renyi(100, 0.05, 1), erdos_renyi(100, 0.05, 1));
        assert_ne!(erdos_renyi(100, 0.05, 1), erdos_renyi(100, 0.05, 2));
    }

    #[test]
    fn er_extreme_probabilities() {
        let g = erdos_renyi(10, 0.0, 3);
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi(10, 1.0, 3);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn ba_edge_count_and_connectivity() {
        let g = barabasi_albert(300, 5, 11);
        // m seed-star edges + m per additional node.
        assert_eq!(g.edge_count(), 5 + 5 * (300 - 6));
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 5, 13);
        let mut degrees = g.degrees();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[degrees.len() / 2];
        assert!(max > 6 * median, "expected a heavy tail: max={max}, median={median}");
    }

    #[test]
    fn ws_degree_is_conserved_in_total() {
        let n = 200;
        let k = 10;
        let g = watts_strogatz(n, k, 0.5, 17);
        // Rewiring preserves the edge count exactly (up to saturation guards).
        assert_eq!(g.edge_count(), n * k / 2);
    }

    #[test]
    fn ws_zero_p_is_the_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 19);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
            assert!(g.has_edge(v, (v + 1) % 20));
            assert!(g.has_edge(v, (v + 2) % 20));
        }
    }

    #[test]
    fn nw_only_adds_edges() {
        let base = newman_watts(100, 6, 0.0, 23);
        let noisy = newman_watts(100, 6, 0.5, 23);
        assert!(noisy.edge_count() > base.edge_count());
        for (u, v) in base.edges() {
            assert!(noisy.has_edge(u, v), "NW must never remove lattice edges");
        }
    }

    #[test]
    fn nw_handles_odd_k() {
        let g = newman_watts(50, 7, 0.0, 29);
        // ⌈7/2⌉ = 4 clockwise neighbors per node → degree 8 lattice.
        for v in 0..50 {
            assert_eq!(g.degree(v), 8);
        }
    }

    #[test]
    fn pl_has_more_triangles_than_ba() {
        let ba = barabasi_albert(800, 5, 31);
        let pl = powerlaw_cluster(800, 5, 0.9, 31);
        let tri = |g: &Graph| g.triangles_per_node().iter().sum::<usize>() / 3;
        let t_ba = tri(&ba);
        let t_pl = tri(&pl);
        assert!(
            t_pl as f64 > 1.5 * t_ba as f64,
            "triad formation should boost triangles: PL={t_pl}, BA={t_ba}"
        );
    }

    #[test]
    fn pl_edge_budget_matches_ba() {
        let g = powerlaw_cluster(300, 5, 0.5, 37);
        assert_eq!(g.edge_count(), 5 + 5 * (300 - 6));
    }

    #[test]
    fn configuration_model_approximates_degree_sequence() {
        let seq = vec![10usize; 400];
        let g = configuration_model(&seq, 41);
        assert_eq!(g.node_count(), 400);
        let realized = g.avg_degree();
        assert!(
            (realized - 10.0).abs() < 0.5,
            "erased configuration model should land near the target degree, got {realized}"
        );
    }

    #[test]
    fn configuration_model_odd_stub_sum() {
        let g = configuration_model(&[3, 2, 2, 2], 43);
        assert!(g.edge_count() <= 4, "odd stub sum drops one stub");
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "impossible in a simple graph")]
    fn configuration_model_rejects_impossible_degree() {
        configuration_model(&[5, 1, 1], 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive and even")]
    fn ws_rejects_odd_k() {
        watts_strogatz(10, 3, 0.5, 0);
    }
}
