//! Degree-sequence generators for the configuration model.
//!
//! The scalability study (paper §6.6) uses configuration-model graphs "with
//! normal degree distribution" when sweeping node counts (Figures 11, 13)
//! and a uniform distribution when sweeping average degree (Figures 12, 14);
//! the density study additionally motivates power-law sequences. All
//! sequences are clamped to the simple-graph range `[1, n−1]`.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Samples a standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal degree sequence with the given mean and standard deviation,
/// clamped to `[1, n−1]` and rounded.
pub fn normal(n: usize, mean: f64, std_dev: f64, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "need at least two nodes");
    assert!(mean >= 1.0, "mean degree must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let d = mean + std_dev * standard_normal(&mut rng);
            (d.round().max(1.0) as usize).min(n - 1)
        })
        .collect()
}

/// Constant (uniform) degree sequence: every node gets `degree`, clamped to
/// `n − 1`.
pub fn uniform(n: usize, degree: usize) -> Vec<usize> {
    assert!(n >= 2, "need at least two nodes");
    vec![degree.min(n - 1); n]
}

/// Power-law degree sequence with exponent `gamma > 1` and minimum degree
/// `d_min`, sampled by inverse-transform from the continuous Pareto tail and
/// clamped to `[d_min, n−1]`.
pub fn power_law(n: usize, gamma: f64, d_min: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "need at least two nodes");
    assert!(gamma > 1.0, "power-law exponent must exceed 1 (got {gamma})");
    assert!(d_min >= 1, "minimum degree must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let d = d_min as f64 * u.powf(-1.0 / (gamma - 1.0));
            (d.round() as usize).clamp(d_min, n - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_sequence_centers_on_mean() {
        let seq = normal(5000, 20.0, 4.0, 1);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "observed mean {mean}");
        assert!(seq.iter().all(|&d| (1..5000).contains(&d)));
    }

    #[test]
    fn normal_sequence_has_spread() {
        let seq = normal(5000, 50.0, 10.0, 2);
        let min = *seq.iter().min().unwrap();
        let max = *seq.iter().max().unwrap();
        assert!(max > 60 && min < 40, "min={min}, max={max}");
    }

    #[test]
    fn uniform_sequence_is_constant_and_clamped() {
        assert_eq!(uniform(5, 3), vec![3; 5]);
        assert_eq!(uniform(5, 100), vec![4; 5]);
    }

    #[test]
    fn power_law_sequence_is_heavy_tailed() {
        let seq = power_law(20000, 2.5, 5, 3);
        let min = *seq.iter().min().unwrap();
        let max = *seq.iter().max().unwrap();
        assert_eq!(min, 5);
        assert!(max > 50, "expected a heavy tail, max={max}");
        // The bulk should sit near d_min.
        let median = {
            let mut s = seq.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(median <= 10, "median {median}");
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        assert_eq!(normal(100, 10.0, 2.0, 9), normal(100, 10.0, 2.0, 9));
        assert_eq!(power_law(100, 2.2, 3, 9), power_law(100, 2.2, 3, 9));
        assert_ne!(normal(100, 10.0, 2.0, 9), normal(100, 10.0, 2.0, 10));
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn power_law_rejects_bad_gamma() {
        power_law(10, 1.0, 2, 0);
    }
}
