//! Property-based tests of graph invariants.

use graphalign_graph::graphlets::{graphlet_degrees, ORBIT_COUNT};
use graphalign_graph::io::{parse_edge_list, write_edge_list};
use graphalign_graph::spectral;
use graphalign_graph::traversal::{bfs_distances, connected_components, largest_component};
use graphalign_graph::{Graph, GraphBuilder, Permutation};
use proptest::prelude::*;

/// Strategy: a random simple graph on up to `max_n` nodes.
fn graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..3 * n)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Handshake lemma: degree sum equals twice the edge count.
    #[test]
    fn handshake_lemma(g in graph(30)) {
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Adjacency is symmetric and the edges iterator is consistent with
    /// `has_edge`.
    #[test]
    fn adjacency_consistency(g in graph(25)) {
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        let m = g.adjacency();
        prop_assert_eq!(m.nnz(), 2 * g.edge_count());
    }

    /// Component sizes partition the node set; the largest-component
    /// extraction keeps exactly its size.
    #[test]
    fn components_partition(g in graph(25)) {
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
        let (lcc, mapping) = largest_component(&g);
        prop_assert_eq!(lcc.node_count(), c.sizes[c.largest()]);
        let kept = mapping.iter().filter(|m| m.is_some()).count();
        prop_assert_eq!(kept, lcc.node_count());
    }

    /// BFS distances satisfy the triangle property along edges: adjacent
    /// nodes differ by at most 1 in distance from any source.
    #[test]
    fn bfs_lipschitz(g in graph(25), src_frac in 0.0f64..1.0) {
        let n = g.node_count();
        let src = ((src_frac * n as f64) as usize).min(n - 1);
        let d = bfs_distances(&g, src);
        for (u, v) in g.edges() {
            match (d[u], d[v]) {
                (usize::MAX, usize::MAX) => {}
                (a, b) => {
                    prop_assert!(a != usize::MAX && b != usize::MAX,
                        "edge between reached and unreached node");
                    prop_assert!(a.abs_diff(b) <= 1);
                }
            }
        }
    }

    /// Permuting a graph preserves all graph invariants and graphlet orbit
    /// totals (GDVs are permutation-covariant).
    #[test]
    fn permutation_preserves_structure(g in graph(18), seed in any::<u64>()) {
        let p = Permutation::random(g.node_count(), seed);
        let h = p.apply_to_graph(&g);
        prop_assert_eq!(h.edge_count(), g.edge_count());
        // Degree multiset preserved.
        let mut dg = g.degrees();
        let mut dh = h.degrees();
        dg.sort_unstable();
        dh.sort_unstable();
        prop_assert_eq!(dg, dh);
        // Per-node graphlet signatures carried along exactly.
        let gd_g = graphlet_degrees(&g);
        let gd_h = graphlet_degrees(&h);
        for v in 0..g.node_count() {
            prop_assert_eq!(gd_g.counts[v], gd_h.counts[p.apply(v)]);
        }
    }

    /// Graphlet orbit totals are internally consistent: orbit 3 counts each
    /// triangle at 3 nodes, so the total is divisible by 3; similarly orbit
    /// 14 (K4) at 4 nodes and orbit 8 (C4) at 4 nodes.
    #[test]
    fn orbit_count_divisibility(g in graph(16)) {
        let gd = graphlet_degrees(&g);
        let total = |o: usize| gd.counts.iter().map(|c| c[o]).sum::<u64>();
        prop_assert_eq!(total(3) % 3, 0, "triangle orbit");
        prop_assert_eq!(total(8) % 4, 0, "C4 orbit");
        prop_assert_eq!(total(14) % 4, 0, "K4 orbit");
        // Paw: 1 tail + 2 far + 1 attachment per paw.
        prop_assert_eq!(total(10) % 2, 0, "paw far orbit");
        prop_assert_eq!(total(9), total(11), "paw tail == paw attachment");
        // P4: 2 ends and 2 middles per path.
        prop_assert_eq!(total(4), total(5), "P4 ends == middles");
        // Star: 3 leaves per center.
        prop_assert_eq!(total(6), 3 * total(7), "star leaves == 3x centers");
        // Diamond: 2 degree-2 and 2 degree-3 nodes per diamond.
        prop_assert_eq!(total(12), total(13), "diamond orbits");
        let _ = ORBIT_COUNT;
    }

    /// Laplacian row sums: the normalized Laplacian applied to the all-ones
    /// vector restricted to a regular graph's component is ~0 on non-isolated
    /// regular nodes; more robustly, the combinatorial Laplacian annihilates
    /// the all-ones vector on every graph.
    #[test]
    fn combinatorial_laplacian_annihilates_ones(g in graph(20)) {
        let l = spectral::combinatorial_laplacian(&g);
        let ones = vec![1.0; g.node_count()];
        for v in l.mul_vec(&ones) {
            prop_assert!(v.abs() < 1e-12);
        }
    }

    /// Edge-list IO round-trips the structure.
    #[test]
    fn io_round_trip(g in graph(20)) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = parse_edge_list(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(parsed.graph.edge_count(), g.edge_count());
        // Isolated nodes are not representable in an edge list; only the
        // incident structure must survive.
        for (u, v) in g.edges() {
            let pu = parsed.original_ids.iter().position(|&x| x == u as u64).unwrap();
            let pv = parsed.original_ids.iter().position(|&x| x == v as u64).unwrap();
            prop_assert!(parsed.graph.has_edge(pu, pv));
        }
    }

    /// GraphBuilder round-trips arbitrary edit sequences into consistent
    /// graphs.
    #[test]
    fn builder_edit_sequences(
        n in 3usize..15,
        ops in proptest::collection::vec((any::<bool>(), 0usize..15, 0usize..15), 0..60),
    ) {
        let mut b = GraphBuilder::new(n);
        for (add, u, v) in ops {
            let (u, v) = (u % n, v % n);
            if add {
                b.add_edge(u, v);
            } else {
                b.remove_edge(u, v);
            }
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), b.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(b.has_edge(u, v));
        }
    }
}

/// Subset-enumeration reference for the graphlet counter: classify every
/// connected induced subgraph on 2–4 nodes directly from `has_edge` probes
/// and the (edge count, degree sequence) pair. Shares nothing with the
/// bit-parallel ESU implementation beyond the orbit numbering.
fn graphlet_degrees_by_subsets(g: &Graph) -> Vec<[u64; ORBIT_COUNT]> {
    let n = g.node_count();
    let mut counts = vec![[0u64; ORBIT_COUNT]; n];
    for (u, v) in g.edges() {
        counts[u][0] += 1;
        counts[v][0] += 1;
    }
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                let (eab, eac, ebc) = (g.has_edge(a, b), g.has_edge(a, c), g.has_edge(b, c));
                match (eab as u8) + (eac as u8) + (ebc as u8) {
                    3 => {
                        for x in [a, b, c] {
                            counts[x][3] += 1;
                        }
                    }
                    2 => {
                        // P₃: the middle is the node on both edges.
                        let mid = if eab && eac {
                            a
                        } else if eab && ebc {
                            b
                        } else {
                            c
                        };
                        for x in [a, b, c] {
                            counts[x][if x == mid { 2 } else { 1 }] += 1;
                        }
                    }
                    _ => {}
                }
                for d in c + 1..n {
                    let quad = [a, b, c, d];
                    let mut deg = [0u8; 4];
                    let mut m = 0u8;
                    for i in 0..4 {
                        for j in i + 1..4 {
                            if g.has_edge(quad[i], quad[j]) {
                                deg[i] += 1;
                                deg[j] += 1;
                                m += 1;
                            }
                        }
                    }
                    // On 4 nodes, a disconnected subgraph either has < 3
                    // edges or is triangle-plus-isolated (a degree-0 node);
                    // every other (m, degree) combination is connected.
                    if m < 3 || deg.contains(&0) {
                        continue;
                    }
                    for (i, &x) in quad.iter().enumerate() {
                        let o = match (m, deg[i]) {
                            (3, 1) if deg.contains(&3) => 6,  // claw leaf
                            (3, 3) => 7,                      // claw center
                            (3, 1) => 4,                      // P₄ end
                            (3, 2) => 5,                      // P₄ middle
                            (4, 2) if deg.contains(&1) => 10, // paw triangle
                            (4, 1) => 9,                      // paw tail
                            (4, 3) => 11,                     // paw attachment
                            (4, 2) => 8,                      // C₄
                            (5, 2) => 12,                     // diamond rim
                            (5, 3) => 13,                     // diamond hub
                            (6, 3) => 14,                     // K₄
                            other => panic!("impossible induced subgraph: {other:?}"),
                        };
                        counts[x][o] += 1;
                    }
                }
            }
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bit-parallel ESU counter agrees orbit-for-orbit with direct
    /// subset enumeration on random graphs.
    #[test]
    fn graphlet_counts_match_subset_enumeration(g in graph(14)) {
        let fast = graphlet_degrees(&g);
        let slow = graphlet_degrees_by_subsets(&g);
        prop_assert_eq!(fast.counts, slow);
    }
}
