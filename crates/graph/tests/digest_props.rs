//! Property tests for the graph content digest — the guarantees that make
//! `(digest, algorithm, params)` a trustworthy cache key for the serving
//! layer: the digest must be invariant to how a graph was assembled (edge
//! order, duplicates) and to the worker-thread count, and must change
//! whenever the alignment input actually changes (relabeling, edge noise).

use graphalign_graph::{ContentDigest, Graph, Permutation};
use proptest::prelude::*;

/// Strategy: a node count and a raw (unordered, possibly duplicated) edge
/// list over it.
fn raw_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..3 * n).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation (here: reversal and an interleaved shuffle) or
    /// duplication of the edge list digests identically — the digest sees
    /// only the canonical CSR form.
    #[test]
    fn digest_is_edge_insertion_order_invariant((n, edges) in raw_edges(30)) {
        let base = Graph::from_edges(n, &edges).content_digest();
        let mut reversed = edges.clone();
        reversed.reverse();
        prop_assert_eq!(Graph::from_edges(n, &reversed).content_digest(), base);
        // Flip endpoint order of every edge.
        let flipped: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        prop_assert_eq!(Graph::from_edges(n, &flipped).content_digest(), base);
        // Duplicate the whole list: dedup restores the canonical form.
        let mut doubled = edges.clone();
        doubled.extend_from_slice(&edges);
        prop_assert_eq!(Graph::from_edges(n, &doubled).content_digest(), base);
    }

    /// The digest is computed by a sequential scan; recomputing it under
    /// different worker-thread caps must be bit-identical (the cache-key
    /// contract: warm hits at any thread count).
    #[test]
    fn digest_is_thread_count_invariant((n, edges) in raw_edges(24)) {
        let g = Graph::from_edges(n, &edges);
        let mut seen = Vec::new();
        for threads in [1usize, 2, 8] {
            graphalign_par::set_max_threads(threads);
            seen.push(g.content_digest());
        }
        graphalign_par::set_max_threads(0);
        prop_assert_eq!(seen[0], seen[1]);
        prop_assert_eq!(seen[1], seen[2]);
    }

    /// A non-identity relabeling of a structurally asymmetric graph changes
    /// the digest: a permuted copy is a different alignment input and must
    /// not alias a cache entry.
    #[test]
    fn digest_changes_under_relabeling((n, mut edges) in raw_edges(24), seed in 0u64..1000) {
        // Append a pendant path so the graph has asymmetric structure and a
        // guaranteed non-empty edge set under every permutation.
        edges.push((0, 1));
        edges.push((1, 2));
        let g = {
            let mut e = edges.clone();
            e.push((0, 2));
            Graph::from_edges(n, &e)
        };
        let perm = Permutation::random(n, seed);
        let permuted = perm.apply_to_graph(&g);
        let same_label = (0..n).all(|u| {
            let mut a: Vec<usize> = g.neighbors(u).to_vec();
            let mut b: Vec<usize> = permuted.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        });
        if same_label {
            // The permutation happened to be an automorphism: digests agree
            // because the labeled graphs are equal.
            prop_assert_eq!(permuted.content_digest(), g.content_digest());
        } else {
            prop_assert!(
                permuted.content_digest() != g.content_digest(),
                "relabeled copy aliased the original digest"
            );
        }
    }

    /// Adding or removing a single edge (noise) changes the digest.
    #[test]
    fn digest_changes_under_edge_noise((n, edges) in raw_edges(24)) {
        let g = Graph::from_edges(n, &edges);
        let base = g.content_digest();
        // Remove the first edge.
        if let Some(&(ru, rv)) = edges.iter().find(|&&(u, v)| u != v) {
            let pruned: Vec<(usize, usize)> = g
                .edges()
                .filter(|&(u, v)| (u, v) != (ru.min(rv), ru.max(rv)))
                .collect();
            prop_assert!(
                Graph::from_edges(n, &pruned).content_digest() != base,
                "removing an edge did not change the digest"
            );
        }
        // Add the first absent edge, if any.
        let absent = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v));
        if let Some((u, v)) = absent {
            let mut grown: Vec<(usize, usize)> = g.edges().collect();
            grown.push((u, v));
            prop_assert!(
                Graph::from_edges(n, &grown).content_digest() != base,
                "adding an edge did not change the digest"
            );
        }
    }

    /// Hex form round-trips for arbitrary graphs.
    #[test]
    fn digest_hex_round_trips((n, edges) in raw_edges(20)) {
        let d = Graph::from_edges(n, &edges).content_digest();
        prop_assert_eq!(ContentDigest::from_hex(&d.to_hex()), Some(d));
    }
}
