//! Five-node graphlet orbits — the full 73-orbit GRAAL dictionary.
//!
//! Production GRAAL counts orbits over graphlets of 2–5 nodes: the 15
//! orbits of [`crate::graphlets`] plus 58 orbits across the 21 connected
//! graphs on five nodes. This module derives the 5-node orbit tables *from
//! first principles* at first use:
//!
//! 1. enumerate all 2¹⁰ labeled graphs on five nodes and keep the connected
//!    ones;
//! 2. canonicalize each by minimizing its adjacency bitcode over all 120
//!    vertex permutations (5! is small enough for brute force);
//! 3. partition each canonical graphlet's vertices into automorphism orbits
//!    (two positions share an orbit iff some automorphism maps one to the
//!    other);
//! 4. assign global orbit ids in the deterministic order of ascending
//!    canonical code, then ascending orbit-representative position.
//!
//! The derivation is self-checked by the literature's constants: exactly
//! **21** graphlet classes and **58** orbits must come out (tests below).
//! Orbit *numbering* therefore differs from Pržulj's published order, which
//! is immaterial for GDV similarity (both graphs use the same tables); the
//! per-orbit weights use the graphlet's edge count as the complexity proxy
//! in `w_i = 1 − ln(dep_i)/ln(73)`, mirroring the spirit of Milenković &
//! Pržulj's dependency counts.

use crate::graph::Graph;
use crate::graphlets::{GraphletDegrees, ORBIT_COUNT};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Total orbit count with the 5-node dictionary enabled (15 + 58).
pub const ORBIT_COUNT_5: usize = 73;

/// Pair index into the 10-bit adjacency code of a 5-vertex graph:
/// bit `PAIR_BIT[i][j]` encodes edge `{i, j}` (i < j).
fn pair_bit(i: usize, j: usize) -> u16 {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    // Pairs in lexicographic order: (0,1)(0,2)(0,3)(0,4)(1,2)(1,3)(1,4)(2,3)(2,4)(3,4)
    const INDEX: [[usize; 5]; 5] =
        [[0, 0, 1, 2, 3], [0, 0, 4, 5, 6], [1, 4, 0, 7, 8], [2, 5, 7, 0, 9], [3, 6, 8, 9, 0]];
    1u16 << INDEX[a][b]
}

/// All 120 permutations of `[0, 1, 2, 3, 4]`.
fn permutations5() -> Vec<[usize; 5]> {
    let mut out = Vec::with_capacity(120);
    let mut items = [0usize, 1, 2, 3, 4];
    heap_permute(&mut items, 5, &mut out);
    out
}

fn heap_permute(items: &mut [usize; 5], k: usize, out: &mut Vec<[usize; 5]>) {
    if k == 1 {
        out.push(*items);
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Applies a vertex permutation to an adjacency bitcode.
fn permute_code(code: u16, perm: &[usize; 5]) -> u16 {
    let mut out = 0u16;
    for i in 0..5 {
        for j in (i + 1)..5 {
            if code & pair_bit(i, j) != 0 {
                out |= pair_bit(perm[i], perm[j]);
            }
        }
    }
    out
}

/// Whether the 5-vertex graph encoded by `code` is connected.
fn is_connected_code(code: u16) -> bool {
    let mut seen = [false; 5];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for (v, visited) in seen.iter_mut().enumerate() {
            if v != u && !*visited && code & pair_bit(u, v) != 0 {
                *visited = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == 5
}

/// Derived orbit tables for all connected 5-vertex graphs.
struct OrbitTables {
    /// canonical code → per-position global orbit id (15-based).
    orbits: HashMap<u16, [usize; 5]>,
    /// canonical code → canonicalizing permutation per raw code is found on
    /// the fly; this maps *raw* code → (canonical code, permutation raw→canon).
    canon: HashMap<u16, (u16, [usize; 5])>,
    /// Per global orbit id: the edge count of its graphlet (the weight
    /// proxy).
    orbit_edges: Vec<usize>,
    /// Number of distinct graphlet classes (must be 21).
    graphlet_classes: usize,
}

fn tables() -> &'static OrbitTables {
    static TABLES: OnceLock<OrbitTables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

fn build_tables() -> OrbitTables {
    let perms = permutations5();
    let mut canon: HashMap<u16, (u16, [usize; 5])> = HashMap::new();
    let mut classes: Vec<u16> = Vec::new();
    for code in 0u16..1024 {
        if !is_connected_code(code) {
            continue;
        }
        let mut best = u16::MAX;
        let mut best_perm = perms[0];
        for p in &perms {
            let pc = permute_code(code, p);
            if pc < best {
                best = pc;
                best_perm = *p;
            }
        }
        canon.insert(code, (best, best_perm));
        if !classes.contains(&best) {
            classes.push(best);
        }
    }
    classes.sort_unstable();

    // Automorphism orbits per canonical class, global ids assigned in
    // deterministic order.
    let mut orbits: HashMap<u16, [usize; 5]> = HashMap::new();
    let mut orbit_edges: Vec<usize> = Vec::new();
    let mut next_orbit = ORBIT_COUNT; // 5-node orbits start at 15
    for &class in &classes {
        // Positions p, q are in the same orbit iff an automorphism maps
        // p to q.
        let mut orbit_of = [usize::MAX; 5];
        for p in 0..5 {
            if orbit_of[p] != usize::MAX {
                continue;
            }
            let id = next_orbit;
            next_orbit += 1;
            orbit_edges.push(class.count_ones() as usize);
            orbit_of[p] = id;
            for perm in &perms {
                if permute_code(class, perm) == class {
                    // perm is an automorphism; position p maps to perm[p].
                    let q = perm[p];
                    if orbit_of[q] == usize::MAX {
                        orbit_of[q] = id;
                    }
                }
            }
        }
        orbits.insert(class, orbit_of);
    }
    OrbitTables { orbits, canon, orbit_edges, graphlet_classes: classes.len() }
}

/// Per-node graphlet degrees over the full 2–5-node dictionary:
/// `counts[v][o]` for orbits `o ∈ 0..73`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphletDegrees5 {
    /// `counts[v]` is the 73-orbit signature of node `v`.
    pub counts: Vec<Vec<u64>>,
}

impl GraphletDegrees5 {
    /// GDV similarity over the 73 orbits, with edge-count-based weights
    /// `w_i = 1 − ln(dep_i)/ln(73)` (`dep_i` = 1 for orbit 0, the graphlet
    /// edge count otherwise).
    pub fn similarity(&self, u: usize, other: &GraphletDegrees5, v: usize) -> f64 {
        let cu = &self.counts[u];
        let cv = &other.counts[v];
        let t = tables();
        let log_total = (ORBIT_COUNT_5 as f64).ln();
        let mut total_weight = 0.0;
        let mut total_dist = 0.0;
        for i in 0..ORBIT_COUNT_5 {
            let dep = if i == 0 {
                1.0
            } else if i < ORBIT_COUNT {
                crate::graphlets::ORBIT_DEPENDENCIES[i] as f64
            } else {
                t.orbit_edges[i - ORBIT_COUNT] as f64
            };
            let w = 1.0 - dep.max(1.0).ln() / log_total;
            let a = cu[i] as f64;
            let b = cv[i] as f64;
            total_dist += w * ((a + 1.0).ln() - (b + 1.0).ln()).abs() / (a.max(b) + 2.0).ln();
            total_weight += w;
        }
        1.0 - total_dist / total_weight
    }
}

/// Counts all 73 graphlet orbits for every node, exactly: the ≤4-node
/// orbits via [`crate::graphlets::graphlet_degrees`] and the 5-node orbits
/// via ESU at size 5 with canonical-form classification.
///
/// Cost is `O(#connected 5-subgraphs)` ≈ `O(n · Δ⁴)` — the preprocessing
/// that gives GRAAL its `O(n⁵)` reputation; use the 15-orbit counter for
/// anything beyond a few thousand nodes.
pub fn graphlet_degrees_5(g: &Graph) -> GraphletDegrees5 {
    let n = g.node_count();
    let base: GraphletDegrees = crate::graphlets::graphlet_degrees(g);
    let mut counts: Vec<Vec<u64>> = base
        .counts
        .iter()
        .map(|small| {
            let mut row = vec![0u64; ORBIT_COUNT_5];
            row[..ORBIT_COUNT].copy_from_slice(&small[..]);
            row
        })
        .collect();

    // ESU for size exactly 5, over roots in round-robin strides: u64
    // counter addition is exact, so merging per-worker tables is
    // thread-count independent. Force the canonical-form tables before
    // forking so workers share the memoized `OnceLock` instead of racing to
    // build it.
    let _ = tables();
    let avg_deg = if n > 0 { (2 * g.edge_count()).div_ceil(n) } else { 0 };
    let cost = avg_deg.max(1).saturating_pow(4);
    let partials = graphalign_par::fold_strided(n, cost, |start, step| {
        let mut local: Vec<Vec<u64>> = vec![vec![0u64; ORBIT_COUNT_5]; n];
        let mut sub: Vec<usize> = Vec::with_capacity(5);
        let mut v = start;
        while v < n {
            let ext: Vec<usize> = g.neighbors(v).iter().copied().filter(|&u| u > v).collect();
            sub.push(v);
            extend5(g, &mut sub, &ext, v, &mut local);
            sub.pop();
            v += step;
        }
        local
    });
    for part in partials {
        for (row, prow) in counts.iter_mut().zip(part) {
            for (c, p) in row.iter_mut().zip(prow) {
                *c += p;
            }
        }
    }
    GraphletDegrees5 { counts }
}

fn extend5(g: &Graph, sub: &mut Vec<usize>, ext: &[usize], root: usize, counts: &mut [Vec<u64>]) {
    if sub.len() == 5 {
        classify5(g, sub, counts);
        return;
    }
    for (i, &w) in ext.iter().enumerate() {
        let mut next_ext: Vec<usize> = ext[i + 1..].to_vec();
        for &u in g.neighbors(w) {
            if u <= root || sub.contains(&u) {
                continue;
            }
            if sub.iter().any(|&s| g.has_edge(s, u)) {
                continue;
            }
            if !next_ext.contains(&u) {
                next_ext.push(u);
            }
        }
        sub.push(w);
        extend5(g, sub, &next_ext, root, counts);
        sub.pop();
    }
}

fn classify5(g: &Graph, sub: &[usize], counts: &mut [Vec<u64>]) {
    debug_assert_eq!(sub.len(), 5);
    let mut code = 0u16;
    for i in 0..5 {
        for j in (i + 1)..5 {
            if g.has_edge(sub[i], sub[j]) {
                code |= pair_bit(i, j);
            }
        }
    }
    let t = tables();
    let (canonical, perm) = t.canon[&code];
    let orbit_of = &t.orbits[&canonical];
    for (pos, &node) in sub.iter().enumerate() {
        // Position `pos` in the raw code maps to `perm[pos]` in the
        // canonical graphlet.
        counts[node][orbit_of[perm[pos]]] += 1;
    }
}

/// Number of distinct connected 5-vertex graphlet classes (literature: 21).
pub fn graphlet5_class_count() -> usize {
    tables().graphlet_classes
}

/// Number of 5-node orbits (literature: 58).
pub fn orbit5_count() -> usize {
    tables().orbit_edges.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_constants_hold() {
        // The canonical derivation must reproduce the published counts:
        // 21 connected graphs on 5 vertices, 58 automorphism orbits.
        assert_eq!(graphlet5_class_count(), 21);
        assert_eq!(orbit5_count(), 58);
        assert_eq!(ORBIT_COUNT + orbit5_count(), ORBIT_COUNT_5);
    }

    #[test]
    fn five_cycle_is_a_single_orbit() {
        // C5 is vertex-transitive: every node gets the same orbit exactly
        // once, and no other 5-node orbit fires.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let gd = graphlet_degrees_5(&g);
        let five_node_totals: Vec<u64> =
            (ORBIT_COUNT..ORBIT_COUNT_5).map(|o| gd.counts.iter().map(|c| c[o]).sum()).collect();
        let firing: Vec<usize> =
            five_node_totals.iter().enumerate().filter(|(_, &v)| v > 0).map(|(i, _)| i).collect();
        assert_eq!(firing.len(), 1, "exactly one 5-node orbit fires for C5");
        assert_eq!(five_node_totals[firing[0]], 5, "each C5 node counted once");
        for v in 0..5 {
            assert_eq!(gd.counts[v][ORBIT_COUNT + firing[0]], 1);
        }
    }

    #[test]
    fn five_path_has_three_orbits() {
        // P5's automorphism group is the reflection: orbits are
        // {ends}, {second/fourth}, {middle}.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let gd = graphlet_degrees_5(&g);
        let mut firing = std::collections::HashMap::new();
        for v in 0..5 {
            for o in ORBIT_COUNT..ORBIT_COUNT_5 {
                if gd.counts[v][o] > 0 {
                    *firing.entry(o).or_insert(0u64) += gd.counts[v][o];
                }
            }
        }
        assert_eq!(firing.len(), 3, "P5 has three node orbits: {firing:?}");
        let mut totals: Vec<u64> = firing.values().copied().collect();
        totals.sort_unstable();
        assert_eq!(totals, vec![1, 2, 2], "middle ×1, inner pair ×2, ends ×2");
    }

    #[test]
    fn five_clique_is_a_single_orbit() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges);
        let gd = graphlet_degrees_5(&g);
        for v in 0..5 {
            let five_total: u64 = (ORBIT_COUNT..ORBIT_COUNT_5).map(|o| gd.counts[v][o]).sum();
            assert_eq!(five_total, 1, "K5 node {v}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(555);
        for trial in 0..4 {
            let n = rng.random_range(6..10);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0.0..1.0) < 0.4 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let fast = graphlet_degrees_5(&g);
            let brute = brute_force_5(&g);
            assert_eq!(fast, brute, "trial {trial} (n={n}, m={})", edges.len());
        }
    }

    /// Brute force: classify every connected 5-subset directly.
    fn brute_force_5(g: &Graph) -> GraphletDegrees5 {
        let n = g.node_count();
        let base = crate::graphlets::graphlet_degrees(g);
        let mut counts: Vec<Vec<u64>> = base
            .counts
            .iter()
            .map(|small| {
                let mut row = vec![0u64; ORBIT_COUNT_5];
                row[..ORBIT_COUNT].copy_from_slice(&small[..]);
                row
            })
            .collect();
        let connected = |nodes: &[usize]| {
            let mut seen = vec![nodes[0]];
            let mut stack = vec![nodes[0]];
            while let Some(u) = stack.pop() {
                for &w in nodes {
                    if !seen.contains(&w) && g.has_edge(u, w) {
                        seen.push(w);
                        stack.push(w);
                    }
                }
            }
            seen.len() == nodes.len()
        };
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        for e in (d + 1)..n {
                            let sub = [a, b, c, d, e];
                            if connected(&sub) {
                                classify5(g, &sub, &mut counts);
                            }
                        }
                    }
                }
            }
        }
        GraphletDegrees5 { counts }
    }

    #[test]
    fn similarity_is_reflexive_symmetric_bounded() {
        let g = Graph::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (0, 3), (1, 4)],
        );
        let gd = graphlet_degrees_5(&g);
        for u in 0..7 {
            assert!((gd.similarity(u, &gd, u) - 1.0).abs() < 1e-12);
            for v in 0..7 {
                let s = gd.similarity(u, &gd, v);
                assert!((0.0..=1.0).contains(&s));
                assert!((s - gd.similarity(v, &gd, u)).abs() < 1e-12);
            }
        }
    }
}
