//! Stable content digests for graphs — the identity half of a cache key.
//!
//! The serving layer persists embeddings and similarity factors keyed by
//! `(graph content digest, algorithm, params)`; a digest is only a
//! trustworthy key component if it is a pure function of the graph's
//! *structure under its labeling*, never of how the graph was assembled.
//! [`Graph`] stores canonical CSR (sorted, deduplicated neighbor lists), so
//! hashing that canonical form gives exactly the invariances a cache needs:
//!
//! * **edge-insertion order** — `Graph::from_edges` canonicalizes, so any
//!   permutation (or duplication) of the edge list digests identically;
//! * **thread count** — the digest is computed by a single sequential scan;
//!   nothing about it depends on the parallel layer;
//! * **relabeling and noise change the digest** — a permuted or perturbed
//!   copy is a *different* alignment input and must never alias a cache
//!   entry (128-bit FNV-1a makes accidental collisions negligible).
//!
//! The digest is versioned via a domain-separation tag: if the byte layout
//! ever changes, bump the tag so stale on-disk cache entries miss instead of
//! aliasing.

use crate::Graph;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Domain-separation tag hashed before any graph bytes; bump on any change
/// to the hashed byte layout.
const DIGEST_VERSION: &[u8] = b"graphalign-content-digest-v1";

/// A 128-bit content digest of a graph's canonical CSR form.
///
/// Displayed (and parsed) as 32 lowercase hex characters — the stable
/// identifier the serving layer uses for uploaded graphs and on-disk cache
/// file names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentDigest(pub u128);

impl ContentDigest {
    /// The 32-character lowercase hex form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-character hex form back. Returns `None` on any other
    /// length or non-hex input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentDigest)
    }
}

impl std::fmt::Display for ContentDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One FNV-1a round over a byte slice.
fn fnv(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digests a graph's canonical CSR form: version tag, node count, then each
/// node's degree and sorted neighbor list as little-endian `u64`.
pub fn content_digest(g: &Graph) -> ContentDigest {
    let mut h = fnv(FNV_OFFSET, DIGEST_VERSION);
    h = fnv(h, &(g.node_count() as u64).to_le_bytes());
    for u in 0..g.node_count() {
        h = fnv(h, &(g.degree(u) as u64).to_le_bytes());
        for &v in g.neighbors(u) {
            h = fnv(h, &(v as u64).to_le_bytes());
        }
    }
    ContentDigest(h)
}

impl Graph {
    /// The stable [`ContentDigest`] of this graph; see [`content_digest`].
    pub fn content_digest(&self) -> ContentDigest {
        content_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_a_pure_function_of_the_canonical_form() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edges(4, &[(2, 3), (2, 1), (1, 0), (0, 1)]);
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn distinct_structures_get_distinct_digests() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_ne!(path.content_digest(), tri.content_digest());
        // Isolated trailing nodes are part of the content.
        let padded = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_ne!(path.content_digest(), padded.content_digest());
    }

    #[test]
    fn hex_round_trips() {
        let d = Graph::from_edges(5, &[(0, 4), (1, 3)]).content_digest();
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ContentDigest::from_hex(&hex), Some(d));
        assert_eq!(ContentDigest::from_hex("xyz"), None);
        assert_eq!(ContentDigest::from_hex(&hex[..31]), None);
        assert_eq!(format!("{d}"), hex);
    }

    #[test]
    fn empty_graph_digest_is_stable() {
        let a = Graph::from_edges(0, &[]).content_digest();
        let b = Graph::from_edges(0, &[]).content_digest();
        assert_eq!(a, b);
        assert_ne!(a, Graph::from_edges(1, &[]).content_digest());
    }
}
