//! Exact graphlet-degree signatures for GRAAL.
//!
//! GRAAL (paper §3.2) matches nodes by a *vector signature* counting, for
//! each automorphism orbit of small connected graphs ("graphlets"), how often
//! the node touches that orbit. We count the 15 orbits of the 9 connected
//! graphlets on 2–4 nodes **exactly**, by enumerating every connected induced
//! subgraph on ≤ 4 nodes once with the ESU algorithm (Wernicke, FANMOD) and
//! classifying it by degree sequence. (Production GRAAL extends the
//! dictionary to 5-node graphlets — 73 orbits — at `O(n⁵)` preprocessing
//! cost; DESIGN.md §3 documents why the 4-node dictionary preserves GRAAL's
//! behaviour in this study.)
//!
//! Orbit numbering follows Pržulj's standard scheme:
//!
//! | graphlet | orbits |
//! |---|---|
//! | edge | 0 (both ends) |
//! | path P₃ | 1 (ends), 2 (middle) |
//! | triangle | 3 |
//! | path P₄ | 4 (ends), 5 (middles) |
//! | star S₃ (claw) | 6 (leaves), 7 (center) |
//! | cycle C₄ | 8 |
//! | paw (tailed triangle) | 9 (tail), 10 (far triangle nodes), 11 (attachment) |
//! | diamond | 12 (degree-2), 13 (degree-3) |
//! | clique K₄ | 14 |

use crate::graph::Graph;
use graphalign_par::telemetry;

/// Number of node orbits over graphlets with 2–4 nodes.
pub const ORBIT_COUNT: usize = 15;

/// Orbit dependency counts `o_i` (how many orbits orbit `i` "affects"),
/// from Milenković & Pržulj's GDV-similarity weighting, restricted to
/// orbits 0–14. Weight of orbit `i` is `1 − log(o_i)/log(ORBIT_COUNT)`.
pub const ORBIT_DEPENDENCIES: [u32; ORBIT_COUNT] = [1, 2, 2, 2, 3, 4, 3, 3, 4, 3, 4, 4, 4, 4, 3];

/// Per-node graphlet-degree vectors: `counts[v][o]` is the number of times
/// node `v` touches orbit `o`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphletDegrees {
    /// `counts[v]` is the 15-orbit signature of node `v`.
    pub counts: Vec<[u64; ORBIT_COUNT]>,
}

impl GraphletDegrees {
    /// GDV signature similarity `S(u, v) ∈ [0, 1]` between a node of this
    /// graph and a node of `other`, per the GRAAL / Milenković–Pržulj
    /// formula: a weighted mean of per-orbit log-scaled distances.
    pub fn similarity(&self, u: usize, other: &GraphletDegrees, v: usize) -> f64 {
        let cu = &self.counts[u];
        let cv = &other.counts[v];
        let mut total_weight = 0.0;
        let mut total_dist = 0.0;
        let log_orbits = (ORBIT_COUNT as f64).ln();
        for i in 0..ORBIT_COUNT {
            let w = 1.0 - (ORBIT_DEPENDENCIES[i] as f64).ln() / log_orbits;
            let a = cu[i] as f64;
            let b = cv[i] as f64;
            let d = w * ((a + 1.0).ln() - (b + 1.0).ln()).abs() / (a.max(b) + 2.0).ln();
            total_dist += d;
            total_weight += w;
        }
        1.0 - total_dist / total_weight
    }
}

/// Counts all 15 graphlet orbits for every node, exactly.
///
/// Runs ESU over subgraph sizes 2–4; the cost is proportional to the number
/// of connected induced subgraphs on ≤ 4 nodes (roughly `O(n · Δ³)` on
/// graphs of maximum degree Δ), which is what makes GRAAL the preprocessing-
/// heavy method of the study.
///
/// The enumeration is *bit-parallel*: per root, the candidate universe
/// (nodes `> root` within three hops through `> root` nodes — exactly the
/// nodes ESU can ever reach from that root) is given local indices, the
/// expandable candidates get bitset adjacency rows over that universe, and
/// the ESU frontier/coverage sets become word-wide `OR`/`ANDNOT` operations
/// instead of per-neighbor `contains`/`has_edge` scans. All scratch is
/// reused from root to root (no per-subgraph `Vec` allocations); each
/// reuse that avoided fresh heap allocations is counted through
/// [`telemetry::count_alloc_saved`]. Orbit counters are exact `u64`s, so
/// the enumeration order is irrelevant and per-worker tables sum to a
/// result that is a pure function of the graph at any thread count.
pub fn graphlet_degrees(g: &Graph) -> GraphletDegrees {
    let n = g.node_count();
    // ESU over roots in round-robin strides. The per-root cost estimate
    // (average degree cubed) steers the parallel/inline decision.
    let avg_deg = if n > 0 { (2 * g.edge_count()).div_ceil(n) } else { 0 };
    let cost = avg_deg.max(1).saturating_pow(3);
    let partials = graphalign_par::fold_strided(n, cost, |start, step| {
        let mut counts = vec![[0u64; ORBIT_COUNT]; n];
        let mut scratch = EsuScratch::new(n);
        let mut v = start;
        while v < n {
            // Orbit 0 is the degree; handle it directly.
            counts[v][0] = g.degree(v) as u64;
            enumerate_root(g, v, &mut scratch, &mut counts);
            v += step;
        }
        counts
    });
    let mut parts = partials.into_iter();
    let mut counts = parts.next().unwrap_or_else(|| vec![[0u64; ORBIT_COUNT]; n]);
    for part in parts {
        for (row, prow) in counts.iter_mut().zip(part) {
            for (c, p) in row.iter_mut().zip(prow) {
                *c += p;
            }
        }
    }
    GraphletDegrees { counts }
}

/// Per-worker scratch for the bit-parallel ESU enumeration. Every buffer is
/// reused across roots (growing monotonically), replacing the per-subgraph
/// `Vec` filter/collect allocations of the former scalar enumerator.
struct EsuScratch {
    /// Global → local candidate index, valid where `stamp[v] == epoch`.
    local_of: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// This root's candidate universe as global ids, in BFS discovery order
    /// (ascending local index). `depth[l]` is the BFS depth (1..=3).
    locals: Vec<u32>,
    depth: Vec<u8>,
    /// Bitset-row slot of each local (`u32::MAX` for depth-3 locals, which
    /// ESU never expands), and the flat row storage: `words` u64 per slot.
    row_slot: Vec<u32>,
    rows: Vec<u64>,
    /// The root's own adjacency row over the universe.
    root_row: Vec<u64>,
    /// Frontier and coverage bitsets for the three extension levels.
    ext1: Vec<u64>,
    ext2: Vec<u64>,
    ext3: Vec<u64>,
    cov2: Vec<u64>,
}

impl EsuScratch {
    fn new(n: usize) -> Self {
        Self {
            local_of: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            locals: Vec::new(),
            depth: Vec::new(),
            row_slot: Vec::new(),
            rows: Vec::new(),
            root_row: Vec::new(),
            ext1: Vec::new(),
            ext2: Vec::new(),
            ext3: Vec::new(),
            cov2: Vec::new(),
        }
    }
}

#[inline]
fn test_bit(row: &[u64], i: usize) -> bool {
    row[i >> 6] >> (i & 63) & 1 != 0
}

/// Enumerates every connected induced subgraph on 3–4 nodes whose minimum
/// node is `root`, via ESU with bitset frontiers, and tallies its orbits.
fn enumerate_root(g: &Graph, root: usize, s: &mut EsuScratch, counts: &mut [[u64; ORBIT_COUNT]]) {
    // ---- Universe: BFS to depth 3 from `root`, through `> root` nodes
    // only. ESU candidate chains run inside the current subgraph, whose
    // non-root members are all `> root`, so this is exactly the reachable
    // candidate set.
    s.epoch = s.epoch.wrapping_add(1);
    if s.epoch == 0 {
        s.stamp.fill(0);
        s.epoch = 1;
    }
    s.locals.clear();
    s.depth.clear();
    for &u in g.neighbors(root) {
        if u > root {
            s.stamp[u] = s.epoch;
            s.local_of[u] = s.locals.len() as u32;
            s.locals.push(u as u32);
            s.depth.push(1);
        }
    }
    if s.locals.is_empty() {
        return;
    }
    for d in 2..=3u8 {
        let frontier = 0..s.locals.len();
        for li in frontier {
            if s.depth[li] != d - 1 {
                continue;
            }
            for &u in g.neighbors(s.locals[li] as usize) {
                if u > root && s.stamp[u] != s.epoch {
                    s.stamp[u] = s.epoch;
                    s.local_of[u] = s.locals.len() as u32;
                    s.locals.push(u as u32);
                    s.depth.push(d);
                }
            }
        }
    }
    let m = s.locals.len();
    let words = m.div_ceil(64);

    // ---- Adjacency rows for the root and every depth ≤ 2 local (the only
    // nodes ESU expands; depth-3 members only ever need *their* bit tested
    // in an expandable node's row). Count the scratch reuse before resizing:
    // a root whose buffers all fit in existing capacity allocates nothing.
    let slots = s.depth.iter().filter(|&&d| d <= 2).count();
    let words_needed = (slots + 1 + 4) * words;
    if s.rows.capacity() >= words_needed.max(s.rows.len()) && s.row_slot.capacity() >= m {
        telemetry::count_alloc_saved((words_needed * 8 + m * 4) as u64);
    }
    s.row_slot.clear();
    s.row_slot.resize(m, u32::MAX);
    s.rows.clear();
    s.rows.resize(slots * words, 0);
    let mut next_slot = 0u32;
    for li in 0..m {
        if s.depth[li] > 2 {
            continue;
        }
        s.row_slot[li] = next_slot;
        let row = &mut s.rows[next_slot as usize * words..(next_slot as usize + 1) * words];
        for &u in g.neighbors(s.locals[li] as usize) {
            if u > root {
                debug_assert_eq!(s.stamp[u], s.epoch, "neighbor of a depth ≤ 2 local is in range");
                let b = s.local_of[u] as usize;
                row[b >> 6] |= 1 << (b & 63);
            }
        }
        next_slot += 1;
    }
    s.root_row.clear();
    s.root_row.resize(words, 0);
    for &u in g.neighbors(root) {
        if u > root {
            let b = s.local_of[u] as usize;
            s.root_row[b >> 6] |= 1 << (b & 63);
        }
    }

    // ---- ESU. Level-1 frontier is N(root); the level-1 coverage set
    // (sub ∪ N(sub) for sub = {root}) is N(root) itself, i.e. `root_row`.
    s.ext1.clear();
    s.ext1.extend_from_slice(&s.root_row);
    s.ext2.resize(words, 0);
    s.ext3.resize(words, 0);
    s.cov2.resize(words, 0);
    for w in 0..words {
        while s.ext1[w] != 0 {
            let a = (w << 6) + s.ext1[w].trailing_zeros() as usize;
            // Clear a's bit first: ext1 now holds exactly the not-yet-
            // processed candidates, which is what the child inherits.
            s.ext1[w] &= s.ext1[w] - 1;
            let ra = s.row_slot[a] as usize;
            let row_a = &s.rows[ra * words..(ra + 1) * words];
            // sub = {root, a}: child frontier adds a's exclusive neighbors
            // (not in coverage), coverage grows by {a} ∪ N(a).
            for (k, &raw) in row_a.iter().enumerate() {
                s.ext2[k] = s.ext1[k] | (raw & !s.root_row[k]);
                s.cov2[k] = s.root_row[k] | raw;
            }
            s.cov2[a >> 6] |= 1 << (a & 63);
            for w2 in 0..words {
                while s.ext2[w2] != 0 {
                    let b = (w2 << 6) + s.ext2[w2].trailing_zeros() as usize;
                    s.ext2[w2] &= s.ext2[w2] - 1;
                    classify3(root, a, b, s, row_a, counts);
                    let rb = s.row_slot[b] as usize;
                    let row_b = &s.rows[rb * words..(rb + 1) * words];
                    for (k, &rbw) in row_b.iter().enumerate() {
                        s.ext3[k] = s.ext2[k] | (rbw & !s.cov2[k]);
                    }
                    for w3 in 0..words {
                        while s.ext3[w3] != 0 {
                            let c = (w3 << 6) + s.ext3[w3].trailing_zeros() as usize;
                            s.ext3[w3] &= s.ext3[w3] - 1;
                            classify4(root, a, b, c, s, row_a, row_b, counts);
                        }
                    }
                }
            }
        }
    }
}

/// Tallies the orbits of the connected induced subgraph `{root, a, b}`
/// (locals `a`, `b`; `a ∈ N(root)` by construction).
#[inline]
fn classify3(
    root: usize,
    a: usize,
    b: usize,
    s: &EsuScratch,
    row_a: &[u64],
    counts: &mut [[u64; ORBIT_COUNT]],
) {
    let (ga, gb) = (s.locals[a] as usize, s.locals[b] as usize);
    let e_rb = test_bit(&s.root_row, b);
    let e_ab = test_bit(row_a, b);
    if e_rb && e_ab {
        counts[root][3] += 1;
        counts[ga][3] += 1;
        counts[gb][3] += 1;
    } else {
        // Path P₃: the middle is the common neighbor of the other two.
        let mid = if e_rb { root } else { ga };
        for v in [root, ga, gb] {
            counts[v][if v == mid { 2 } else { 1 }] += 1;
        }
    }
}

/// Tallies the orbits of the connected induced subgraph `{root, a, b, c}`.
/// Every node pair has at least one endpoint with a bitset row (`root`,
/// `a`, `b`), so the six edge tests never need the possibly-depth-3 `c`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn classify4(
    root: usize,
    a: usize,
    b: usize,
    c: usize,
    s: &EsuScratch,
    row_a: &[u64],
    row_b: &[u64],
    counts: &mut [[u64; ORBIT_COUNT]],
) {
    let (ga, gb, gc) = (s.locals[a] as usize, s.locals[b] as usize, s.locals[c] as usize);
    let e_rb = test_bit(&s.root_row, b) as usize;
    let e_rc = test_bit(&s.root_row, c) as usize;
    let e_ab = test_bit(row_a, b) as usize;
    let e_ac = test_bit(row_a, c) as usize;
    let e_bc = test_bit(row_b, c) as usize;
    let edges = 1 + e_rb + e_rc + e_ab + e_ac + e_bc;
    let deg = [1 + e_rb + e_rc, 1 + e_ab + e_ac, e_rb + e_ab + e_bc, e_rc + e_ac + e_bc];
    let sub = [root, ga, gb, gc];
    match edges {
        3 => {
            if deg.contains(&3) {
                // Star: center degree 3, leaves orbit 6.
                for i in 0..4 {
                    counts[sub[i]][if deg[i] == 3 { 7 } else { 6 }] += 1;
                }
            } else {
                // Path P₄: ends degree 1 → orbit 4, middles → orbit 5.
                for i in 0..4 {
                    counts[sub[i]][if deg[i] == 1 { 4 } else { 5 }] += 1;
                }
            }
        }
        4 => {
            if deg.iter().all(|&d| d == 2) {
                for &v in &sub {
                    counts[v][8] += 1;
                }
            } else {
                // Paw: degree sequence (1, 2, 2, 3).
                for i in 0..4 {
                    let orbit = match deg[i] {
                        1 => 9,
                        2 => 10,
                        3 => 11,
                        _ => unreachable!("paw degrees are 1, 2, 3"),
                    };
                    counts[sub[i]][orbit] += 1;
                }
            }
        }
        5 => {
            // Diamond: degree sequence (2, 2, 3, 3).
            for i in 0..4 {
                counts[sub[i]][if deg[i] == 2 { 12 } else { 13 }] += 1;
            }
        }
        6 => {
            for &v in &sub {
                counts[v][14] += 1;
            }
        }
        _ => unreachable!("connected 4-node subgraphs have 3..=6 edges"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original scalar classifier over global node ids, retained as the
    /// reference implementation for the brute-force cross-check.
    fn classify(g: &Graph, sub: &[usize], counts: &mut [[u64; ORBIT_COUNT]]) {
        let k = sub.len();
        let mut deg = [0usize; 4];
        let mut edges = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if g.has_edge(sub[i], sub[j]) {
                    deg[i] += 1;
                    deg[j] += 1;
                    edges += 1;
                }
            }
        }
        if k == 3 {
            match edges {
                2 => {
                    for i in 0..3 {
                        counts[sub[i]][if deg[i] == 2 { 2 } else { 1 }] += 1;
                    }
                }
                3 => {
                    for &v in sub {
                        counts[v][3] += 1;
                    }
                }
                _ => unreachable!("only connected subgraphs are classified"),
            }
            return;
        }
        debug_assert_eq!(k, 4);
        match edges {
            3 => {
                if deg.contains(&3) {
                    for i in 0..4 {
                        counts[sub[i]][if deg[i] == 3 { 7 } else { 6 }] += 1;
                    }
                } else {
                    for i in 0..4 {
                        counts[sub[i]][if deg[i] == 1 { 4 } else { 5 }] += 1;
                    }
                }
            }
            4 => {
                if deg.iter().all(|&d| d == 2) {
                    for &v in sub {
                        counts[v][8] += 1;
                    }
                } else {
                    for i in 0..4 {
                        let orbit = match deg[i] {
                            1 => 9,
                            2 => 10,
                            3 => 11,
                            _ => unreachable!("paw degrees are 1, 2, 3"),
                        };
                        counts[sub[i]][orbit] += 1;
                    }
                }
            }
            5 => {
                for i in 0..4 {
                    counts[sub[i]][if deg[i] == 2 { 12 } else { 13 }] += 1;
                }
            }
            6 => {
                for &v in sub {
                    counts[v][14] += 1;
                }
            }
            _ => unreachable!("connected 4-node subgraphs have 3..=6 edges"),
        }
    }

    /// Brute-force orbit counting over all 3- and 4-subsets, used as the
    /// reference implementation in tests.
    fn brute_force(g: &Graph) -> GraphletDegrees {
        let n = g.node_count();
        let mut counts = vec![[0u64; ORBIT_COUNT]; n];
        for (v, row) in counts.iter_mut().enumerate() {
            row[0] = g.degree(v) as u64;
        }
        let connected = |nodes: &[usize]| {
            // BFS within the induced subgraph.
            let mut seen = vec![nodes[0]];
            let mut stack = vec![nodes[0]];
            while let Some(u) = stack.pop() {
                for &w in nodes {
                    if !seen.contains(&w) && g.has_edge(u, w) {
                        seen.push(w);
                        stack.push(w);
                    }
                }
            }
            seen.len() == nodes.len()
        };
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let sub = [a, b, c];
                    if connected(&sub) {
                        classify(g, &sub, &mut counts);
                    }
                    for d in (c + 1)..n {
                        let sub = [a, b, c, d];
                        if connected(&sub) {
                            classify(g, &sub, &mut counts);
                        }
                    }
                }
            }
        }
        GraphletDegrees { counts }
    }

    #[test]
    fn triangle_orbits() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let gd = graphlet_degrees(&g);
        for v in 0..3 {
            assert_eq!(gd.counts[v][0], 2, "degree");
            assert_eq!(gd.counts[v][3], 1, "triangle orbit");
            assert_eq!(gd.counts[v][1], 0);
            assert_eq!(gd.counts[v][2], 0);
        }
    }

    #[test]
    fn path4_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let gd = graphlet_degrees(&g);
        // Ends of the P4.
        assert_eq!(gd.counts[0][4], 1);
        assert_eq!(gd.counts[3][4], 1);
        // Middles.
        assert_eq!(gd.counts[1][5], 1);
        assert_eq!(gd.counts[2][5], 1);
        // P3 sub-paths: (0,1,2) and (1,2,3).
        assert_eq!(gd.counts[0][1], 1);
        assert_eq!(gd.counts[1][2], 1);
        assert_eq!(gd.counts[1][1], 1);
    }

    #[test]
    fn star_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let gd = graphlet_degrees(&g);
        assert_eq!(gd.counts[0][7], 1, "center");
        for v in 1..4 {
            assert_eq!(gd.counts[v][6], 1, "leaf {v}");
        }
    }

    #[test]
    fn cycle4_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let gd = graphlet_degrees(&g);
        for v in 0..4 {
            assert_eq!(gd.counts[v][8], 1, "C4 orbit of node {v}");
            assert_eq!(gd.counts[v][4], 0, "no induced P4 in C4");
        }
    }

    #[test]
    fn paw_orbits() {
        // Triangle 0-1-2 with tail 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let gd = graphlet_degrees(&g);
        assert_eq!(gd.counts[3][9], 1, "tail");
        assert_eq!(gd.counts[0][10], 1);
        assert_eq!(gd.counts[1][10], 1);
        assert_eq!(gd.counts[2][11], 1, "attachment");
    }

    #[test]
    fn diamond_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let gd = graphlet_degrees(&g);
        assert_eq!(gd.counts[1][12], 1);
        assert_eq!(gd.counts[3][12], 1);
        assert_eq!(gd.counts[0][13], 1);
        assert_eq!(gd.counts[2][13], 1);
    }

    #[test]
    fn clique4_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let gd = graphlet_degrees(&g);
        for v in 0..4 {
            assert_eq!(gd.counts[v][14], 1);
            assert_eq!(gd.counts[v][3], 3, "each K4 node is in 3 triangles");
            assert_eq!(gd.counts[v][12], 0, "diamonds are not induced in K4");
            assert_eq!(gd.counts[v][13], 0, "diamonds are not induced in K4");
        }
    }

    #[test]
    fn clique4_diamond_is_not_induced() {
        // In K4 no induced diamond exists: check orbit 12/13 come only from
        // the 4 actual diamonds... wait, K4 contains no induced diamond at
        // all. Orbits 12/13 inside K4 must come from 4-node subsets only,
        // of which there is one (the clique itself) — so they must be 0.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let bf = brute_force(&g);
        let fast = graphlet_degrees(&g);
        assert_eq!(bf, fast);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2023);
        for trial in 0..8 {
            let n = rng.random_range(5..12);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0.0..1.0) < 0.35 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            assert_eq!(
                graphlet_degrees(&g),
                brute_force(&g),
                "mismatch on trial {trial} (n={n}, m={})",
                edges.len()
            );
        }
    }

    #[test]
    fn similarity_is_reflexive_and_bounded() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let gd = graphlet_degrees(&g);
        for u in 0..5 {
            assert!((gd.similarity(u, &gd, u) - 1.0).abs() < 1e-12);
            for v in 0..5 {
                let s = gd.similarity(u, &gd, v);
                assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
                let s_rev = gd.similarity(v, &gd, u);
                assert!((s - s_rev).abs() < 1e-12, "similarity must be symmetric");
            }
        }
    }

    #[test]
    fn similarity_distinguishes_hub_from_leaf() {
        // Star: center signature is very different from leaf signatures.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let gd = graphlet_degrees(&g);
        let leaf_leaf = gd.similarity(1, &gd, 2);
        let center_leaf = gd.similarity(0, &gd, 1);
        assert!(leaf_leaf > center_leaf, "{leaf_leaf} vs {center_leaf}");
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let gd = graphlet_degrees(&Graph::from_edges(0, &[]));
        assert!(gd.counts.is_empty());
        let gd = graphlet_degrees(&Graph::from_edges(2, &[(0, 1)]));
        assert_eq!(gd.counts[0][0], 1);
        assert_eq!(gd.counts[0][1..].iter().sum::<u64>(), 0);
    }
}
