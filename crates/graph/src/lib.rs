//! Undirected, unattributed graphs for the `graphalign` workspace.
//!
//! The EDBT 2023 study restricts itself to *unrestricted* graph alignment:
//! the only input is the pair of undirected, unattributed graphs themselves.
//! This crate provides that input type and the graph-level machinery the
//! alignment algorithms consume:
//!
//! * [`Graph`] — immutable CSR-backed undirected graph ([`graph`]);
//! * [`builder::GraphBuilder`] — edge ingestion with dedup/self-loop policy;
//! * [`traversal`] — BFS, connected components, largest-component extraction;
//! * [`spectral`] — adjacency/Laplacian operators bridging to
//!   `graphalign-linalg`;
//! * [`graphlets`] — exact graphlet-degree signatures (15 orbits, graphlets
//!   on ≤ 4 nodes) for GRAAL;
//! * [`graphlets5`] — the full 73-orbit dictionary (graphlets on ≤ 5
//!   nodes), with orbit tables derived from first principles;
//! * [`permutation`] — node permutations and the ground-truth bookkeeping the
//!   evaluation protocol needs;
//! * [`io`] — whitespace-separated edge-list parsing/serialization.

pub mod builder;
pub mod digest;
pub mod graph;
pub mod graphlets;
pub mod graphlets5;
pub mod io;
pub mod permutation;
pub mod spectral;
pub mod traversal;

pub use builder::GraphBuilder;
pub use digest::ContentDigest;
pub use graph::Graph;
pub use permutation::Permutation;
