//! Node permutations and ground-truth bookkeeping.
//!
//! The evaluation protocol of the paper permutes the target graph's node ids
//! before aligning (so algorithms cannot exploit id correlations) and keeps
//! the permutation as the ground-truth alignment against which Accuracy is
//! scored.

use crate::graph::Graph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A bijection on `0..n`, stored as `forward[i] = σ(i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Self { forward: (0..n).collect() }
    }

    /// A uniformly random permutation from the given seed (Fisher–Yates).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut forward: Vec<usize> = (0..n).collect();
        forward.shuffle(&mut rng);
        Self { forward }
    }

    /// Wraps an explicit mapping.
    ///
    /// # Panics
    /// Panics if `forward` is not a bijection on `0..n`.
    pub fn from_vec(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            assert!(v < n, "permutation image {v} out of range 0..{n}");
            assert!(!seen[v], "permutation repeats image {v}");
            seen[v] = true;
        }
        Self { forward }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is on the empty set.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// `σ(i)`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// The underlying `forward` vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.forward
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.forward.len()];
        for (i, &v) in self.forward.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { forward: inv }
    }

    /// Relabels the nodes of `g`: node `v` becomes `σ(v)`.
    ///
    /// # Panics
    /// Panics if the sizes do not match.
    pub fn apply_to_graph(&self, g: &Graph) -> Graph {
        assert_eq!(g.node_count(), self.len(), "permutation size mismatch");
        let edges: Vec<(usize, usize)> =
            g.edges().map(|(u, v)| (self.apply(u), self.apply(v))).collect();
        Graph::from_edges(g.node_count(), &edges)
    }
}

/// A source graph, its permuted-and-perturbed target, and the ground-truth
/// mapping from source node ids to target node ids.
///
/// This is the unit the evaluation pipeline passes around: algorithms see
/// `(source, target)` and must recover `ground_truth`.
#[derive(Debug, Clone)]
pub struct AlignmentInstance {
    /// Source graph `G_A`.
    pub source: Graph,
    /// Target graph `G_B` (typically a perturbed, permuted copy of `G_A`).
    pub target: Graph,
    /// `ground_truth[u]` is the target node corresponding to source node `u`.
    pub ground_truth: Vec<usize>,
}

impl AlignmentInstance {
    /// Builds the canonical benchmark instance: `target` is `source` with
    /// node ids shuffled by a random permutation, and the ground truth is
    /// that permutation. (Noise models further perturb `target` *after*
    /// this step; see `graphalign-noise`.)
    pub fn permuted(source: Graph, seed: u64) -> Self {
        let perm = Permutation::random(source.node_count(), seed);
        let target = perm.apply_to_graph(&source);
        let ground_truth = perm.as_slice().to_vec();
        Self { source, target, ground_truth }
    }

    /// Builds a self-alignment instance (target = source, identity truth).
    pub fn identity(source: Graph) -> Self {
        let target = source.clone();
        let ground_truth = (0..source.node_count()).collect();
        Self { source, target, ground_truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let p = Permutation::identity(4);
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(p.apply_to_graph(&g), g);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::random(20, 99);
        let inv = p.inverse();
        for i in 0..20 {
            assert_eq!(inv.apply(p.apply(i)), i);
            assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    #[test]
    fn random_permutation_is_deterministic_per_seed() {
        assert_eq!(Permutation::random(10, 7), Permutation::random(10, 7));
        assert_ne!(Permutation::random(100, 7), Permutation::random(100, 8));
    }

    #[test]
    fn permuted_graph_is_isomorphic() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = Permutation::random(5, 3);
        let h = p.apply_to_graph(&g);
        assert_eq!(h.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(h.has_edge(p.apply(u), p.apply(v)));
        }
        // Degrees are carried along.
        for v in 0..5 {
            assert_eq!(g.degree(v), h.degree(p.apply(v)));
        }
    }

    #[test]
    fn alignment_instance_ground_truth_is_consistent() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let inst = AlignmentInstance::permuted(g, 42);
        for (u, v) in inst.source.edges() {
            assert!(
                inst.target.has_edge(inst.ground_truth[u], inst.ground_truth[v]),
                "ground truth must map edges to edges (no noise applied)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "repeats image")]
    fn non_bijection_rejected() {
        Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Permutation::from_vec(vec![0, 3]);
    }
}
