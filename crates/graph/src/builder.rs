//! Incremental graph construction.

use crate::graph::Graph;
use std::collections::BTreeSet;

/// An incremental builder for [`Graph`], used by the generators and the noise
/// models, which add and remove edges one at a time while maintaining a
/// queryable edge set.
///
/// Self-loops are silently ignored; duplicate insertions are idempotent.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self { n, edges: BTreeSet::new() }
    }

    /// Creates a builder pre-populated with the edges of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        let mut b = Self::new(g.node_count());
        for e in g.edges() {
            b.add_edge(e.0, e.1);
        }
        b
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Normalizes an endpoint pair to the canonical `(min, max)` key.
    fn key(u: usize, v: usize) -> (usize, usize) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Adds the undirected edge `{u, v}`; returns whether it was new.
    /// Self-loops are ignored (returns `false`).
    ///
    /// # Panics
    /// Panics if an endpoint is out of bounds.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of bounds for n={}", self.n);
        if u == v {
            return false;
        }
        self.edges.insert(Self::key(u, v))
    }

    /// Removes the undirected edge `{u, v}`; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        self.edges.remove(&Self::key(u, v))
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.edges.contains(&Self::key(u, v))
    }

    /// The current edges in canonical `(u < v)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Collects the edges into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges.iter().copied().collect()
    }

    /// Finalizes into an immutable [`Graph`].
    pub fn build(&self) -> Graph {
        Graph::from_edges(self.n, &self.edge_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0), "reversed duplicate must be idempotent");
        assert!(b.has_edge(1, 0));
        assert_eq!(b.edge_count(), 1);
        assert!(b.remove_edge(0, 1));
        assert!(!b.remove_edge(0, 1));
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(!b.add_edge(1, 1));
        assert!(!b.has_edge(1, 1));
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn build_round_trips_through_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = GraphBuilder::from_graph(&g);
        assert_eq!(b.build(), g);
    }

    #[test]
    fn edges_in_canonical_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 2);
        b.add_edge(1, 0);
        assert_eq!(b.edge_vec(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        GraphBuilder::new(1).add_edge(0, 1);
    }
}
