//! Spectral operators: normalized adjacency and Laplacian matrices.
//!
//! GRASP builds on the eigenvectors of the normalized Laplacian
//! `L = I − D^{−1/2} A D^{−1/2}` (paper §3.8); IsoRank and NSD iterate the
//! degree-normalized adjacency `D^{−1} A`; CONE factorizes a proximity
//! polynomial in the normalized adjacency. All of those operators are
//! assembled here as CSR matrices over `graphalign-linalg`.

use crate::graph::Graph;
use graphalign_linalg::CsrMatrix;

/// Degrees as `f64` (convenience for the normalizations below).
pub fn degree_vector(g: &Graph) -> Vec<f64> {
    (0..g.node_count()).map(|v| g.degree(v) as f64).collect()
}

/// Row-stochastic adjacency `D⁻¹ A` (rows of isolated nodes stay zero).
pub fn row_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let mut a = g.adjacency();
    a.row_normalize();
    a
}

/// Symmetrically normalized adjacency `D^{−1/2} A D^{−1/2}`.
pub fn sym_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let mut a = g.adjacency();
    let inv_sqrt: Vec<f64> =
        degree_vector(g).into_iter().map(|d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    a.scale_rows(&inv_sqrt);
    a.scale_cols(&inv_sqrt);
    a
}

/// Normalized Laplacian `L = I − D^{−1/2} A D^{−1/2}` as CSR.
///
/// Isolated nodes contribute a diagonal `1` (their row of the normalized
/// adjacency is zero), keeping the spectrum inside `[0, 2]`.
pub fn normalized_laplacian(g: &Graph) -> CsrMatrix {
    let n = g.node_count();
    let a = sym_normalized_adjacency(g);
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(a.nnz() + n);
    for i in 0..n {
        triplets.push((i, i, 1.0));
        for (j, v) in a.row_iter(i) {
            triplets.push((i, j, -v));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Unnormalized (combinatorial) Laplacian `L = D − A` as CSR.
pub fn combinatorial_laplacian(g: &Graph) -> CsrMatrix {
    let n = g.node_count();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for u in 0..n {
        triplets.push((u, u, g.degree(u) as f64));
        for &v in g.neighbors(u) {
            triplets.push((u, v, -1.0));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_linalg::eigen::symmetric_eigen;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let g = path3();
        let a = row_normalized_adjacency(&g);
        for s in a.row_sums() {
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sym_normalized_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let a = sym_normalized_adjacency(&g);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn normalized_laplacian_spectrum_in_0_2_with_zero_mode() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let l = normalized_laplacian(&g).to_dense();
        let e = symmetric_eigen(&l).unwrap();
        assert!(e.values[0].abs() < 1e-10, "connected graph must have λ₀ = 0");
        for &v in &e.values {
            assert!((-1e-10..=2.0 + 1e-10).contains(&v), "eigenvalue {v} outside [0,2]");
        }
    }

    #[test]
    fn laplacian_zero_multiplicity_counts_components() {
        // Two disjoint edges: multiplicity of eigenvalue 0 must be 2.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let l = normalized_laplacian(&g).to_dense();
        let e = symmetric_eigen(&l).unwrap();
        let zeros = e.values.iter().filter(|v| v.abs() < 1e-10).count();
        assert_eq!(zeros, 2);
    }

    #[test]
    fn isolated_node_gets_unit_diagonal() {
        let g = Graph::from_edges(2, &[]);
        let l = normalized_laplacian(&g);
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 1), 1.0);
    }

    #[test]
    fn combinatorial_laplacian_rows_sum_to_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let l = combinatorial_laplacian(&g);
        for s in l.row_sums() {
            assert!(s.abs() < 1e-15);
        }
        assert_eq!(l.get(0, 0), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn degree_vector_matches_graph() {
        let g = path3();
        assert_eq!(degree_vector(&g), vec![1.0, 2.0, 1.0]);
    }
}
