//! The core undirected graph type.

use graphalign_linalg::CsrMatrix;

/// An immutable, undirected, unattributed graph in CSR form.
///
/// Nodes are `0..n`. Neighbor lists are sorted and deduplicated; self-loops
/// are not representable (the [`crate::GraphBuilder`] drops them). Isolated
/// nodes are allowed — several of the paper's real datasets keep nodes
/// outside the largest connected component (Table 2, column ℓ), and the
/// noise models can disconnect nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<usize>,
}

impl Graph {
    /// Builds a graph from a node count and an (unordered, possibly
    /// duplicated) undirected edge list. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
            if u == v {
                continue;
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// Builds a graph directly from pre-assembled CSR parts — the entry point
    /// for the streamed XL construction in `graphalign-datasets`, which never
    /// holds the full edge list (or per-node `Vec`s) resident the way
    /// [`Graph::from_edges`] does.
    ///
    /// The invariants [`Graph::from_edges`] establishes are validated in one
    /// `O(n + m)` pass: `offsets` starts at 0, is monotone, and ends at
    /// `neighbors.len()`; every neighbor list is strictly increasing (sorted,
    /// deduplicated), in bounds, and free of self-loops. Full adjacency
    /// symmetry (`u ∈ N(v) ⟺ v ∈ N(u)`) is additionally verified in debug
    /// builds; release builds check the cheap necessary condition that the
    /// arc count is even.
    ///
    /// # Panics
    /// Panics with a descriptive message when any invariant is violated —
    /// malformed CSR parts are a programmer error, matching the crate's
    /// dimension-mismatch convention.
    pub fn from_csr_parts(offsets: Vec<usize>, neighbors: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "from_csr_parts: offsets must have n+1 entries");
        let n = offsets.len() - 1;
        assert_eq!(offsets[0], 0, "from_csr_parts: offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            neighbors.len(),
            "from_csr_parts: offsets must end at neighbors.len()"
        );
        assert_eq!(neighbors.len() % 2, 0, "from_csr_parts: undirected storage is twice m");
        for v in 0..n {
            assert!(offsets[v] <= offsets[v + 1], "from_csr_parts: offsets must be monotone");
            let list = &neighbors[offsets[v]..offsets[v + 1]];
            for (k, &u) in list.iter().enumerate() {
                assert!(u < n, "from_csr_parts: neighbor {u} out of bounds for n={n}");
                assert!(u != v, "from_csr_parts: self-loop at node {v}");
                if k > 0 {
                    assert!(
                        list[k - 1] < u,
                        "from_csr_parts: neighbor list of {v} not strictly increasing"
                    );
                }
                debug_assert!(
                    neighbors[offsets[u]..offsets[u + 1]].binary_search(&v).is_ok(),
                    "from_csr_parts: arc {v}->{u} has no reverse arc"
                );
            }
        }
        Self { offsets, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|v| self.degree(v)).collect()
    }

    /// Maximum degree (`0` for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (`0.0` for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.node_count() as f64
        }
    }

    /// Binary adjacency matrix as CSR.
    pub fn adjacency(&self) -> CsrMatrix {
        let n = self.node_count();
        let triplets: Vec<(usize, usize, f64)> =
            (0..n).flat_map(|u| self.neighbors(u).iter().map(move |&v| (u, v, 1.0))).collect();
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    /// Number of triangles through each node (each triangle counted once per
    /// corner). Used by the graphlet counter and by dataset statistics.
    pub fn triangles_per_node(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut count = vec![0usize; n];
        for u in 0..n {
            let nu = self.neighbors(u);
            for (i, &v) in nu.iter().enumerate() {
                if v <= u {
                    continue;
                }
                for &w in &nu[i + 1..] {
                    // u < v < w guaranteed by sortedness and the v <= u skip.
                    if self.has_edge(v, w) {
                        count[u] += 1;
                        count[v] += 1;
                        count[w] += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (1, 0)]);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn adjacency_matrix_is_symmetric_binary() {
        let g = triangle();
        let a = g.adjacency();
        assert_eq!(a.nnz(), 6);
        for (u, v) in g.edges() {
            assert_eq!(a.get(u, v), 1.0);
            assert_eq!(a.get(v, u), 1.0);
        }
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn triangle_counting() {
        // Triangle plus a pendant.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.triangles_per_node(), vec![1, 1, 1, 0]);
        // Two triangles sharing the edge (0,1).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        assert_eq!(g.triangles_per_node(), vec![2, 2, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }
}
