//! Breadth-first search and connected components.
//!
//! GRASP's behaviour on graphs that noise has disconnected is a recurring
//! theme of the paper (§6.4), so component analysis is part of the public
//! API, together with the BFS-ring machinery GRAAL's seed-and-extend
//! alignment uses.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(source < n, "bfs source {source} out of bounds");
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes at exactly distance `radius` from `source` (a BFS "sphere"), in
/// ascending node order. GRAAL aligns spheres of equal radius around seeds.
pub fn bfs_ring(g: &Graph, source: usize, radius: usize) -> Vec<usize> {
    bfs_distances(g, source)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d == radius)
        .map(|(v, _)| v)
        .collect()
}

/// A partition of nodes into connected components.
#[derive(Debug, Clone)]
pub struct Components {
    /// `labels[v]` is the component id of node `v` (ids are `0..count`,
    /// assigned in order of discovery by increasing node id).
    pub labels: Vec<usize>,
    /// Number of components.
    pub count: usize,
    /// Component sizes, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Id of the largest component (ties broken by lower id).
    pub fn largest(&self) -> usize {
        let mut best = 0;
        for (i, &s) in self.sizes.iter().enumerate() {
            if s > self.sizes[best] {
                best = i;
            }
        }
        best
    }

    /// Number of nodes outside the largest connected component — the ℓ column
    /// of the paper's Table 2.
    pub fn nodes_outside_largest(&self) -> usize {
        let total: usize = self.sizes.iter().sum();
        total - self.sizes[self.largest()]
    }
}

/// Computes connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        let mut size = 0usize;
        labels[start] = id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = id;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, count: sizes.len(), sizes }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).count == 1
}

/// Extracts the largest connected component as a new graph, returning the
/// mapping `old node id → new node id` for the retained nodes.
pub fn largest_component(g: &Graph) -> (Graph, Vec<Option<usize>>) {
    let comps = connected_components(g);
    if comps.count == 0 {
        return (Graph::from_edges(0, &[]), Vec::new());
    }
    let keep = comps.largest();
    let mut mapping = vec![None; g.node_count()];
    let mut next = 0usize;
    for (v, slot) in mapping.iter_mut().enumerate() {
        if comps.labels[v] == keep {
            *slot = Some(next);
            next += 1;
        }
    }
    let edges: Vec<(usize, usize)> =
        g.edges().filter_map(|(u, v)| Some((mapping[u]?, mapping[v]?))).collect();
    (Graph::from_edges(next, &edges), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(bfs_distances(&g, 0)[2], usize::MAX);
    }

    #[test]
    fn bfs_ring_extracts_spheres() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        assert_eq!(bfs_ring(&g, 0, 0), vec![0]);
        assert_eq!(bfs_ring(&g, 0, 1), vec![1, 2]);
        assert_eq!(bfs_ring(&g, 0, 2), vec![3, 4]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles(); // node 6 is isolated
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes, vec![3, 3, 1]);
        assert_eq!(c.largest(), 0);
        assert_eq!(c.nodes_outside_largest(), 4);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_graph_detected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(is_connected(&g));
        assert!(is_connected(&Graph::from_edges(0, &[])));
        assert!(is_connected(&Graph::from_edges(1, &[])));
    }

    #[test]
    fn largest_component_extraction_renumbers() {
        let g = Graph::from_edges(6, &[(3, 4), (4, 5), (5, 3), (0, 1)]);
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 3);
        assert_eq!(mapping[0], None);
        assert_eq!(mapping[3], Some(0));
        assert_eq!(mapping[5], Some(2));
        // The extracted component is a triangle.
        assert!(lcc.has_edge(0, 1) && lcc.has_edge(1, 2) && lcc.has_edge(0, 2));
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let (lcc, mapping) = largest_component(&Graph::from_edges(0, &[]));
        assert_eq!(lcc.node_count(), 0);
        assert!(mapping.is_empty());
    }
}
