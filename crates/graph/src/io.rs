//! Edge-list parsing and serialization.
//!
//! All of the paper's real datasets (SNAP, KONECT, network-repository) ship
//! as whitespace-separated edge lists, optionally with `#` or `%` comment
//! lines. This module reads that format (remapping arbitrary non-contiguous
//! node ids to `0..n`) so the genuine files drop into the dataset registry
//! unchanged when available, and writes it back for interoperability.

use crate::graph::Graph;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// A data line did not contain two integer node ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected two integer node ids, got {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result of parsing an edge list: the graph plus the mapping from original
/// file ids to the contiguous ids used by [`Graph`].
#[derive(Debug)]
pub struct ParsedGraph {
    /// The parsed graph with nodes relabeled to `0..n` in first-appearance
    /// order.
    pub graph: Graph,
    /// `original_ids[v]` is the id node `v` had in the input file.
    pub original_ids: Vec<u64>,
}

/// Parses a whitespace-separated edge list. Lines starting with `#` or `%`
/// and blank lines are skipped; any additional columns after the first two
/// (e.g. edge weights or timestamps) are ignored.
///
/// # Errors
/// Returns [`IoError::Parse`] on a malformed data line and [`IoError::Io`]
/// on reader failure.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<ParsedGraph, IoError> {
    let mut ids: HashMap<u64, usize> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let intern = |raw: u64, ids: &mut HashMap<u64, usize>, orig: &mut Vec<u64>| -> usize {
        *ids.entry(raw).or_insert_with(|| {
            orig.push(raw);
            orig.len() - 1
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => {
                let u = intern(a, &mut ids, &mut original_ids);
                let v = intern(b, &mut ids, &mut original_ids);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse { line: lineno + 1, content: trimmed.to_string() });
            }
        }
    }
    let n = original_ids.len();
    Ok(ParsedGraph { graph: Graph::from_edges(n, &edges), original_ids })
}

/// Parses an edge list from a string.
///
/// # Errors
/// See [`read_edge_list`].
pub fn parse_edge_list(text: &str) -> Result<ParsedGraph, IoError> {
    read_edge_list(text.as_bytes())
}

/// Writes the graph as a canonical edge list (one `u v` line per edge,
/// `u < v`, lexicographic order).
///
/// # Errors
/// Returns [`IoError::Io`] on writer failure.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), IoError> {
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let p = parse_edge_list("0 1\n1 2\n").unwrap();
        assert_eq!(p.graph.node_count(), 3);
        assert_eq!(p.graph.edge_count(), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# SNAP style\n% KONECT style\n\n10 20\n20 30\n";
        let p = parse_edge_list(text).unwrap();
        assert_eq!(p.graph.node_count(), 3);
        assert_eq!(p.original_ids, vec![10, 20, 30]);
    }

    #[test]
    fn remaps_non_contiguous_ids_in_first_appearance_order() {
        let p = parse_edge_list("1000 5\n5 77\n").unwrap();
        assert_eq!(p.original_ids, vec![1000, 5, 77]);
        assert!(p.graph.has_edge(0, 1));
        assert!(p.graph.has_edge(1, 2));
    }

    #[test]
    fn ignores_extra_columns() {
        let p = parse_edge_list("0 1 0.75 1234567\n").unwrap();
        assert_eq!(p.graph.edge_count(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_edge_list("0 1\nnot an edge\n").unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not an edge");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn single_token_line_is_an_error() {
        assert!(parse_edge_list("42\n").is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let g = Graph::from_edges(4, &[(0, 3), (1, 2), (0, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let p = read_edge_list(&buf[..]).unwrap();
        // Node ids are preserved because they appear in canonical order.
        assert_eq!(p.graph.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            let pu = p.original_ids.iter().position(|&x| x == u as u64).unwrap();
            let pv = p.original_ids.iter().position(|&x| x == v as u64).unwrap();
            assert!(p.graph.has_edge(pu, pv));
        }
    }
}
