//! NSD — Network Similarity Decomposition (Kollias, Mohammadi, Grama 2011),
//! paper §3.3.
//!
//! NSD approximates IsoRank's similarity fixed point by unrolling the power
//! series (Equation 3) and decomposing it into outer products of iterated
//! vectors (Equation 4): with `z⁽ᵏ⁾ = Ãᵏ z` on the source side and
//! `w⁽ᵏ⁾ = B̃ᵏ w` on the target side,
//!
//! ```text
//! X⁽ⁿ⁾ = (1 − α) Σ_{k<n} αᵏ z⁽ᵏ⁾ (w⁽ᵏ⁾)ᵀ + αⁿ z⁽ⁿ⁾ (w⁽ⁿ⁾)ᵀ
//! ```
//!
//! The whole computation is `s · n` sparse matrix–vector products plus a
//! rank-`(n+1)·s` sum of outer products — no `n × n` iteration — which is
//! why NSD is the `O(n²)` fast cousin of IsoRank in Table 1. The component
//! vectors come from the study's degree prior (§6.1): `s = 1` component
//! whose source/target factors are the degree-similarity marginals.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity};

/// NSD with the study's tuned hyperparameters (Table 1: `α = 0.8`, SG native
/// assignment).
#[derive(Debug, Clone)]
pub struct Nsd {
    /// Damping of the power series (`α` in Equation 3).
    pub alpha: f64,
    /// Number of unrolled terms `n`.
    pub iterations: usize,
    /// Use the degree prior (§6.1) for the component vectors; `false` falls
    /// back to uniform vectors.
    pub degree_prior: bool,
}

impl Default for Nsd {
    fn default() -> Self {
        Self { alpha: 0.8, iterations: 20, degree_prior: true }
    }
}

impl Nsd {
    /// Initial component vectors `(z, w)`, normalized to sum 1.
    fn components(&self, source: &Graph, target: &Graph) -> (Vec<f64>, Vec<f64>) {
        let n = source.node_count();
        let m = target.node_count();
        if !self.degree_prior {
            return (vec![1.0 / n as f64; n], vec![1.0 / m as f64; m]);
        }
        // Rank-1 surrogate of the degree-prior matrix: z ∝ deg_A + 1,
        // w ∝ deg_B + 1 (the +1 keeps isolated nodes in play).
        let mut z: Vec<f64> = source.degrees().iter().map(|&d| (d + 1) as f64).collect();
        let mut w: Vec<f64> = target.degrees().iter().map(|&d| (d + 1) as f64).collect();
        let zs: f64 = z.iter().sum();
        let ws: f64 = w.iter().sum();
        z.iter_mut().for_each(|v| *v /= zs);
        w.iter_mut().for_each(|v| *v /= ws);
        (z, w)
    }
}

impl Aligner for Nsd {
    fn name(&self) -> &'static str {
        "NSD"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::SortGreedy
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let pa: CsrMatrix = spectral::row_normalized_adjacency(source);
        let pb: CsrMatrix = spectral::row_normalized_adjacency(target);
        let (z0, w0) = self.components(source, target);

        // Iterate the component vectors.
        let mut zs: Vec<Vec<f64>> = Vec::with_capacity(self.iterations + 1);
        let mut ws: Vec<Vec<f64>> = Vec::with_capacity(self.iterations + 1);
        zs.push(z0);
        ws.push(w0);
        for k in 0..self.iterations {
            zs.push(pa.mul_vec(&zs[k]));
            ws.push(pb.mul_vec(&ws[k]));
        }

        // Assemble X⁽ⁿ⁾ as the weighted sum of outer products.
        let n = source.node_count();
        let m = target.node_count();
        let mut x = DenseMatrix::zeros(n, m);
        let mut coef = 1.0 - self.alpha;
        for k in 0..=self.iterations {
            let c = if k == self.iterations {
                self.alpha.powi(self.iterations as i32)
            } else {
                let cur = coef;
                coef *= self.alpha;
                cur
            };
            let z = &zs[k];
            let w = &ws[k];
            for (i, &zi) in z.iter().enumerate() {
                if zi == 0.0 {
                    continue;
                }
                let row = x.row_mut(i);
                for (slot, &wj) in row.iter_mut().zip(w.iter()) {
                    *slot += c * zi * wj;
                }
            }
        }
        Ok(Similarity::Dense(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    #[test]
    fn defaults_match_table1() {
        let nsd = Nsd::default();
        assert_eq!(nsd.alpha, 0.8);
        assert_eq!(nsd.native_assignment(), AssignmentMethod::SortGreedy);
    }

    #[test]
    fn similarity_is_nonnegative_and_finite() {
        let inst = permuted_instance(5, 2);
        let sim = Nsd::default().similarity(&inst.source, &inst.target).unwrap().into_dense();
        assert!(sim.all_finite());
        assert!(sim.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn recovers_permuted_isomorphic_graph_reasonably() {
        // NSD's similarity is a low-rank IsoRank surrogate, so on a small
        // distinctive graph it should beat random by a wide margin (random
        // ≈ 1/n ≈ 5%).
        let inst = permuted_instance(6, 5);
        let aligned = Nsd::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.3, "NSD accuracy on isomorphic graphs: {acc}");
    }

    #[test]
    fn iterated_vectors_change_the_similarity() {
        let inst = permuted_instance(4, 6);
        let shallow = Nsd { iterations: 1, ..Nsd::default() };
        let deep = Nsd { iterations: 20, ..Nsd::default() };
        let s1 = shallow.similarity(&inst.source, &inst.target).unwrap().into_dense();
        let s2 = deep.similarity(&inst.source, &inst.target).unwrap().into_dense();
        assert!(s1.sub(&s2).max_abs() > 1e-9, "more terms must matter");
    }

    #[test]
    fn uniform_components_are_supported() {
        let inst = permuted_instance(4, 7);
        let nsd = Nsd { degree_prior: false, ..Nsd::default() };
        let sim = nsd.similarity(&inst.source, &inst.target).unwrap();
        assert!(sim.all_finite());
    }
}
