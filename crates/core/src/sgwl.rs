//! S-GWL — Scalable Gromov–Wasserstein Learning (Xu, Luo, Carin 2019),
//! paper §3.6.
//!
//! S-GWL keeps GWL's objective but attacks it divide-and-conquer: it
//! recursively decomposes both graphs into matched partitions and only runs
//! the expensive GW solver on small aligned sub-problems, obtaining a
//! logarithmic speedup plus the proximal-gradient decomposition of the
//! non-convex objective into smaller convex ones.
//!
//! Our decomposition step replaces the reference implementation's GW
//! *barycenter* co-clustering with spectral co-bisection (Fiedler-vector
//! sign split on each graph, cluster pairing by size/degree profile): both
//! produce matched partitions that the leaf-level GW solves consume, and
//! the spectral split keeps the recursion `O(n log n · leaf²)` without a
//! barycenter inner loop — DESIGN.md §3 records the substitution. The leaf
//! solver is [`crate::gwl::Gwl`] with Sinkhorn regularization `β`, the
//! hyperparameter the paper tunes per dataset family (`β = 0.025` sparse,
//! `β = 0.1` dense).

use crate::gwl::Gwl;
use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::lanczos::{lanczos, Which};
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::{DenseMatrix, ShiftedOp, Similarity};

/// S-GWL with the study's tuned hyperparameters (Table 1: `β ∈ {0.025, 0.1}`,
/// NN native assignment).
#[derive(Debug, Clone)]
pub struct Sgwl {
    /// Sinkhorn regularization at the leaves (paper: 0.025 on sparse
    /// datasets, 0.1 on dense ones).
    pub beta: f64,
    /// Sub-problems at or below this size are solved directly with GWL.
    pub leaf_size: usize,
    /// Transport iterations of the leaf GWL solver.
    pub leaf_iters: usize,
    /// Seed for the spectral bisection and leaf solver.
    pub seed: u64,
}

impl Default for Sgwl {
    fn default() -> Self {
        Self { beta: 0.1, leaf_size: 96, leaf_iters: 20, seed: 0x56a1 }
    }
}

impl Sgwl {
    /// The paper's sparse-dataset configuration (`β = 0.025`).
    pub fn sparse() -> Self {
        Self { beta: 0.025, ..Self::default() }
    }

    /// Induced subgraph over `nodes` (in the given order).
    fn induced(g: &Graph, nodes: &[usize]) -> Graph {
        let mut local = vec![usize::MAX; g.node_count()];
        for (li, &v) in nodes.iter().enumerate() {
            local[v] = li;
        }
        let mut edges = Vec::new();
        for (li, &v) in nodes.iter().enumerate() {
            for &w in g.neighbors(v) {
                let lw = local[w];
                if lw != usize::MAX && lw > li {
                    edges.push((li, lw));
                }
            }
        }
        Graph::from_edges(nodes.len(), &edges)
    }

    /// Fiedler vector (second eigenvector of the normalized Laplacian) of
    /// the induced subgraph over `nodes`, or `None` when the spectrum is
    /// too degenerate to extract one.
    fn fiedler(&self, g: &Graph, nodes: &[usize]) -> Option<Vec<f64>> {
        let sub = Self::induced(g, nodes);
        let l = spectral::normalized_laplacian(&sub);
        let flipped = ShiftedOp::new(&l, -1.0, 2.0);
        let krylov = 80.min(sub.node_count());
        lanczos(&flipped, 2.min(sub.node_count()), Which::Largest, krylov, self.seed)
            .ok()
            .and_then(|r| if r.vectors.cols() >= 2 { Some(r.vectors.col(1)) } else { None })
    }

    /// Splits `nodes` at the median of `values` (a Fiedler vector indexed
    /// like `nodes`), keeping the split balanced on ties.
    fn split_at_median(nodes: &[usize], values: &[f64]) -> (Vec<usize>, Vec<usize>) {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite fiedler"));
        let median = sorted[sorted.len() / 2];
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (li, &v) in nodes.iter().enumerate() {
            if values[li] < median || (values[li] == median && left.len() <= right.len()) {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        (left, right)
    }

    /// Quantile profile of a value vector (its sorted values sampled at `q`
    /// evenly spaced ranks) — the permutation-invariant signature used to
    /// resolve the Fiedler sign between the two graphs.
    fn quantiles(values: &[f64], q: usize) -> Vec<f64> {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        (0..q)
            .map(|i| {
                let pos = i * (sorted.len() - 1) / (q - 1).max(1);
                sorted[pos]
            })
            .collect()
    }

    /// Co-bisects the two node sets so the halves *correspond*: both graphs
    /// are split at their Fiedler medians, with the target's Fiedler sign
    /// chosen to match the source's quantile profile (Fiedler vectors of
    /// isomorphic graphs agree up to permutation and sign, so this pins the
    /// partition correspondence — the role the reference implementation's
    /// shared barycenter plays). Degenerate spectra fall back to a balanced
    /// degree-rank split on both sides.
    #[allow(clippy::type_complexity)]
    fn co_bisect(
        &self,
        source: &Graph,
        target: &Graph,
        src_nodes: &[usize],
        tgt_nodes: &[usize],
    ) -> ((Vec<usize>, Vec<usize>), (Vec<usize>, Vec<usize>)) {
        let degree_split = |g: &Graph, nodes: &[usize]| {
            let mut by_degree: Vec<usize> = nodes.to_vec();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            let left: Vec<usize> = by_degree.iter().step_by(2).copied().collect();
            let right: Vec<usize> = by_degree.iter().skip(1).step_by(2).copied().collect();
            (left, right)
        };
        match (self.fiedler(source, src_nodes), self.fiedler(target, tgt_nodes)) {
            (Some(f_a), Some(f_b)) => {
                // Resolve the target's sign against the source's profile.
                let q = 16.min(f_a.len()).min(f_b.len()).max(2);
                let qa = Self::quantiles(&f_a, q);
                let qb_pos = Self::quantiles(&f_b, q);
                let f_b_neg: Vec<f64> = f_b.iter().map(|v| -v).collect();
                let qb_neg = Self::quantiles(&f_b_neg, q);
                let dist = |x: &[f64], y: &[f64]| {
                    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                };
                let f_b = if dist(&qa, &qb_pos) <= dist(&qa, &qb_neg) { f_b } else { f_b_neg };
                let a = Self::split_at_median(src_nodes, &f_a);
                let b = Self::split_at_median(tgt_nodes, &f_b);
                if a.0.is_empty() || a.1.is_empty() || b.0.is_empty() || b.1.is_empty() {
                    (degree_split(source, src_nodes), degree_split(target, tgt_nodes))
                } else {
                    (a, b)
                }
            }
            _ => (degree_split(source, src_nodes), degree_split(target, tgt_nodes)),
        }
    }

    /// Mean structural-feature vector of a node set (the cluster profile
    /// used to pair partitions across the two graphs).
    fn centroid(features: &DenseMatrix, nodes: &[usize]) -> Vec<f64> {
        let d = features.cols();
        let mut c = vec![0.0; d];
        if nodes.is_empty() {
            return c;
        }
        for &v in nodes {
            for (slot, &x) in c.iter_mut().zip(features.row(v)) {
                *slot += x;
            }
        }
        for slot in &mut c {
            *slot /= nodes.len() as f64;
        }
        c
    }

    /// Recursive co-partition alignment, writing transport mass into `sim`.
    /// `fa`/`fb` are global structural features (computed once per graph);
    /// they steer cluster pairing and warm-start the leaf transports, the
    /// role the reference implementation's barycenter hierarchy plays.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        source: &Graph,
        target: &Graph,
        fa: &DenseMatrix,
        fb: &DenseMatrix,
        src_nodes: Vec<usize>,
        tgt_nodes: Vec<usize>,
        sim: &mut DenseMatrix,
    ) -> Result<(), AlignError> {
        if src_nodes.is_empty() || tgt_nodes.is_empty() {
            return Ok(());
        }
        // The leaf solvers poll the budget per Sinkhorn/GWL iteration; this
        // check additionally stops the partitioning work between leaves.
        crate::check_budget("sgwl", 0)?;
        let small = src_nodes.len().max(tgt_nodes.len()) <= self.leaf_size;
        if small {
            let sub_a = Self::induced(source, &src_nodes);
            let sub_b = Self::induced(target, &tgt_nodes);
            if sub_a.node_count() <= sub_b.node_count() {
                let gwl = Gwl {
                    beta: self.beta,
                    outer_iters: self.leaf_iters,
                    seed: self.seed,
                    ..Gwl::default()
                };
                // Warm-start the leaf transport from the global features:
                // entropic OT over cross-leaf feature distances.
                let cost = DenseMatrix::from_fn(src_nodes.len(), tgt_nodes.len(), |li, lj| {
                    graphalign_linalg::vec_ops::dist2_sq(
                        fa.row(src_nodes[li]),
                        fb.row(tgt_nodes[lj]),
                    )
                });
                let scale = cost.max_abs().max(1e-12);
                let cost = cost.scaled(1.0 / scale);
                let mu = uniform_marginal(src_nodes.len());
                let nu = uniform_marginal(tgt_nodes.len());
                let params = SinkhornParams { epsilon: self.beta, max_iter: 100, tol: 1e-7 };
                let (t0, _) = sinkhorn(&cost, &mu, &nu, &params)?;
                let t = gwl.transport_with_init(&sub_a, &sub_b, Some(&t0))?;
                for (li, &v) in src_nodes.iter().enumerate() {
                    for (lj, &w) in tgt_nodes.iter().enumerate() {
                        // Scale to a per-leaf mass of 1 so leaves of different
                        // sizes contribute comparably.
                        sim.add_to(v, w, t.get(li, lj) * src_nodes.len() as f64);
                    }
                }
            } else {
                // More source than target nodes in this leaf: fall back to
                // degree-profile similarity so the global assignment can
                // still place everyone.
                for &v in &src_nodes {
                    for &w in &tgt_nodes {
                        sim.add_to(
                            v,
                            w,
                            crate::prior::degree_similarity(source.degree(v), target.degree(w)),
                        );
                    }
                }
            }
            return Ok(());
        }
        let ((a1, a2), (b1, b2)) = self.co_bisect(source, target, &src_nodes, &tgt_nodes);
        // The co-bisection already establishes correspondence; as a guard,
        // swap if the feature centroids say the crossed pairing is clearly
        // better (asymmetric noise can flip a near-balanced split).
        let mismatch = |na: &[usize], nb: &[usize]| {
            let size =
                (na.len() as f64 - nb.len() as f64).abs() / (na.len() + nb.len()).max(1) as f64;
            let ca = Self::centroid(fa, na);
            let cb = Self::centroid(fb, nb);
            size + graphalign_linalg::vec_ops::dist2_sq(&ca, &cb).sqrt()
        };
        let straight = mismatch(&a1, &b1) + mismatch(&a2, &b2);
        let crossed = mismatch(&a1, &b2) + mismatch(&a2, &b1);
        if straight <= crossed * 1.2 {
            self.recurse(source, target, fa, fb, a1, b1, sim)?;
            self.recurse(source, target, fa, fb, a2, b2, sim)?;
        } else {
            self.recurse(source, target, fa, fb, a1, b2, sim)?;
            self.recurse(source, target, fa, fb, a2, b1, sim)?;
        }
        Ok(())
    }
}

impl Aligner for Sgwl {
    fn name(&self) -> &'static str {
        "S-GWL"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::NearestNeighbor
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        // Global structural features (xNetMF-style histograms) shared across
        // the recursion; bucket count spans both graphs.
        let (fa, fb) = crate::features::feature_pair(
            source,
            target,
            &crate::features::FeatureParams::default(),
        );
        let mut sim = DenseMatrix::zeros(source.node_count(), target.node_count());
        self.recurse(
            source,
            target,
            &fa,
            &fb,
            (0..source.node_count()).collect(),
            (0..target.node_count()).collect(),
            &mut sim,
        )?;
        Ok(Similarity::Dense(sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::{accuracy, s3};

    #[test]
    fn defaults_match_table1_betas() {
        assert_eq!(Sgwl::default().beta, 0.1);
        assert_eq!(Sgwl::sparse().beta, 0.025);
        assert_eq!(Sgwl::default().native_assignment(), AssignmentMethod::NearestNeighbor);
    }

    #[test]
    fn induced_subgraph_extraction() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sub = Sgwl::induced(&g, &[1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
    }

    #[test]
    fn co_bisection_covers_all_nodes_on_both_sides() {
        let inst = permuted_instance(8, 2);
        let s = Sgwl::default();
        let src: Vec<usize> = (0..inst.source.node_count()).collect();
        let tgt: Vec<usize> = (0..inst.target.node_count()).collect();
        let ((a1, a2), (b1, b2)) = s.co_bisect(&inst.source, &inst.target, &src, &tgt);
        for (halves, nodes) in [((&a1, &a2), &src), ((&b1, &b2), &tgt)] {
            let (l, r) = halves;
            assert_eq!(l.len() + r.len(), nodes.len());
            assert!(!l.is_empty() && !r.is_empty());
            let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(&all, nodes);
        }
    }

    #[test]
    fn small_instance_matches_leaf_gwl_quality() {
        // Below leaf_size the whole problem is one GWL solve.
        let inst = permuted_instance(4, 3);
        let aligned = Sgwl::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let structural = s3(&inst.source, &inst.target, &aligned);
        assert!(structural > 0.2, "S-GWL leaf S3: {structural}");
    }

    #[test]
    fn recursion_triggers_on_larger_graphs() {
        // 2 triangle-rings of 30+ nodes force at least one bisection with
        // leaf_size 16.
        let inst = permuted_instance(10, 5);
        let s = Sgwl { leaf_size: 16, ..Sgwl::default() };
        let aligned =
            s.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant).unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
        // Sanity: the alignment is a permutation.
        let mut sorted = aligned.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..aligned.len()).collect::<Vec<_>>());
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc >= 0.0); // smoke: recursion completes and is well-formed
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = permuted_instance(5, 6);
        let s = Sgwl::default();
        assert_eq!(
            s.align(&inst.source, &inst.target).unwrap(),
            s.align(&inst.source, &inst.target).unwrap()
        );
    }
}
