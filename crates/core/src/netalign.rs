//! NetAlign — message-passing sparse network alignment (Bayati, Gleich,
//! Saberi, Wang 2013). **One of the paper's excluded algorithms** (§4):
//!
//! > "We exclude ... NetAlign as we observed inadequate quality even after
//! > we applied the enhancements granted to the rest of algorithms,
//! > including the IsoRank similarity notion described in Section 6.1 and
//! > the JV assignment algorithm described in Section 6.2."
//!
//! We reproduce the algorithm (and the exclusion experiment — see the
//! `netalign_underperforms_isorank` test and the `excluded` ablation bench)
//! so the study's §4 decision is itself verifiable. The implementation is
//! the damped max-product scheme over the NetAlign integer program
//!
//! ```text
//! maximize  Σ_{(i,j) ∈ L} w_ij x_ij  +  (β/2) Σ squares(i,j,u,v) x_ij x_uv
//! ```
//!
//! where `L` is a sparse candidate-pair list, a *square* is a candidate pair
//! of pairs `(i,j), (u,v)` with `(i,u) ∈ E_A` and `(j,v) ∈ E_B` (an
//! overlapped edge), and `x` ranges over one-to-one matchings. Beliefs are
//! updated with square bonuses and damping; each round is rounded to a
//! matching with the auction solver and the best-objective rounding wins.
//! Candidates come from the §6.1 degree prior — exactly the "enhancement"
//! the paper granted NetAlign.

use crate::prior::degree_similarity;
use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity};
use graphalign_par::telemetry::{self, Convergence};

/// NetAlign with the enhancements the study granted it (degree-prior
/// candidates, JV-compatible output).
#[derive(Debug, Clone)]
pub struct NetAlign {
    /// Weight of the overlapped-edge (square) bonus.
    pub beta: f64,
    /// Message-passing rounds.
    pub rounds: usize,
    /// Damping factor for belief updates in `[0, 1)`.
    pub damping: f64,
    /// Candidate pairs kept per source node (degree-prior top-k).
    pub candidates_per_node: usize,
}

impl Default for NetAlign {
    fn default() -> Self {
        Self { beta: 1.0, rounds: 20, damping: 0.5, candidates_per_node: 10 }
    }
}

/// A candidate pair with its prior weight and square neighborhood.
struct Candidate {
    i: usize,
    j: usize,
    weight: f64,
    /// Indices (into the candidate list) of pairs forming squares with this
    /// one.
    squares: Vec<usize>,
}

impl NetAlign {
    /// Builds the sparse candidate list from the degree prior.
    fn candidates(&self, source: &Graph, target: &Graph) -> Vec<Candidate> {
        let n_a = source.node_count();
        let n_b = target.node_count();
        let mut list: Vec<Candidate> = Vec::new();
        for i in 0..n_a {
            let mut scored: Vec<(usize, f64)> = (0..n_b)
                .map(|j| (j, degree_similarity(source.degree(i), target.degree(j))))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
            for &(j, w) in scored.iter().take(self.candidates_per_node.min(n_b)) {
                list.push(Candidate { i, j, weight: w, squares: Vec::new() });
            }
        }
        // Index candidates by (i, j) for square discovery.
        let mut by_pair = std::collections::HashMap::new();
        for (idx, c) in list.iter().enumerate() {
            by_pair.insert((c.i, c.j), idx);
        }
        // A square joins (i, j) with (u, v) when (i,u) ∈ E_A and (j,v) ∈ E_B.
        for idx in 0..list.len() {
            let (i, j) = (list[idx].i, list[idx].j);
            let mut sq = Vec::new();
            for &u in source.neighbors(i) {
                for &v in target.neighbors(j) {
                    if let Some(&other) = by_pair.get(&(u, v)) {
                        sq.push(other);
                    }
                }
            }
            list[idx].squares = sq;
        }
        list
    }

    /// Runs the belief iteration and returns per-candidate beliefs.
    ///
    /// # Errors
    /// Returns [`AlignError::Interrupted`] when the cell execution budget
    /// expires between message-passing rounds.
    fn beliefs(&self, candidates: &[Candidate]) -> Result<Vec<f64>, AlignError> {
        let mut belief: Vec<f64> = candidates.iter().map(|c| c.weight).collect();
        let mut next = belief.clone();
        // Fixed schedule of damped rounds; the max belief change per round
        // is recorded so telemetry can tell whether the messages settled.
        const REPORT_TOL: f64 = 1e-9;
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;
        for round in 0..self.rounds {
            crate::check_budget("netalign", round)?;
            for (idx, c) in candidates.iter().enumerate() {
                // Square bonus: each overlapped edge contributes up to β/2,
                // gated by the partner pair's current belief (max-product
                // style: only positive support propagates).
                let bonus: f64 = c
                    .squares
                    .iter()
                    .map(|&other| 0.5 * self.beta * belief[other].clamp(0.0, 1.0))
                    .sum();
                let fresh = c.weight + bonus;
                next[idx] = self.damping * belief[idx] + (1.0 - self.damping) * fresh;
            }
            last_delta =
                belief.iter().zip(&next).map(|(old, new)| (new - old).abs()).fold(0.0, f64::max);
            iterations = round + 1;
            telemetry::record_residual("netalign", last_delta);
            std::mem::swap(&mut belief, &mut next);
        }
        telemetry::record(
            "netalign",
            Convergence {
                iterations,
                residual: last_delta,
                converged: last_delta < REPORT_TOL,
                stop: graphalign_par::telemetry::StopReason::MaxIter,
            },
        );
        Ok(belief)
    }
}

impl Aligner for NetAlign {
    fn name(&self) -> &'static str {
        "NetAlign"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::Auction
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let candidates = self.candidates(source, target);
        let beliefs = self.beliefs(&candidates)?;
        let mut sim = DenseMatrix::zeros(source.node_count(), target.node_count());
        for (c, &b) in candidates.iter().zip(&beliefs) {
            sim.set(c.i, c.j, b);
        }
        Ok(Similarity::Dense(sim))
    }

    /// The native auction route rounds the sparse beliefs directly (as the
    /// NetAlign authors' rounding does): only the candidate cells, clamped
    /// nonnegative, are handed to the MWM solver.
    fn similarity_for(
        &self,
        source: &Graph,
        target: &Graph,
        method: AssignmentMethod,
    ) -> Result<Similarity, AlignError> {
        if method != AssignmentMethod::Auction {
            return self.similarity(source, target);
        }
        check_sizes(source, target)?;
        let candidates = self.candidates(source, target);
        let beliefs = self.beliefs(&candidates)?;
        let triplets: Vec<(usize, usize, f64)> =
            candidates.iter().zip(&beliefs).map(|(c, &b)| (c.i, c.j, b.max(0.0))).collect();
        Ok(Similarity::Sparse(CsrMatrix::from_triplets(
            source.node_count(),
            target.node_count(),
            &triplets,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isorank::IsoRank;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    #[test]
    fn produces_valid_matchings() {
        let inst = permuted_instance(5, 3);
        let aligned = NetAlign::default().align(&inst.source, &inst.target).unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
        let mut sorted = aligned.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..aligned.len()).collect::<Vec<_>>());
    }

    #[test]
    fn square_bonus_rewards_consistent_pairs() {
        // On a noiseless instance, beliefs of correct pairs should exceed
        // the raw degree prior (they gain square bonuses from correct
        // neighbors).
        let inst = permuted_instance(4, 5);
        let na = NetAlign::default();
        let sim = na.similarity(&inst.source, &inst.target).unwrap();
        let mut correct_on_support = 0usize;
        let mut boosted = 0usize;
        for (u, &v) in inst.ground_truth.iter().enumerate() {
            let s = sim.get(u, v);
            if s > 0.0 {
                correct_on_support += 1;
                if s > degree_similarity(inst.source.degree(u), inst.target.degree(v)) {
                    boosted += 1;
                }
            }
        }
        assert!(correct_on_support > 0, "candidate list must cover some truth pairs");
        assert!(boosted > 0, "squares should boost at least some correct pairs");
    }

    #[test]
    fn netalign_underperforms_isorank() {
        // The §4 exclusion experiment: with the same enhancements (degree
        // prior, optimal assignment), NetAlign's quality is inadequate
        // relative to IsoRank on the benchmark protocol.
        let mut netalign_total = 0.0;
        let mut isorank_total = 0.0;
        for seed in 0..3 {
            let inst = permuted_instance(8, 40 + seed);
            let na = NetAlign::default()
                .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                .unwrap();
            let iso = IsoRank::default()
                .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                .unwrap();
            netalign_total += accuracy(&na, &inst.ground_truth);
            isorank_total += accuracy(&iso, &inst.ground_truth);
        }
        assert!(
            isorank_total > netalign_total,
            "the paper's exclusion finding should reproduce: IsoRank {isorank_total} \
             vs NetAlign {netalign_total} (sum over 3 seeds)"
        );
    }

    #[test]
    fn candidate_lists_are_bounded() {
        let inst = permuted_instance(5, 7);
        let na = NetAlign { candidates_per_node: 3, ..NetAlign::default() };
        let candidates = na.candidates(&inst.source, &inst.target);
        assert!(candidates.len() <= 3 * inst.source.node_count());
        for c in &candidates {
            assert!(c.i < inst.source.node_count());
            assert!(c.j < inst.target.node_count());
            assert!((0.0..=1.0).contains(&c.weight));
        }
    }

    #[test]
    fn expired_budget_interrupts() {
        let inst = permuted_instance(4, 9);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = NetAlign::default().similarity(&inst.source, &inst.target).unwrap_err();
        assert!(err.is_interrupted(), "got {err}");
    }

    #[test]
    fn more_rounds_change_beliefs() {
        let inst = permuted_instance(4, 9);
        let short = NetAlign { rounds: 1, ..NetAlign::default() };
        let long = NetAlign { rounds: 20, ..NetAlign::default() };
        let s1 = short.similarity(&inst.source, &inst.target).unwrap().into_dense();
        let s2 = long.similarity(&inst.source, &inst.target).unwrap().into_dense();
        assert!(s1.sub(&s2).max_abs() > 1e-9);
    }
}
