//! IsoRank (Singh, Xu, Berger 2008) — paper §3.1.
//!
//! IsoRank scores a node pair `(i, j)` by the recursive principle that good
//! matches have neighbors that are good matches (Equation 1):
//!
//! ```text
//! R[i][j] = Σ_{u ∈ N(i)} Σ_{v ∈ N(j)} R[u][v] / (deg(u) · deg(v))
//! ```
//!
//! which in matrix form is `R ← (A D_A⁻¹) R (D_B⁻¹ B)` — a power iteration
//! on the Kronecker topology operator, blended with a prior similarity `E`
//! as `R = α·M(R) + (1 − α)·E`. The study supplies the degree prior of §6.1
//! in place of the original Blast scores, and lets the iteration "return a
//! similarity matrix after 100 iterations even if it has not converged"
//! (§6.6).

use crate::prior::{degree_prior, uniform_prior};
use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity, Workspace};
use graphalign_par::telemetry::{self, Convergence};

/// Which prior similarity matrix `E` to blend in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorKind {
    /// The study's degree-similarity schema (§6.1) — the default.
    Degree,
    /// A flat prior (ablation baseline; also the honest "no side
    /// information" configuration).
    Uniform,
}

/// IsoRank with the study's tuned hyperparameters (Table 1: `α = 0.9`,
/// SortGreedy native assignment, 100-iteration cap).
#[derive(Debug, Clone)]
pub struct IsoRank {
    /// Weight of topological similarity vs the prior (`α` in Equation 1).
    pub alpha: f64,
    /// Iteration cap (the paper uses 100).
    pub max_iter: usize,
    /// Convergence tolerance on the L1 change of `R` between iterations.
    pub tol: f64,
    /// Prior matrix choice.
    pub prior: PriorKind,
}

impl Default for IsoRank {
    fn default() -> Self {
        Self { alpha: 0.9, max_iter: 100, tol: 1e-9, prior: PriorKind::Degree }
    }
}

impl IsoRank {
    /// The ablation configuration without the §6.1 degree prior.
    pub fn without_degree_prior() -> Self {
        Self { prior: PriorKind::Uniform, ..Self::default() }
    }

    fn prior_matrix(&self, source: &Graph, target: &Graph) -> DenseMatrix {
        match self.prior {
            PriorKind::Degree => degree_prior(source, target),
            PriorKind::Uniform => uniform_prior(source, target),
        }
    }
}

impl Aligner for IsoRank {
    fn name(&self) -> &'static str {
        "IsoRank"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::SortGreedy
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        // Column-normalized adjacencies: A·D_A⁻¹ = (D_A⁻¹·A)ᵀ.
        let pa: CsrMatrix = spectral::row_normalized_adjacency(source).transpose();
        let pb: CsrMatrix = spectral::row_normalized_adjacency(target);
        // (D_B⁻¹B)ᵀ, transposed once here instead of once per iteration. The
        // right-multiplication below picks its formulation by size: gather
        // over this hoisted transpose at large n, the row-axpy form (which
        // pays two L2-resident dense transposes per iteration but streams
        // SIMD axpys) below the measured crossover — bit-identical either
        // way, so the cutoff never shows in the similarity.
        let pbt = pb.transpose();
        let e = self.prior_matrix(source, target);
        let mut r = e.clone();
        let (rows, cols) = e.shape();
        let mut left = DenseMatrix::zeros(rows, cols);
        let mut next = DenseMatrix::zeros(rows, cols);
        let mut ws = Workspace::new();
        let mut iterations = 0;
        let mut last_delta = 0.0;
        let mut hit_tol = false;
        for it in 0..self.max_iter {
            crate::check_budget("isorank", it)?;
            iterations = it + 1;
            // R_next = α · P_Aᵀ-side · R · P_B-side + (1 − α) E
            // pa is already A·D_A⁻¹; multiply left; then right by D_B⁻¹·B,
            // i.e. R · pbtᵀ, via the form-selecting dense·CSRᵀ kernel. Both
            // products land in buffers reused across iterations.
            pa.mul_dense_into(&r, &mut left);
            left.mul_csr_tr_into_auto(&pbt, &mut next, &mut ws);
            next.scale_inplace(self.alpha);
            next.add_scaled(1.0 - self.alpha, &e);
            // Normalize total mass to 1 for numerical stability (scaling does
            // not affect the assignment step).
            let total = next.sum();
            if total > 0.0 {
                next.scale_inplace(1.0 / total);
            }
            let delta = {
                let (a, b) = (next.as_slice(), r.as_slice());
                graphalign_par::sum_indexed(a.len(), 1, |i| (a[i] - b[i]).abs())
            };
            last_delta = delta;
            telemetry::record_residual("isorank", delta);
            std::mem::swap(&mut r, &mut next);
            if delta < self.tol {
                hit_tol = true;
                break;
            }
        }
        // The paper accepts the truncated matrix after 100 iterations "even
        // if it has not converged" — the stop reason records which case this
        // run was instead of discarding it.
        telemetry::record(
            "isorank",
            if hit_tol {
                Convergence::tolerance(iterations, last_delta)
            } else {
                Convergence::max_iter(iterations, last_delta)
            },
        );
        Ok(Similarity::Dense(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    #[test]
    fn defaults_match_table1() {
        let iso = IsoRank::default();
        assert_eq!(iso.alpha, 0.9);
        assert_eq!(iso.max_iter, 100);
        assert_eq!(iso.prior, PriorKind::Degree);
        assert_eq!(iso.native_assignment(), AssignmentMethod::SortGreedy);
    }

    #[test]
    fn similarity_matrix_is_a_distribution() {
        let inst = permuted_instance(5, 1);
        let sim = IsoRank::default().similarity(&inst.source, &inst.target).unwrap().into_dense();
        assert!((sim.sum() - 1.0).abs() < 1e-9);
        assert!(sim.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn recovers_permuted_isomorphic_graph() {
        let inst = permuted_instance(6, 3);
        let aligned = IsoRank::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.8, "IsoRank accuracy on isomorphic graphs: {acc}");
    }

    #[test]
    fn jv_at_least_matches_native_sortgreedy() {
        // The §6.2 observation: IsoRank benefits from JV over SG.
        let inst = permuted_instance(6, 11);
        let iso = IsoRank::default();
        let sg = iso.align(&inst.source, &inst.target).unwrap();
        let jv =
            iso.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant).unwrap();
        assert!(
            accuracy(&jv, &inst.ground_truth) >= accuracy(&sg, &inst.ground_truth) - 0.1,
            "JV should not be much worse than SG"
        );
    }

    #[test]
    fn degree_prior_beats_uniform_on_noisy_graphs() {
        // The §6.1 claim, at miniature scale: with a bit of noise the degree
        // prior gives IsoRank an edge over the uniform prior.
        use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
        let g = crate::test_support::distinctive_graph(8);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.04);
        let mut with_prior = 0.0;
        let mut without = 0.0;
        for seed in 0..3 {
            let inst = make_instance(&g, &cfg, seed);
            let a1 = IsoRank::default()
                .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                .unwrap();
            let a2 = IsoRank::without_degree_prior()
                .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                .unwrap();
            with_prior += accuracy(&a1, &inst.ground_truth);
            without += accuracy(&a2, &inst.ground_truth);
        }
        assert!(with_prior >= without, "degree prior should help: {with_prior} vs {without}");
    }

    #[test]
    fn formulation_cutoff_is_invisible_in_mappings() {
        // At test sizes the production loop sits below the SPMM cutoff and
        // runs the hoisted row-axpy formulation; replaying the identical
        // iteration with the plain gather kernel (the above-cutoff form)
        // must reproduce the similarity bit for bit, so the mapping — a
        // deterministic function of the similarity — cannot change across
        // the cutoff. Asserted on both the matrix bits and the extracted
        // mappings.
        let inst = permuted_instance(7, 9);
        let iso = IsoRank::default();
        let sim = iso.similarity(&inst.source, &inst.target).unwrap().into_dense();

        let pa: CsrMatrix = spectral::row_normalized_adjacency(&inst.source).transpose();
        let pb: CsrMatrix = spectral::row_normalized_adjacency(&inst.target);
        let pbt = pb.transpose();
        let e = degree_prior(&inst.source, &inst.target);
        let mut r = e.clone();
        let (rows, cols) = e.shape();
        let mut left = DenseMatrix::zeros(rows, cols);
        let mut next = DenseMatrix::zeros(rows, cols);
        for _ in 0..iso.max_iter {
            pa.mul_dense_into(&r, &mut left);
            left.mul_csr_tr_into(&pbt, &mut next);
            next.scale_inplace(iso.alpha);
            next.add_scaled(1.0 - iso.alpha, &e);
            let total = next.sum();
            if total > 0.0 {
                next.scale_inplace(1.0 / total);
            }
            let delta = {
                let (a, b) = (next.as_slice(), r.as_slice());
                graphalign_par::sum_indexed(a.len(), 1, |i| (a[i] - b[i]).abs())
            };
            std::mem::swap(&mut r, &mut next);
            if delta < iso.tol {
                break;
            }
        }
        let (a, b) = (sim.as_slice(), r.as_slice());
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "gather-form replay diverged bitwise from the production similarity"
        );
        let m1 = graphalign_assignment::assign(
            &Similarity::Dense(sim),
            AssignmentMethod::JonkerVolgenant,
        );
        let m2 =
            graphalign_assignment::assign(&Similarity::Dense(r), AssignmentMethod::JonkerVolgenant);
        assert_eq!(m1, m2, "mappings changed across the SPMM formulation cutoff");
    }

    #[test]
    fn expired_budget_interrupts() {
        let inst = permuted_instance(5, 1);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = IsoRank::default().similarity(&inst.source, &inst.target).unwrap_err();
        assert!(err.is_interrupted(), "got {err}");
    }

    #[test]
    fn empty_source_is_rejected() {
        let empty = Graph::from_edges(0, &[]);
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert!(IsoRank::default().similarity(&empty, &g).is_err());
    }
}
