//! FPROP — factored feature propagation, the XL-tier reference aligner.
//!
//! Not one of the paper's nine algorithms: FPROP exists because the XL tier
//! needs at least one method whose *entire* pipeline is provably `O(n·d)` —
//! no dense cost matrices (CONE's warm start), no eigensolves (GRASP), no
//! `n × n` propagation state (IsoRank). It is the NSD idea restated in the
//! factored currency:
//!
//! 1. structural features `X₀` (the xNetMF-style log-degree-bucket features
//!    REGAL and CONE's warm start already use, shared bucketing across the
//!    pair);
//! 2. CSR-only diffusion `X ← α Â X + (1 − α) X₀` per graph
//!    ([`graphalign_linalg::propagation`]) — every iterate a tall factor;
//! 3. row-normalized factors compared under the `exp(−‖·‖²)` kernel as a
//!    [`Similarity::LowRank`], extracted by k-d tree NN or the sharded
//!    blocked top-k.
//!
//! Deterministic (no random projections), permutation-equivariant (features
//! and diffusion both commute with relabeling), and linear in edges.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::propagation::{propagate_features, PropagationParams};
use graphalign_linalg::{DenseMatrix, LowRankKernel, LowRankSim, Similarity};

/// Factored-propagation aligner (see the module docs).
#[derive(Debug, Clone)]
pub struct Fprop {
    /// Diffusion sweeps per graph.
    pub iters: usize,
    /// Propagation mixing weight (`1 − alpha` anchors to the raw features).
    pub alpha: f64,
    /// Structural-feature extraction parameters (shared bucketing).
    pub features: crate::features::FeatureParams,
}

impl Default for Fprop {
    fn default() -> Self {
        Self { iters: 15, alpha: 0.85, features: crate::features::FeatureParams::default() }
    }
}

impl Fprop {
    /// Diffused, row-normalized structural embedding of one graph.
    fn embed(&self, g: &Graph, x0: &DenseMatrix) -> Result<DenseMatrix, AlignError> {
        let adj = spectral::sym_normalized_adjacency(g);
        let params = PropagationParams { iters: self.iters, alpha: self.alpha, tol: 1e-9 };
        let mut x = propagate_features(&adj, x0, &params)?;
        x.normalize_rows();
        Ok(x)
    }
}

impl Aligner for Fprop {
    fn name(&self) -> &'static str {
        "FPROP"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::NearestNeighbor
    }

    /// The similarity stays factored end to end:
    /// `exp(−‖X_A[u] − X_B[v]‖²)` over the diffused structural embeddings,
    /// carried as `O(n·d)` factors with `d` = the shared feature bucket
    /// count (≈ `log₂ max_degree`).
    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let (fa, fb) = crate::features::feature_pair(source, target, &self.features);
        let xa = self.embed(source, &fa)?;
        let xb = self.embed(target, &fb)?;
        Ok(Similarity::LowRank(LowRankSim::new(xa, xb, LowRankKernel::ExpNegSqDist)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_graph::permutation::AlignmentInstance;
    use graphalign_metrics::accuracy;
    use graphalign_par::telemetry;

    #[test]
    fn emits_a_factored_similarity_and_never_densifies() {
        let inst = permuted_instance(5, 11);
        let _g = telemetry::install(false);
        let f = Fprop::default();
        let sim = f.similarity(&inst.source, &inst.target).unwrap();
        assert!(matches!(sim, Similarity::LowRank(_)), "FPROP must stay factored");
        let aligned = f.align(&inst.source, &inst.target).unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
        let t = telemetry::drain();
        assert_eq!(t.densifications, 0, "FPROP + NN must not densify");
    }

    #[test]
    fn recovers_an_asymmetric_permuted_graph() {
        // Hub with arms of distinct lengths: no automorphisms, so exact
        // recovery is well-defined.
        let mut edges = vec![];
        let mut next = 1;
        for arm in 1..=7 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 17);
        let aligned = Fprop::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.6, "FPROP accuracy on arm graph: {acc}");
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let inst = permuted_instance(5, 3);
        let f = Fprop::default();
        graphalign_par::set_max_threads(1);
        let a = f.align(&inst.source, &inst.target).unwrap();
        graphalign_par::set_max_threads(8);
        let b = f.align(&inst.source, &inst.target).unwrap();
        graphalign_par::set_max_threads(0);
        assert_eq!(a, b, "bit-identical at any thread count");
    }
}
