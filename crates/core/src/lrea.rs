//! LREA — Low-Rank EigenAlign (Nassar, Veldt, Mohammadi, Grama, Gleich
//! 2018), paper §3.4.
//!
//! EigenAlign scores an assignment `y` by `yᵀMy` where `M` weighs *overlaps*
//! (edge ↔ edge), *non-informative* pairs (non-edge ↔ non-edge) and
//! *conflicts* (edge ↔ non-edge); `M` decomposes into Kronecker products of
//! the adjacency matrices and all-ones matrices (Equation 7):
//!
//! ```text
//! maximize  X • (c₁ A X B + c₂ A X E + c₂ E X B + c₃ E X E),   ‖X‖_F = 1
//! ```
//!
//! LREA's insight is that the power iteration maximizing this relaxation
//! maps a rank-`k` iterate to rank `k + 3`, so the leading eigenvector can
//! be tracked **in factored form** `X = U Vᵀ` with periodic QR+SVD
//! compression — never materializing the `n × n` similarity matrix. The
//! alignment is extracted rank-by-rank (the "union of matchings") and
//! resolved with a sparse maximum-weight matching, per the authors.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::qr::thin_qr;
use graphalign_linalg::svd::thin_svd;
use graphalign_linalg::{CsrMatrix, DenseMatrix, LowRankKernel, LowRankSim, Similarity};
use graphalign_par::telemetry::{self, Convergence};

/// LREA with the study's tuned hyperparameters (Table 1: `iterations = 40`,
/// MWM native assignment).
#[derive(Debug, Clone)]
pub struct Lrea {
    /// Power iterations on the four-term operator.
    pub iterations: usize,
    /// Maximum retained rank of the factored iterate.
    pub max_rank: usize,
    /// EigenAlign pair weights `(overlap, non-informative, conflict)`.
    pub weights: (f64, f64, f64),
    /// Scale the overlap weight up with graph sparsity (EigenAlign's own
    /// prescription): in a graph of edge density `p`, matched non-edges
    /// outnumber matched edges by roughly `1/p`, so with a fixed overlap
    /// weight the non-informative term dominates the operator's spectrum
    /// and the leading eigenvector stops discriminating between
    /// alignments. See [`Lrea::effective_weights`].
    pub adaptive_overlap: bool,
    /// Candidates kept per rank when building the union of matchings.
    pub candidates_per_rank: usize,
}

impl Default for Lrea {
    fn default() -> Self {
        Self {
            iterations: 40,
            max_rank: 16,
            weights: (2.0, 1.0, 0.001),
            adaptive_overlap: true,
            candidates_per_rank: 0, // 0 = n (full sorted pairing per rank)
        }
    }
}

/// The factored iterate `X = U Vᵀ`.
struct Factors {
    u: DenseMatrix,
    v: DenseMatrix,
}

impl Lrea {
    /// The linear-combination coefficients of Equation 7 derived from the
    /// pair weights: with overlap `s₁`, non-informative `s₂`, conflict `s₃`,
    /// the per-pair weight `s₁·a·b + s₃·(a + b − 2ab) + s₂·(1−a)(1−b)`
    /// expands to `c₁·ab + c₂·(a + b) + c₃`.
    fn coefficients_of((s1, s2, s3): (f64, f64, f64)) -> (f64, f64, f64) {
        (s1 + s2 - 2.0 * s3, s3 - s2, s2)
    }

    /// The pair weights actually used for an instance. With
    /// [`Lrea::adaptive_overlap`] set, the overlap weight is raised to
    /// `4·(1−p)/p` (never lowered), where `p` is the mean edge density of
    /// the two graphs — the overlap-to-non-informative ratio the EigenAlign
    /// relaxation needs for the informative signal to survive in sparse
    /// graphs, where matched non-edges outnumber matched edges `1/p`-fold.
    pub fn effective_weights(&self, source: &Graph, target: &Graph) -> (f64, f64, f64) {
        let (s1, s2, s3) = self.weights;
        if !self.adaptive_overlap {
            return (s1, s2, s3);
        }
        let density = |g: &Graph| {
            let n = g.node_count().max(2) as f64;
            (2.0 * g.edge_count() as f64 / (n * (n - 1.0))).clamp(1e-9, 1.0)
        };
        let p = 0.5 * (density(source) + density(target));
        let alpha = 4.0 * (1.0 - p) / p;
        (s1.max(alpha), s2, s3)
    }

    /// One application of the four-term operator to the factored iterate,
    /// returning uncompressed factors of rank `k + 3`.
    fn apply_operator(
        &self,
        (c1, c2, c3): (f64, f64, f64),
        a: &CsrMatrix,
        b: &CsrMatrix,
        x: &Factors,
    ) -> Factors {
        let (n_a, n_b) = (a.rows(), b.rows());
        let ones_a = vec![1.0; n_a];
        let ones_b = vec![1.0; n_b];

        // The two sparse products A·U and B·V feed both the rank-k term and
        // the rank-1 terms; compute each once.
        let au_full = a.mul_dense(&x.u);
        let bv_full = b.mul_dense(&x.v);

        // Term 1: c₁ (A U)(B V)ᵀ — rank k.
        let au = au_full.scaled(c1);
        let bv = &bv_full;

        // Row sums of the factors, accumulated row-major (same ascending-row
        // per-column order as the former per-column extraction, without the
        // per-column copies).
        let mut vt1 = vec![0.0; x.v.cols()];
        for i in 0..n_b {
            for (acc, &val) in vt1.iter_mut().zip(x.v.row(i)) {
                *acc += val;
            }
        }
        let mut ut1 = vec![0.0; x.u.cols()];
        for i in 0..n_a {
            for (acc, &val) in ut1.iter_mut().zip(x.u.row(i)) {
                *acc += val;
            }
        }

        // Term 2: c₂ A X E = (A U (Vᵀ1)) 1ᵀ — rank 1.
        let t2_u: Vec<f64> =
            (0..n_a).map(|i| c2 * graphalign_linalg::vec_ops::dot(au_full.row(i), &vt1)).collect();

        // Term 3: c₂ E X B = 1 (B V (Uᵀ1))ᵀ — rank 1.
        let t3_v: Vec<f64> =
            (0..n_b).map(|j| c2 * graphalign_linalg::vec_ops::dot(bv_full.row(j), &ut1)).collect();

        // Term 4: c₃ E X E = (1ᵀ U)(Vᵀ 1) · 1 1ᵀ — rank 1.
        let total: f64 = ut1.iter().zip(&vt1).map(|(a, b)| a * b).sum();
        let t4 = c3 * total;

        // Assemble [AU·c₁ | t2_u | 1 | t4·1] and [BV | 1 | t3_v | 1].
        let k = x.u.cols();
        let mut u_new = DenseMatrix::zeros(n_a, k + 3);
        let mut v_new = DenseMatrix::zeros(n_b, k + 3);
        for i in 0..n_a {
            for c in 0..k {
                u_new.set(i, c, au.get(i, c));
            }
            u_new.set(i, k, t2_u[i]);
            u_new.set(i, k + 1, ones_a[i]);
            u_new.set(i, k + 2, t4 * ones_a[i]);
        }
        for j in 0..n_b {
            for c in 0..k {
                v_new.set(j, c, bv.get(j, c));
            }
            v_new.set(j, k, ones_b[j]);
            v_new.set(j, k + 1, t3_v[j]);
            v_new.set(j, k + 2, ones_b[j]);
        }
        Factors { u: u_new, v: v_new }
    }

    /// Compresses `X = U Vᵀ` back to rank ≤ `max_rank` via QR + small SVD,
    /// and normalizes `‖X‖_F = 1`. Also returns the retained (normalized)
    /// singular values — the iterate's spectral signature, whose change
    /// between iterations serves as the convergence residual.
    fn compress(&self, x: Factors) -> Result<(Factors, Vec<f64>), AlignError> {
        let qu = thin_qr(&x.u);
        let qv = thin_qr(&x.v);
        let core = qu.r.matmul_tr(&qv.r); // small (k+3) × (k+3)
        let svd = thin_svd(&core)?;
        let rank = svd
            .sigma
            .iter()
            .take(self.max_rank)
            .filter(|&&s| s > svd.sigma[0] * 1e-12)
            .count()
            .max(1);
        let norm: f64 = svd.sigma[..rank].iter().map(|s| s * s).sum::<f64>().sqrt();
        let mut u_small = DenseMatrix::zeros(svd.u.rows(), rank);
        let mut v_small = DenseMatrix::zeros(svd.v.rows(), rank);
        for c in 0..rank {
            let s = (svd.sigma[c] / norm).sqrt();
            for i in 0..svd.u.rows() {
                u_small.set(i, c, svd.u.get(i, c) * s);
            }
            for j in 0..svd.v.rows() {
                v_small.set(j, c, svd.v.get(j, c) * s);
            }
        }
        let sigmas: Vec<f64> = svd.sigma[..rank].iter().map(|s| s / norm).collect();
        Ok((Factors { u: qu.q.matmul(&u_small), v: qv.q.matmul(&v_small) }, sigmas))
    }

    /// Runs the factored power iteration and returns the final `(U, V)`.
    ///
    /// # Errors
    /// Propagates compression (SVD) failures.
    pub fn factors(
        &self,
        source: &Graph,
        target: &Graph,
    ) -> Result<(DenseMatrix, DenseMatrix), AlignError> {
        let a = source.adjacency();
        let b = target.adjacency();
        let n_a = source.node_count();
        let n_b = target.node_count();
        let coefs = Self::coefficients_of(self.effective_weights(source, target));
        let mut x = Factors {
            u: DenseMatrix::filled(n_a, 1, 1.0 / (n_a as f64).sqrt()),
            v: DenseMatrix::filled(n_b, 1, 1.0 / (n_b as f64).sqrt()),
        };
        // Fixed-schedule power iteration; the spectral-signature delta is
        // recorded so telemetry can tell whether the iterate had settled.
        const REPORT_TOL: f64 = 1e-9;
        let mut prev_sigmas: Vec<f64> = Vec::new();
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;
        for it in 0..self.iterations {
            crate::check_budget("lrea", it)?;
            let (compressed, sigmas) = self.compress(self.apply_operator(coefs, &a, &b, &x))?;
            x = compressed;
            let len = sigmas.len().max(prev_sigmas.len());
            last_delta = (0..len)
                .map(|c| {
                    let new = sigmas.get(c).copied().unwrap_or(0.0);
                    let old = prev_sigmas.get(c).copied().unwrap_or(0.0);
                    (new - old).abs()
                })
                .fold(0.0, f64::max);
            iterations = it + 1;
            telemetry::record_residual("lrea", last_delta);
            prev_sigmas = sigmas;
        }
        telemetry::record(
            "lrea",
            Convergence {
                iterations,
                residual: last_delta,
                converged: last_delta < REPORT_TOL,
                stop: graphalign_par::telemetry::StopReason::MaxIter,
            },
        );
        Ok((x.u, x.v))
    }

    /// The union-of-matchings candidate list: for each retained rank, source
    /// and target nodes are sorted by their factor scores and paired
    /// positionally (positives with positives, negatives with negatives),
    /// each candidate weighted by the product of its scores.
    pub fn candidates(&self, u: &DenseMatrix, v: &DenseMatrix) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        let per_rank =
            if self.candidates_per_rank == 0 { usize::MAX } else { self.candidates_per_rank };
        for c in 0..u.cols() {
            let mut su: Vec<(usize, f64)> = (0..u.rows()).map(|i| (i, u.get(i, c))).collect();
            let mut sv: Vec<(usize, f64)> = (0..v.rows()).map(|j| (j, v.get(j, c))).collect();
            su.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite factors"));
            sv.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite factors"));
            for (pos, (&(i, ui), &(j, vj))) in su.iter().zip(sv.iter()).enumerate() {
                if pos >= per_rank {
                    break;
                }
                let w = ui * vj;
                if w > 0.0 {
                    out.push((i, j, w));
                }
            }
        }
        out
    }
}

impl Aligner for Lrea {
    fn name(&self) -> &'static str {
        "LREA"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::Auction
    }

    /// LREA's similarity is the low-rank product `U Vᵀ` — returned factored
    /// (`Similarity::LowRank` with the dot kernel), never materialized here.
    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let (u, v) = self.factors(source, target)?;
        Ok(Similarity::LowRank(LowRankSim::new(u, v, LowRankKernel::Dot)))
    }

    /// The native auction route hands the solver the sparse union-of-matchings
    /// candidate list (as the LREA authors do) instead of scoring all of
    /// `U Vᵀ`.
    fn similarity_for(
        &self,
        source: &Graph,
        target: &Graph,
        method: AssignmentMethod,
    ) -> Result<Similarity, AlignError> {
        if method != AssignmentMethod::Auction {
            return self.similarity(source, target);
        }
        check_sizes(source, target)?;
        let (u, v) = self.factors(source, target)?;
        let cands = self.candidates(&u, &v);
        Ok(Similarity::Sparse(CsrMatrix::from_triplets(
            source.node_count(),
            target.node_count(),
            &cands,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    #[test]
    fn defaults_match_table1() {
        let l = Lrea::default();
        assert_eq!(l.iterations, 40);
        assert_eq!(l.native_assignment(), AssignmentMethod::Auction);
    }

    #[test]
    fn coefficients_expand_the_pair_weights() {
        let l = Lrea { weights: (2.0, 1.0, 0.0), ..Lrea::default() };
        let (c1, c2, c3) = Lrea::coefficients_of(l.weights);
        // weight(a,b) = 2ab + 0·(a+b−2ab) + 1·(1−a)(1−b)
        //             = 3ab − (a+b) + 1  → c₁=3, c₂=−1, c₃=1.
        assert_eq!((c1, c2, c3), (3.0, -1.0, 1.0));
        // Check the expansion on all binary pairs.
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                let direct = 2.0 * a * b + 1.0 * (1.0 - a) * (1.0 - b);
                let expanded = c1 * a * b + c2 * (a + b) + c3;
                assert!((direct - expanded).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expired_budget_interrupts() {
        let inst = permuted_instance(3, 4);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = Lrea::default().similarity(&inst.source, &inst.target).unwrap_err();
        assert!(err.is_interrupted(), "got {err}");
    }

    #[test]
    fn factored_iterate_matches_dense_power_iteration() {
        // On a tiny instance, compare the factored similarity against an
        // explicit dense iteration of the same operator.
        let inst = permuted_instance(2, 4);
        let l = Lrea { iterations: 5, max_rank: 32, adaptive_overlap: false, ..Lrea::default() };
        let (u, v) = l.factors(&inst.source, &inst.target).unwrap();
        let factored = u.matmul_tr(&v);

        let a = inst.source.adjacency().to_dense();
        let b = inst.target.adjacency().to_dense();
        let n_a = a.rows();
        let n_b = b.rows();
        let e_a = DenseMatrix::filled(n_a, n_a, 1.0);
        let e_b = DenseMatrix::filled(n_b, n_b, 1.0);
        let (c1, c2, c3) = Lrea::coefficients_of(l.weights);
        let mut x = DenseMatrix::filled(n_a, n_b, 1.0 / ((n_a * n_b) as f64).sqrt());
        for _ in 0..5 {
            let mut next = a.matmul(&x).matmul(&b).scaled(c1);
            next.add_scaled(c2, &a.matmul(&x).matmul(&e_b));
            next.add_scaled(c2, &e_a.matmul(&x).matmul(&b));
            next.add_scaled(c3, &e_a.matmul(&x).matmul(&e_b));
            let norm = next.frobenius_norm();
            next.scale_inplace(1.0 / norm);
            x = next;
        }
        // Same direction up to numerical error (both are unit-norm).
        let err = factored.sub(&x).max_abs().min(factored.add(&x).max_abs());
        assert!(err < 1e-6, "factored vs dense mismatch: {err}");
    }

    #[test]
    fn perfectly_aligns_isomorphic_graphs() {
        // The paper: "LREA consistently finds the correct alignment on
        // graphs with no noise".
        let inst = permuted_instance(6, 9);
        let aligned = Lrea::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.8, "LREA accuracy on isomorphic graphs: {acc}");
    }

    #[test]
    fn native_mwm_produces_a_permutation() {
        let inst = permuted_instance(5, 10);
        let aligned = Lrea::default().align(&inst.source, &inst.target).unwrap();
        let mut sorted = aligned.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..aligned.len()).collect::<Vec<_>>());
    }

    #[test]
    fn candidates_are_within_bounds() {
        let inst = permuted_instance(4, 11);
        let l = Lrea::default();
        let (u, v) = l.factors(&inst.source, &inst.target).unwrap();
        for (i, j, w) in l.candidates(&u, &v) {
            assert!(i < inst.source.node_count());
            assert!(j < inst.target.node_count());
            assert!(w > 0.0);
        }
    }
}
