//! GWL — Gromov–Wasserstein Learning (Xu, Luo, Zha, Carin 2019), paper §3.6.
//!
//! GWL aligns graphs by learning an optimal transport `T` between the node
//! measures of the two graphs, minimizing the Gromov–Wasserstein discrepancy
//! between their relational structures, *jointly* with node embeddings that
//! regularize the transport (Equation 11):
//!
//! ```text
//! min_{X_A, X_B} min_{T ∈ Π(μ,ν)}  ⟨L(C_A, C_B, T), T⟩  +  α⟨K(X_A, X_B), T⟩  +  β R(X_A, X_B)
//! ```
//!
//! The non-convex objective is solved in alternation: the transport is
//! updated with proximal-point Sinkhorn steps (Xie et al. 2020) on the GW
//! gradient cost, and the embeddings follow the transport by gradient
//! descent on the Wasserstein coupling term. With square loss the GW cost
//! factorizes as `L(C_A, C_B, T) = c − 2·C_A·T·C_Bᵀ` (the `O(n³)` products
//! that make GWL the slow, accurate end of the study's spectrum).
//!
//! Cost matrices `C` are the adjacency relations themselves, as in the
//! reference implementation for unweighted graphs.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::sinkhorn::{proximal_step, uniform_marginal, SinkhornParams};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity, Workspace};
use graphalign_par::telemetry::{self, Convergence};
use rand::prelude::*;
use rand::rngs::StdRng;

/// GWL with the study's tuned hyperparameters (Table 1: `epoch = 1`, NN
/// native assignment).
#[derive(Debug, Clone)]
pub struct Gwl {
    /// Training epochs (Table 1: 1). Each epoch runs `outer_iters` transport
    /// updates interleaved with embedding updates.
    pub epochs: usize,
    /// Proximal-point transport updates per epoch.
    pub outer_iters: usize,
    /// Weight `α` of the embedding (Wasserstein) coupling term.
    pub alpha: f64,
    /// Proximal regularization / Sinkhorn ε.
    pub beta: f64,
    /// Embedding dimensionality.
    pub emb_dim: usize,
    /// Embedding learning rate.
    pub lr: f64,
    /// Seed for embedding initialization.
    pub seed: u64,
}

impl Default for Gwl {
    fn default() -> Self {
        Self {
            epochs: 1,
            outer_iters: 30,
            alpha: 0.1,
            beta: 0.1,
            emb_dim: 16,
            lr: 0.5,
            seed: 0x69171,
        }
    }
}

impl Gwl {
    /// Learns the transport plan between the two graphs (the similarity
    /// matrix GWL hands to the assignment step).
    ///
    /// # Errors
    /// Propagates Sinkhorn failures.
    pub fn transport(&self, source: &Graph, target: &Graph) -> Result<DenseMatrix, AlignError> {
        self.transport_with_init(source, target, None)
    }

    /// [`Gwl::transport`] starting from an explicit initial coupling
    /// instead of the independent one. S-GWL passes feature-based couplings
    /// here so its leaf solves keep the global context its barycenter
    /// hierarchy would otherwise provide.
    ///
    /// # Errors
    /// Propagates Sinkhorn failures.
    ///
    /// # Panics
    /// Panics if `init`'s shape does not match the node counts.
    pub fn transport_with_init(
        &self,
        source: &Graph,
        target: &Graph,
        init: Option<&DenseMatrix>,
    ) -> Result<DenseMatrix, AlignError> {
        let n_a = source.node_count();
        let n_b = target.node_count();
        let ca: CsrMatrix = source.adjacency();
        let cb: CsrMatrix = target.adjacency();
        let mu = uniform_marginal(n_a);
        let nu = uniform_marginal(n_b);

        // Constant part of the square-loss GW gradient:
        // c = (C_A ∘ C_A) μ 1ᵀ + 1 ((C_B ∘ C_B) ν)ᵀ. For binary adjacency,
        // C ∘ C = C.
        let ca_mu = ca.mul_vec(&mu);
        let cb_nu = cb.mul_vec(&nu);
        let constant = DenseMatrix::from_fn(n_a, n_b, |i, j| ca_mu[i] + cb_nu[j]);

        // Embeddings, randomly initialized.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.emb_dim.min(n_a.min(n_b)).max(1);
        let mut xa = DenseMatrix::from_fn(n_a, d, |_, _| rng.random_range(-0.1..0.1));
        let mut xb = DenseMatrix::from_fn(n_b, d, |_, _| rng.random_range(-0.1..0.1));

        // Start from the provided coupling, or the independent one.
        let mut t = match init {
            Some(t0) => {
                assert_eq!(t0.shape(), (n_a, n_b), "transport_with_init: shape mismatch");
                t0.clone()
            }
            None => DenseMatrix::filled(n_a, n_b, 1.0 / (n_a * n_b) as f64),
        };
        let params = SinkhornParams { epsilon: self.beta, max_iter: 100, tol: 1e-7 };

        // Per-iteration products land in buffers reused across the whole
        // schedule; the fused `mul_csr_tr` kernel removes the two dense
        // transposes the cost assembly used to take every outer iteration.
        let mut ws = Workspace::new();
        let mut cat = DenseMatrix::zeros(n_a, n_b);
        let mut catc = DenseMatrix::zeros(n_a, n_b);
        let mut cost = DenseMatrix::zeros(n_a, n_b);
        let mut t_xb = DenseMatrix::zeros(n_a, d);
        let mut tt_xa = DenseMatrix::zeros(n_b, d);

        // GWL runs a fixed schedule of proximal updates; the transport delta
        // between outer iterations is recorded so telemetry can tell whether
        // the alternation had settled by the time the schedule ran out.
        const REPORT_TOL: f64 = 1e-6;
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;
        for epoch in 0..self.epochs {
            for outer in 0..self.outer_iters {
                crate::check_budget("gwl", epoch * self.outer_iters + outer)?;
                // GW gradient cost: c − 2 C_A T C_Bᵀ, plus the embedding
                // coupling α‖x_i − y_j‖².
                ca.mul_dense_into(&t, &mut cat); // n_A × n_B
                                                 // C_A T C_Bᵀ (C_B symmetric); form-selecting kernel, same
                                                 // size cutoff as the IsoRank loop, bit-identical either way.
                cat.mul_csr_tr_into_auto(&cb, &mut catc, &mut ws);
                constant.add_scaled_into(-2.0, &catc, &mut cost);
                if self.alpha > 0.0 {
                    let (xa_ref, xb_ref, alpha) = (&xa, &xb, self.alpha);
                    graphalign_par::for_each_row_block_mut(
                        cost.as_mut_slice(),
                        n_b.max(1),
                        n_b.max(1) * d,
                        |rows, block| {
                            for (off, row) in block.chunks_mut(n_b.max(1)).enumerate() {
                                let xi = xa_ref.row(rows.start + off);
                                for (j, o) in row.iter_mut().enumerate() {
                                    let k = graphalign_linalg::vec_ops::dist2_sq(xi, xb_ref.row(j));
                                    *o += alpha * k;
                                }
                            }
                        },
                    );
                }
                let (t_new, _) = proximal_step(&cost, &t, &mu, &nu, &params)?;
                last_delta = {
                    let (a, b) = (t_new.as_slice(), t.as_slice());
                    graphalign_par::sum_indexed(a.len(), 1, |i| (a[i] - b[i]).abs())
                };
                iterations = epoch * self.outer_iters + outer + 1;
                telemetry::record_residual("gwl", last_delta);
                t = t_new;

                // Embedding update: gradient step on ⟨K(X_A, X_B), T⟩, which
                // pulls x_i toward the transport-weighted barycenter of X_B
                // (and vice versa). T rows sum to 1/n_A.
                if self.alpha > 0.0 {
                    t.matmul_into(&xb, &mut t_xb, &mut ws); // n_A × d, rows scaled by 1/n_A
                    t.tr_matmul_into(&xa, &mut tt_xa, &mut ws); // n_B × d, rows scaled by 1/n_B
                    for i in 0..n_a {
                        for c in 0..d {
                            let bary = t_xb.get(i, c) * n_a as f64;
                            let cur = xa.get(i, c);
                            xa.set(i, c, cur + self.lr * (bary - cur));
                        }
                    }
                    for j in 0..n_b {
                        for c in 0..d {
                            let bary = tt_xa.get(j, c) * n_b as f64;
                            let cur = xb.get(j, c);
                            xb.set(j, c, cur + self.lr * (bary - cur));
                        }
                    }
                }
            }
        }
        // The schedule always runs to completion; `converged` reports whether
        // the transport had stopped moving by the end.
        telemetry::record(
            "gwl",
            Convergence {
                iterations,
                residual: last_delta,
                converged: last_delta < REPORT_TOL,
                stop: graphalign_par::telemetry::StopReason::MaxIter,
            },
        );
        Ok(t)
    }
}

impl Aligner for Gwl {
    fn name(&self) -> &'static str {
        "GWL"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::NearestNeighbor
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        Ok(Similarity::Dense(self.transport(source, target)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::{accuracy, s3};

    fn fast_gwl() -> Gwl {
        Gwl { outer_iters: 15, ..Gwl::default() }
    }

    #[test]
    fn defaults_match_table1() {
        let g = Gwl::default();
        assert_eq!(g.epochs, 1);
        assert_eq!(g.native_assignment(), AssignmentMethod::NearestNeighbor);
    }

    #[test]
    fn transport_has_uniform_marginals() {
        let inst = permuted_instance(4, 13);
        let t = fast_gwl().transport(&inst.source, &inst.target).unwrap();
        let n = inst.source.node_count() as f64;
        for i in 0..t.rows() {
            let row_sum: f64 = t.row(i).iter().sum();
            assert!((row_sum - 1.0 / n).abs() < 5e-3, "row {i} sum {row_sum}");
        }
    }

    #[test]
    fn recovers_structure_on_skewed_degree_graph() {
        // GWL's strength per the paper: power-law-like degree structure.
        use graphalign_graph::permutation::AlignmentInstance;
        let mut edges = vec![];
        let mut next = 1;
        for arm in 1..=6 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        // Densify the hub region so the transport has signal.
        edges.push((1, 2));
        edges.push((2, 4));
        edges.push((4, 7));
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 17);
        let aligned = fast_gwl()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let structural = s3(&inst.source, &inst.target, &aligned);
        assert!(structural > 0.25, "GWL S3 on asymmetric graph: {structural}");
    }

    #[test]
    fn isomorphic_triangle_rings() {
        let inst = permuted_instance(5, 19);
        let aligned = fast_gwl()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        // GW on small symmetric-ish graphs is hard; just demand clear
        // better-than-random behaviour (random ≈ 1/18 ≈ 5.5%).
        assert!(acc > 0.15, "GWL accuracy: {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = permuted_instance(3, 23);
        let g = fast_gwl();
        assert_eq!(
            g.align(&inst.source, &inst.target).unwrap(),
            g.align(&inst.source, &inst.target).unwrap()
        );
    }

    #[test]
    fn expired_budget_interrupts() {
        let inst = permuted_instance(3, 23);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = fast_gwl().transport(&inst.source, &inst.target).unwrap_err();
        assert!(err.is_interrupted(), "got {err}");
    }
}
