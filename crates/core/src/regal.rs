//! REGAL — REpresentation learning-based Graph ALignment (Heimann, Shen,
//! Safavi, Koutra 2018), paper §3.5.
//!
//! REGAL's xNetMF embedding works in three steps:
//!
//! 1. **Structural identity**: each node gets a histogram of the
//!    (log-bucketed) degrees of its `K`-hop neighborhoods, discounted by
//!    `δ^{k−1}` (Equation 8). We run the study's `K = 2`.
//! 2. **Nyström cross-embedding**: `p = 10·log₂ n` landmark nodes are drawn
//!    from both graphs; the node-to-landmark similarity matrix `C`
//!    (Equation 9 with `γ_s = 1`, attributes disabled) and the
//!    pseudo-inverse of the landmark block `W` give embeddings
//!    `Y = C·U·Σ^{−1/2}` without ever forming the full similarity matrix.
//! 3. **Alignment**: greedy nearest-neighbor matching of the embeddings via
//!    a k-d tree (Equation 10) — the study then restricts REGAL to
//!    one-to-one outputs with SG/JV on the same embedding similarity.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::svd::thin_svd;
use graphalign_linalg::{DenseMatrix, LowRankKernel, LowRankSim, Similarity};
use rand::prelude::*;
use rand::rngs::StdRng;

/// REGAL with the study's tuned hyperparameters (Table 1: `K = 2`,
/// `p = 10·log₂ n`, NN native assignment).
#[derive(Debug, Clone)]
pub struct Regal {
    /// Neighborhood radius `K` (Equation 8).
    pub k_hops: usize,
    /// Per-hop discount factor `δ`.
    pub discount: f64,
    /// Structural similarity weight `γ_s` (Equation 9).
    pub gamma_struct: f64,
    /// Landmark count override; `None` uses the paper's `10·log₂ n`.
    pub landmarks: Option<usize>,
    /// Seed for landmark selection.
    pub seed: u64,
}

impl Default for Regal {
    fn default() -> Self {
        Self { k_hops: 2, discount: 0.1, gamma_struct: 1.0, landmarks: None, seed: 0x2e6a1 }
    }
}

impl Regal {
    /// Structural feature vectors (log-bucketed `K`-hop degree histograms)
    /// for every node of `g`, with `buckets` histogram cells — the shared
    /// [`crate::features`] descriptor parameterized by this REGAL instance.
    pub fn features(&self, g: &Graph, buckets: usize) -> DenseMatrix {
        let params =
            crate::features::FeatureParams { k_hops: self.k_hops, discount: self.discount };
        crate::features::structural_features(g, &params, buckets)
    }

    /// The xNetMF embeddings of both graphs: `(Y_A, Y_B)` with `p`
    /// dimensions each, rows L2-normalized.
    ///
    /// # Errors
    /// Propagates SVD failures on the landmark block.
    pub fn embeddings(
        &self,
        source: &Graph,
        target: &Graph,
    ) -> Result<(DenseMatrix, DenseMatrix), AlignError> {
        let n_a = source.node_count();
        let n_b = target.node_count();
        let total = n_a + n_b;
        let max_deg = source.max_degree().max(target.max_degree()).max(1);
        let buckets = (max_deg as f64).log2().floor() as usize + 1;
        let fa = self.features(source, buckets);
        let fb = self.features(target, buckets);
        let all = fa.vstack(&fb);

        let p = self
            .landmarks
            .unwrap_or_else(|| (10.0 * (total.max(2) as f64).log2()).round() as usize)
            .clamp(1, total);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ids: Vec<usize> = (0..total).collect();
        ids.shuffle(&mut rng);
        let landmarks: Vec<usize> = ids.into_iter().take(p).collect();

        // C: node-to-landmark similarity (Equation 9, attributes off),
        // computed in parallel over node rows.
        let c = DenseMatrix::par_from_fn(total, p, |i, l| {
            let d2 = graphalign_linalg::vec_ops::dist2_sq(all.row(i), all.row(landmarks[l]));
            (-self.gamma_struct * d2).exp()
        });
        // W: landmark-to-landmark block; embeddings Y = C · U · Σ^{−1/2}.
        let w = c.select_rows(&landmarks);
        let svd = thin_svd(&w).map_err(AlignError::Numerical)?;
        let cutoff = svd.sigma.first().copied().unwrap_or(0.0) * 1e-7;
        let rank = svd.sigma.iter().filter(|&&s| s > cutoff).count().max(1);
        let mut u_scaled = DenseMatrix::zeros(p, rank);
        for j in 0..rank {
            let scale = 1.0 / svd.sigma[j].sqrt();
            for i in 0..p {
                u_scaled.set(i, j, svd.u.get(i, j) * scale);
            }
        }
        let mut y = c.matmul(&u_scaled);
        y.normalize_rows();

        // Split back into the two graphs.
        let ya = y.select_rows(&(0..n_a).collect::<Vec<_>>());
        let yb = y.select_rows(&(n_a..total).collect::<Vec<_>>());
        Ok((ya, yb))
    }
}

impl Aligner for Regal {
    fn name(&self) -> &'static str {
        "REGAL"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::NearestNeighbor
    }

    /// REGAL's similarity stays factored: `sim(u, v) = exp(−‖Y_A[u] −
    /// Y_B[v]‖²)` (Equation 10) over the xNetMF embeddings, carried as
    /// `O(n · p)` factors instead of the `n × n` matrix. The assignment layer
    /// runs NN through the k-d tree directly on the factors — REGAL's native
    /// extraction — and densifies only for the LAP solvers.
    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let (ya, yb) = self.embeddings(source, target)?;
        Ok(Similarity::LowRank(LowRankSim::new(ya, yb, LowRankKernel::ExpNegSqDist)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::{accuracy, mnc};

    #[test]
    fn defaults_match_table1() {
        let r = Regal::default();
        assert_eq!(r.k_hops, 2);
        assert_eq!(r.native_assignment(), AssignmentMethod::NearestNeighbor);
    }

    #[test]
    fn embeddings_have_matching_dimensions_and_unit_rows() {
        let inst = permuted_instance(5, 4);
        let (ya, yb) = Regal::default().embeddings(&inst.source, &inst.target).unwrap();
        assert_eq!(ya.cols(), yb.cols());
        assert_eq!(ya.rows(), inst.source.node_count());
        for i in 0..ya.rows() {
            let norm = graphalign_linalg::vec_ops::norm2(ya.row(i));
            assert!(norm < 1.0 + 1e-9, "rows must be normalized, got {norm}");
        }
    }

    #[test]
    fn structurally_aligned_nodes_get_consistent_neighborhoods() {
        // REGAL embeds structure, not identity: isomorphic twins share
        // features, so NN may tie-break arbitrarily among them. MNC is the
        // right structural yardstick here.
        let inst = permuted_instance(6, 9);
        let aligned = Regal::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let score = mnc(&inst.source, &inst.target, &aligned);
        assert!(score > 0.3, "REGAL MNC on isomorphic graphs: {score}");
    }

    #[test]
    fn native_nn_and_matrix_nn_agree() {
        let inst = permuted_instance(4, 10);
        let r = Regal::default();
        let native = r.align(&inst.source, &inst.target).unwrap();
        let via_matrix = {
            let sim = r.similarity(&inst.source, &inst.target).unwrap();
            graphalign_assignment::assign(&sim, AssignmentMethod::NearestNeighbor)
        };
        // Both take the closest embedding; distances tie only on exact
        // duplicates, where either answer is fine — compare distances
        // instead of indices.
        let (ya, yb) = r.embeddings(&inst.source, &inst.target).unwrap();
        for i in 0..native.len() {
            let d1 = graphalign_linalg::vec_ops::dist2_sq(ya.row(i), yb.row(native[i]));
            let d2 = graphalign_linalg::vec_ops::dist2_sq(ya.row(i), yb.row(via_matrix[i]));
            assert!((d1 - d2).abs() < 1e-9, "node {i}: {d1} vs {d2}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = permuted_instance(4, 12);
        let r = Regal::default();
        let a = r.align(&inst.source, &inst.target).unwrap();
        let b = r.align(&inst.source, &inst.target).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_distinct_graph_aligns_well() {
        // A star-of-paths graph where every node has a unique 2-hop profile.
        use graphalign_graph::permutation::AlignmentInstance;
        let mut edges = vec![];
        // Central hub 0 with arms of distinct lengths.
        let mut next = 1;
        for arm in 1..=6 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 77);
        let aligned = Regal::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.2, "REGAL accuracy on arm graph: {acc}");
    }
}
