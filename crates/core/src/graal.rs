//! GRAAL — GRAph ALigner (Kuchaiev, Milenković, Memišević, Hayes, Pržulj
//! 2010), paper §3.2.
//!
//! GRAAL is a greedy seed-and-extend aligner over graphlet-degree
//! signatures:
//!
//! 1. **Signatures**: each node's graphlet-degree vector (exact orbit
//!    counts, `graphalign-graph::graphlets`) yields a signature similarity
//!    `S(u, v)`;
//! 2. **Costs** (Equation 2): `C[u][v] = 2 − ((1 − α)·degree-term + α·S)`,
//!    blending signature similarity with normalized degrees;
//! 3. **Seed and extend**: repeatedly pick the cheapest unmatched pair as a
//!    seed, then align the BFS spheres around the two seeds radius by
//!    radius, greedily matching cheapest pairs within each sphere — this
//!    matching is integral to GRAAL ("GRAAL performs SG integrally,
//!    rendering the adaptation to other methods hard", §6.2), so
//!    [`Aligner::align`] runs it regardless of the requested method, while
//!    [`Aligner::similarity`] still exposes `2 − C` for the level-playing-
//!    field experiments.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::graphlets::graphlet_degrees;
use graphalign_graph::graphlets5::graphlet_degrees_5;
use graphalign_graph::traversal::bfs_ring;
use graphalign_graph::Graph;
use graphalign_linalg::{DenseMatrix, Similarity};

/// GRAAL with the study's tuned hyperparameters (Table 1: `α = 0.8`,
/// SortGreedy-style integral assignment).
#[derive(Debug, Clone)]
pub struct Graal {
    /// Weight of the signature term vs the degree term in Equation 2.
    pub alpha: f64,
    /// Maximum BFS radius explored around each seed pair.
    pub max_radius: usize,
    /// Use the full 73-orbit dictionary (graphlets on ≤ 5 nodes) instead of
    /// the 15-orbit one. This is production GRAAL's configuration, at the
    /// `O(n·Δ⁴)` preprocessing cost that earns GRAAL its `O(n⁵)` reputation;
    /// the default sticks to ≤ 4-node orbits so GRAAL stays runnable across
    /// the benchmark grid (DESIGN.md §3).
    pub full_dictionary: bool,
}

impl Default for Graal {
    fn default() -> Self {
        Self { alpha: 0.8, max_radius: 4, full_dictionary: false }
    }
}

impl Graal {
    /// Production GRAAL: the full 73-orbit graphlet dictionary.
    pub fn with_full_dictionary() -> Self {
        Self { full_dictionary: true, ..Self::default() }
    }
}

impl Graal {
    /// The cost matrix of Equation 2 (lower = better match).
    pub fn costs(&self, source: &Graph, target: &Graph) -> DenseMatrix {
        let max_a = source.max_degree().max(1) as f64;
        let max_b = target.max_degree().max(1) as f64;
        let deg_term = |u: usize, v: usize| {
            (source.degree(u) as f64 + target.degree(v) as f64) / (max_a + max_b)
        };
        if self.full_dictionary {
            let sig_a = graphlet_degrees_5(source);
            let sig_b = graphlet_degrees_5(target);
            DenseMatrix::from_fn(source.node_count(), target.node_count(), |u, v| {
                let sig = sig_a.similarity(u, &sig_b, v);
                2.0 - ((1.0 - self.alpha) * deg_term(u, v) + self.alpha * sig)
            })
        } else {
            let sig_a = graphlet_degrees(source);
            let sig_b = graphlet_degrees(target);
            DenseMatrix::from_fn(source.node_count(), target.node_count(), |u, v| {
                let sig = sig_a.similarity(u, &sig_b, v);
                2.0 - ((1.0 - self.alpha) * deg_term(u, v) + self.alpha * sig)
            })
        }
    }

    /// The integral seed-and-extend matching over a cost matrix.
    fn seed_and_extend(&self, source: &Graph, target: &Graph, costs: &DenseMatrix) -> Vec<usize> {
        let n_a = source.node_count();
        let n_b = target.node_count();
        let mut matched_a = vec![false; n_a];
        let mut matched_b = vec![false; n_b];
        let mut out = vec![usize::MAX; n_a];
        let mut remaining = n_a;

        // Greedy matcher within two candidate sets.
        let match_sets = |set_a: &[usize],
                          set_b: &[usize],
                          matched_a: &mut Vec<bool>,
                          matched_b: &mut Vec<bool>,
                          out: &mut Vec<usize>,
                          remaining: &mut usize| {
            let mut pairs: Vec<(usize, usize)> = set_a
                .iter()
                .flat_map(|&u| set_b.iter().map(move |&v| (u, v)))
                .filter(|&(u, v)| !matched_a[u] && !matched_b[v])
                .collect();
            pairs.sort_by(|&(u1, v1), &(u2, v2)| {
                costs.get(u1, v1).partial_cmp(&costs.get(u2, v2)).expect("finite costs")
            });
            for (u, v) in pairs {
                if matched_a[u] || matched_b[v] {
                    continue;
                }
                matched_a[u] = true;
                matched_b[v] = true;
                out[u] = v;
                *remaining -= 1;
            }
        };

        while remaining > 0 {
            // Seed: cheapest unmatched pair.
            let mut best: Option<(usize, usize, f64)> = None;
            for u in 0..n_a {
                if matched_a[u] {
                    continue;
                }
                for v in 0..n_b {
                    if matched_b[v] {
                        continue;
                    }
                    let c = costs.get(u, v);
                    if best.is_none_or(|(_, _, bc)| c < bc) {
                        best = Some((u, v, c));
                    }
                }
            }
            let Some((su, sv, _)) = best else { break };
            matched_a[su] = true;
            matched_b[sv] = true;
            out[su] = sv;
            remaining -= 1;
            // Extend: align BFS spheres of equal radius around the seeds.
            for radius in 1..=self.max_radius {
                let ring_a = bfs_ring(source, su, radius);
                let ring_b = bfs_ring(target, sv, radius);
                if ring_a.is_empty() || ring_b.is_empty() {
                    break;
                }
                match_sets(
                    &ring_a,
                    &ring_b,
                    &mut matched_a,
                    &mut matched_b,
                    &mut out,
                    &mut remaining,
                );
            }
        }
        out
    }
}

impl Aligner for Graal {
    fn name(&self) -> &'static str {
        "GRAAL"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::SortGreedy
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        // Similarity = 2 − cost ∈ [0, 2], so external assignment methods can
        // still consume GRAAL's scoring.
        let mut sim = self.costs(source, target);
        sim.map_inplace(|c| 2.0 - c);
        Ok(Similarity::Dense(sim))
    }

    /// GRAAL's matching is integral: the native path always runs
    /// seed-and-extend. Every other method delegates to
    /// [`crate::generic_align_with`] so phase timing stays uniform.
    fn align_with(
        &self,
        source: &Graph,
        target: &Graph,
        method: AssignmentMethod,
    ) -> Result<Vec<usize>, AlignError> {
        check_sizes(source, target)?;
        if method == AssignmentMethod::SortGreedy {
            let costs =
                graphalign_par::telemetry::time_phase("similarity", || self.costs(source, target));
            return Ok(graphalign_par::telemetry::time_phase("assignment", || {
                self.seed_and_extend(source, target, &costs)
            }));
        }
        crate::generic_align_with(self, source, target, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::{accuracy, s3};

    #[test]
    fn defaults_match_table1() {
        let g = Graal::default();
        assert_eq!(g.alpha, 0.8);
        assert_eq!(g.native_assignment(), AssignmentMethod::SortGreedy);
    }

    #[test]
    fn costs_are_in_range() {
        let inst = permuted_instance(4, 1);
        let c = Graal::default().costs(&inst.source, &inst.target);
        for v in c.as_slice() {
            assert!((0.0..=2.0).contains(v), "cost {v} outside [0, 2]");
        }
    }

    #[test]
    fn identical_nodes_have_minimal_cost() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = Graal::default().costs(&g, &g);
        // The diagonal (self-pairs) must not be beaten by structurally
        // different pairs in the same row.
        for u in 0..4 {
            for v in 0..4 {
                if g.degree(u) != g.degree(v) {
                    assert!(c.get(u, u) <= c.get(u, v) + 1e-12, "self-cost of {u} beaten by {v}");
                }
            }
        }
    }

    #[test]
    fn aligns_permuted_isomorphic_graph() {
        let inst = permuted_instance(6, 2);
        let aligned = Graal::default().align(&inst.source, &inst.target).unwrap();
        let structural = s3(&inst.source, &inst.target, &aligned);
        assert!(structural > 0.4, "GRAAL S3 on isomorphic graphs: {structural}");
    }

    #[test]
    fn alignment_is_a_permutation() {
        let inst = permuted_instance(5, 3);
        let aligned = Graal::default().align(&inst.source, &inst.target).unwrap();
        let mut sorted = aligned.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..aligned.len()).collect::<Vec<_>>());
    }

    #[test]
    fn aligns_asymmetric_graph_accurately() {
        use graphalign_graph::permutation::AlignmentInstance;
        // Hub with arms of distinct lengths plus triangles on two arms to
        // give the graphlet signatures traction.
        let mut edges = vec![];
        let mut next = 1;
        let mut arm_ends = vec![];
        for arm in 1..=5 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
            arm_ends.push(prev);
        }
        edges.push((arm_ends[3], arm_ends[4]));
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 13);
        let aligned = Graal::default().align(&inst.source, &inst.target).unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.4, "GRAAL accuracy on asymmetric graph: {acc}");
    }

    #[test]
    fn full_dictionary_is_at_least_as_discriminative() {
        // The 73-orbit dictionary must not lose to the 15-orbit one on a
        // clean instance (production GRAAL's configuration).
        let inst = permuted_instance(6, 2);
        let small = Graal::default().align(&inst.source, &inst.target).unwrap();
        let full = Graal::with_full_dictionary().align(&inst.source, &inst.target).unwrap();
        let acc_small = accuracy(&small, &inst.ground_truth);
        let acc_full = accuracy(&full, &inst.ground_truth);
        assert!(
            acc_full >= acc_small - 0.1,
            "73-orbit GRAAL should not lose: {acc_full} vs {acc_small}"
        );
    }

    #[test]
    fn external_assignment_methods_work_on_graal_similarity() {
        let inst = permuted_instance(4, 7);
        let aligned = Graal::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
    }
}
