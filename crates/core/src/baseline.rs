//! A deliberately simple baseline: degree-profile matching.
//!
//! Not part of the paper's nine algorithms — this is the sanity floor the
//! harness uses to confirm that the real methods extract structural signal
//! beyond first-order degree statistics. It scores node pairs solely by the
//! §6.1 degree similarity plus a one-hop degree-histogram distance, i.e.
//! exactly the information IsoRank's *prior* contains, with no propagation.
//! Any algorithm that cannot beat this on a benchmark is not using the
//! topology.

use crate::prior::degree_similarity;
use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::{DenseMatrix, Similarity};

/// Degree-profile matcher: similarity from node degrees and sorted neighbor
/// degrees only.
#[derive(Debug, Clone, Default)]
pub struct DegreeBaseline;

/// Sorted neighbor-degree profile of every node.
fn profiles(g: &Graph) -> Vec<Vec<usize>> {
    (0..g.node_count())
        .map(|v| {
            let mut p: Vec<usize> = g.neighbors(v).iter().map(|&u| g.degree(u)).collect();
            p.sort_unstable();
            p
        })
        .collect()
}

/// Similarity of two sorted degree profiles: mean pairwise degree
/// similarity over the aligned prefix, discounted by the length mismatch.
fn profile_similarity(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let k = a.len().min(b.len());
    if k == 0 {
        return 0.0;
    }
    let matched: f64 =
        a.iter().zip(b.iter()).map(|(&x, &y)| degree_similarity(x, y)).sum::<f64>() / k as f64;
    let coverage = k as f64 / a.len().max(b.len()) as f64;
    matched * coverage
}

impl Aligner for DegreeBaseline {
    fn name(&self) -> &'static str {
        "DegreeBaseline"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::JonkerVolgenant
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let pa = profiles(source);
        let pb = profiles(target);
        Ok(Similarity::Dense(DenseMatrix::from_fn(
            source.node_count(),
            target.node_count(),
            |u, v| {
                0.5 * degree_similarity(source.degree(u), target.degree(v))
                    + 0.5 * profile_similarity(&pa[u], &pb[v])
            },
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    #[test]
    fn profile_similarity_bounds_and_identity() {
        assert_eq!(profile_similarity(&[], &[]), 1.0);
        assert_eq!(profile_similarity(&[], &[3]), 0.0);
        assert_eq!(profile_similarity(&[2, 3], &[2, 3]), 1.0);
        let s = profile_similarity(&[1, 5], &[1, 5, 9]);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn matches_by_degree_on_heterogeneous_graph() {
        use graphalign_graph::permutation::AlignmentInstance;
        // Hub-and-arms: degrees are distinctive.
        let mut edges = vec![];
        let mut next = 1;
        for arm in 1..=6 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 3);
        let aligned = DegreeBaseline.align(&inst.source, &inst.target).unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.1, "baseline should beat random: {acc}");
    }

    #[test]
    fn real_algorithms_beat_the_baseline() {
        // GRASP must dominate the degree floor on a structured instance.
        let inst = permuted_instance(6, 5);
        let baseline = DegreeBaseline
            .align(&inst.source, &inst.target)
            .map(|a| accuracy(&a, &inst.ground_truth))
            .unwrap();
        let grasp = crate::grasp::Grasp { q: 30, ..Default::default() }
            .align(&inst.source, &inst.target)
            .map(|a| accuracy(&a, &inst.ground_truth))
            .unwrap();
        assert!(
            grasp >= baseline,
            "GRASP ({grasp}) should not lose to the degree baseline ({baseline})"
        );
    }
}
