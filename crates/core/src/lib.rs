//! # graphalign
//!
//! Unrestricted graph alignment: a Rust implementation of the nine
//! algorithms evaluated in *"Comprehensive Evaluation of Algorithms for
//! Unrestricted Graph Alignment"* (Skitsas, Orłowski, Hermanns, Mottin,
//! Karras — EDBT 2023), behind one uniform [`Aligner`] interface so any
//! similarity notion can be paired with any assignment method — the paper's
//! "level playing field" (§6.2).
//!
//! | module | algorithm | year | similarity notion |
//! |---|---|---|---|
//! | [`isorank`] | IsoRank | 2008 | PageRank-style neighborhood similarity |
//! | [`graal`] | GRAAL | 2010 | graphlet-degree signatures + seed-and-extend |
//! | [`nsd`] | NSD | 2011 | decomposed IsoRank power series |
//! | [`lrea`] | LREA | 2018 | low-rank EigenAlign |
//! | [`regal`] | REGAL | 2018 | xNetMF structural embeddings (Nyström) |
//! | [`gwl`] | GWL | 2019 | Gromov–Wasserstein learning |
//! | [`sgwl`] | S-GWL | 2019 | recursive Gromov–Wasserstein partitioning |
//! | [`cone`] | CONE | 2020 | proximity embeddings + Wasserstein–Procrustes |
//! | [`grasp`] | GRASP | 2021 | Laplacian spectra + heat-kernel functional maps |
//!
//! ## Quick start
//!
//! ```
//! use graphalign::{registry, Aligner};
//! use graphalign_graph::Graph;
//! use graphalign_graph::permutation::AlignmentInstance;
//! use graphalign_metrics::accuracy;
//!
//! // A ring of triangles with a pendant path (the path breaks the ring's
//! // rotational symmetry so the alignment is unique), aligned against a
//! // shuffled copy of itself.
//! let mut edges: Vec<(usize, usize)> = (0..10)
//!     .flat_map(|i| {
//!         let a = 3 * i;
//!         [(a, a + 1), (a + 1, a + 2), (a, a + 2), (a + 2, (a + 3) % 30)]
//!     })
//!     .collect();
//! edges.extend([(0, 30), (30, 31), (31, 32)]);
//! let g = Graph::from_edges(33, &edges);
//! let instance = AlignmentInstance::permuted(g, 2);
//!
//! let grasp = graphalign::grasp::Grasp::default();
//! let alignment = grasp.align(&instance.source, &instance.target).unwrap();
//! assert!(accuracy(&alignment, &instance.ground_truth) > 0.8);
//! # let _ = registry();
//! ```

// The algorithm implementations transcribe index-coupled formulas from the
// respective papers (heat-kernel sums, factored operators, sphere matching);
// explicit indices keep the code aligned with the published notation.
#![allow(clippy::needless_range_loop)]

pub mod baseline;
pub mod cone;
pub mod features;
pub mod fprop;
pub mod graal;
pub mod grasp;
pub mod gwl;
pub mod isorank;
pub mod lrea;
pub mod multi;
pub mod netalign;
pub mod nsd;
pub mod prior;
pub mod regal;
pub mod sgwl;

use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_linalg::{LinalgError, Similarity};

/// Errors produced by alignment algorithms.
#[derive(Debug)]
pub enum AlignError {
    /// The instance shape is unsupported (e.g. more source than target
    /// nodes for a one-to-one method, or an empty graph).
    BadInstance(String),
    /// A numerical subroutine failed.
    Numerical(LinalgError),
    /// The algorithm was stopped cooperatively by the cell execution budget
    /// ([`graphalign_par::budget`]). The harness records these as timeouts
    /// rather than numerical failures.
    Interrupted {
        /// Name of the routine (or algorithm loop) that was interrupted.
        routine: &'static str,
        /// Outer iterations completed before the budget expired.
        iterations: usize,
    },
}

impl AlignError {
    /// Whether this error reports a cooperative budget interruption.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, AlignError::Interrupted { .. })
    }
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::BadInstance(msg) => write!(f, "bad alignment instance: {msg}"),
            AlignError::Numerical(e) => write!(f, "numerical failure: {e}"),
            AlignError::Interrupted { routine, iterations } => {
                write!(f, "{routine}: interrupted by cell budget after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for AlignError {}

impl From<LinalgError> for AlignError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Interrupted { routine, iterations } => {
                AlignError::Interrupted { routine, iterations }
            }
            other => AlignError::Numerical(other),
        }
    }
}

/// Returns `Err(Interrupted)` when the current cell budget has expired; the
/// algorithms call this once per outer iteration so a runaway cell winds
/// down between iterations instead of being killed from outside. The
/// interruption is also reported to the telemetry sink.
pub(crate) fn check_budget(routine: &'static str, iterations: usize) -> Result<(), AlignError> {
    if graphalign_par::budget::exceeded() {
        graphalign_par::telemetry::record(
            routine,
            graphalign_par::telemetry::Convergence::interrupted(iterations, 0.0),
        );
        Err(AlignError::Interrupted { routine, iterations })
    } else {
        Ok(())
    }
}

/// A graph-alignment algorithm.
///
/// Implementors provide a node [`Similarity`] — the pipeline currency — in
/// whichever representation the algorithm naturally produces: embedding
/// methods (REGAL, CONE, GRASP, LREA) return implicit factored
/// `Similarity::LowRank` values, LREA's native auction route returns
/// `Similarity::Sparse` candidates, and the remaining algorithms return the
/// `Similarity::Dense` matrix they compute anyway. The final matching is
/// extracted by an [`AssignmentMethod`] — by default the one the original
/// paper proposed ([`Aligner::native_assignment`]), but any method can be
/// substituted via [`Aligner::align_with`], which is how the study levels
/// the playing field. GRAAL, whose seed-and-extend matching is integral to
/// the algorithm, overrides [`Aligner::align_with`] for SG only (paper §6.2:
/// "GRAAL performs SG integrally, rendering the adaptation to other methods
/// hard").
pub trait Aligner {
    /// Canonical algorithm name as used in the paper.
    fn name(&self) -> &'static str;

    /// The assignment method the algorithm's authors proposed (Table 1).
    fn native_assignment(&self) -> AssignmentMethod;

    /// Computes the node similarity (`source.node_count()` ×
    /// `target.node_count()`, higher = more similar) in the algorithm's
    /// preferred representation.
    ///
    /// # Errors
    /// Implementation-specific; see each algorithm module.
    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError>;

    /// The similarity representation tailored to a specific assignment
    /// method. Defaults to [`Aligner::similarity`]; algorithms whose native
    /// assignment consumes a different representation (LREA and NetAlign
    /// hand the auction a sparse candidate set instead of a dense matrix)
    /// override this.
    ///
    /// # Errors
    /// Propagates [`Aligner::similarity`] failures.
    fn similarity_for(
        &self,
        source: &Graph,
        target: &Graph,
        method: AssignmentMethod,
    ) -> Result<Similarity, AlignError> {
        let _ = method;
        self.similarity(source, target)
    }

    /// Aligns with an explicit assignment method.
    ///
    /// This default is the **only** place the pipeline's "similarity" and
    /// "assignment" phases are timed; algorithm-specific overrides (GRAAL's
    /// seed-and-extend) must route every other method back here so phase
    /// telemetry stays uniform.
    ///
    /// # Errors
    /// Propagates [`Aligner::similarity`] failures.
    fn align_with(
        &self,
        source: &Graph,
        target: &Graph,
        method: AssignmentMethod,
    ) -> Result<Vec<usize>, AlignError> {
        generic_align_with(self, source, target, method)
    }

    /// Aligns with the algorithm's native assignment method.
    ///
    /// # Errors
    /// Propagates [`Aligner::similarity`] failures.
    fn align(&self, source: &Graph, target: &Graph) -> Result<Vec<usize>, AlignError> {
        self.align_with(source, target, self.native_assignment())
    }
}

/// The shared similarity-then-assignment pipeline behind
/// [`Aligner::align_with`]: the **only** place the "similarity" and
/// "assignment" phases are timed. Overriding aligners (GRAAL) call this for
/// every method they don't handle natively, so phase telemetry stays uniform
/// across the registry.
///
/// # Errors
/// Propagates [`Aligner::similarity_for`] failures.
pub fn generic_align_with<A: Aligner + ?Sized>(
    aligner: &A,
    source: &Graph,
    target: &Graph,
    method: AssignmentMethod,
) -> Result<Vec<usize>, AlignError> {
    let sim = precompute_similarity(aligner, source, target, method)?;
    Ok(assign_precomputed(&sim, method))
}

/// The expensive half of the pipeline on its own: validates the instance and
/// computes the [`Similarity`] for `method`, timed under the `"similarity"`
/// phase. The serving layer calls this on a cache miss and persists the
/// result; pairing it with [`assign_precomputed`] is exactly
/// [`generic_align_with`].
///
/// # Errors
/// Propagates [`Aligner::similarity_for`] failures and instance-shape errors.
pub fn precompute_similarity<A: Aligner + ?Sized>(
    aligner: &A,
    source: &Graph,
    target: &Graph,
    method: AssignmentMethod,
) -> Result<Similarity, AlignError> {
    check_sizes(source, target)?;
    graphalign_par::telemetry::time_phase("similarity", || {
        aligner.similarity_for(source, target, method)
    })
}

/// The cheap half of the pipeline on its own: extracts a matching from an
/// already-computed (possibly cache-loaded) similarity, timed under the
/// `"assignment"` phase. The result is bit-identical whether `sim` was just
/// computed or round-tripped through the serving cache.
pub fn assign_precomputed(sim: &Similarity, method: AssignmentMethod) -> Vec<usize> {
    graphalign_par::telemetry::time_phase("assignment", || {
        graphalign_assignment::assign(sim, method)
    })
}

/// Validates that a one-to-one alignment is possible.
pub(crate) fn check_sizes(source: &Graph, target: &Graph) -> Result<(), AlignError> {
    if source.node_count() == 0 {
        return Err(AlignError::BadInstance("source graph is empty".into()));
    }
    if source.node_count() > target.node_count() {
        return Err(AlignError::BadInstance(format!(
            "one-to-one alignment impossible: source has {} nodes, target {}",
            source.node_count(),
            target.node_count()
        )));
    }
    Ok(())
}

/// All nine algorithms with their Table 1 default hyperparameters, in the
/// paper's ordering. The study's harness iterates this registry.
pub fn registry() -> Vec<Box<dyn Aligner + Send + Sync>> {
    vec![
        Box::new(isorank::IsoRank::default()),
        Box::new(graal::Graal::default()),
        Box::new(nsd::Nsd::default()),
        Box::new(lrea::Lrea::default()),
        Box::new(regal::Regal::default()),
        Box::new(gwl::Gwl::default()),
        Box::new(sgwl::Sgwl::default()),
        Box::new(cone::Cone::default()),
        Box::new(grasp::Grasp::default()),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use graphalign_graph::permutation::AlignmentInstance;
    use graphalign_graph::Graph;

    /// A structurally distinctive small graph: a ring of triangles with a
    /// pendant path, so degrees and spectra discriminate nodes well.
    pub fn distinctive_graph(rings: usize) -> Graph {
        let n = 3 * rings + 3;
        let mut edges = Vec::new();
        for i in 0..rings {
            let a = 3 * i;
            edges.push((a, a + 1));
            edges.push((a + 1, a + 2));
            edges.push((a, a + 2));
            edges.push((a + 2, (a + 3) % (3 * rings)));
        }
        // Pendant path to break symmetry.
        let base = 3 * rings;
        edges.push((0, base));
        edges.push((base, base + 1));
        edges.push((base + 1, base + 2));
        Graph::from_edges(n, &edges)
    }

    /// A permuted self-alignment instance over the distinctive graph.
    pub fn permuted_instance(rings: usize, seed: u64) -> AlignmentInstance {
        AlignmentInstance::permuted(distinctive_graph(rings), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_nine_in_paper_order() {
        let names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE", "GRASP"]
        );
    }

    #[test]
    fn size_check_rejects_bad_instances() {
        let small = Graph::from_edges(2, &[(0, 1)]);
        let big = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(check_sizes(&big, &small).is_err());
        assert!(check_sizes(&small, &big).is_ok());
        assert!(check_sizes(&Graph::from_edges(0, &[]), &small).is_err());
    }

    #[test]
    fn error_display() {
        let e = AlignError::BadInstance("nope".into());
        assert!(e.to_string().contains("nope"));
        let e: AlignError = LinalgError::Singular { routine: "pinv" }.into();
        assert!(e.to_string().contains("pinv"));
        assert!(!e.is_interrupted());
        // Budget interruptions surfaced by linalg keep their identity when
        // crossing into the alignment layer.
        let e: AlignError = LinalgError::Interrupted { routine: "sinkhorn", iterations: 7 }.into();
        assert!(e.is_interrupted());
        assert!(e.to_string().contains("interrupted by cell budget after 7"));
    }
}
