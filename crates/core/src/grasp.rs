//! GRASP — Graph Alignment through Spectral Signatures (Hermanns, Tsitsulin,
//! Munkhoeva, Bronstein, Mottin, Karras 2021), paper §3.8.
//!
//! GRASP treats alignment as a functional-map problem on the graphs'
//! normalized-Laplacian eigenbases:
//!
//! 1. compute the bottom-`k` eigenpairs `(Λ, Φ)` and `(Λ₂, Ψ)` of the two
//!    normalized Laplacians;
//! 2. build *corresponding functions*: the diagonals of the heat kernels
//!    `H_t = Φ e^{−tΛ} Φᵀ` at `q` time steps (Equation 13) — a
//!    permutation-invariant, perturbation-robust node descriptor;
//! 3. align the eigenbases with a base-alignment matrix `M` minimizing
//!    Equation 14: an off-diagonality penalty on `MᵀΛ₂M` plus the
//!    corresponding-function mismatch `‖FᵀΦ − GᵀΨM‖²` (we optimize by
//!    projected gradient on the orthogonal group, which also resolves
//!    eigenvector sign/rotation ambiguity);
//! 4. estimate a diagonal mapping `C` of Fourier coefficients and match the
//!    spectral node descriptors by a LAP — JV, as the GRASP authors chose.

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::lanczos::{lanczos, Which};
use graphalign_linalg::svd::thin_svd;
use graphalign_linalg::{
    DenseMatrix, LinearOp, LowRankKernel, LowRankSim, ShiftedOp, Similarity, Workspace,
};

/// GRASP with the study's tuned hyperparameters (Table 1: `q = 100`,
/// `k = 20`, JV native assignment) — except `k`, which defaults to 40 here:
/// the Lanczos-based spectral descriptors of this implementation need twice
/// the paper's eigenpair count to reach the same node discriminativity
/// (`k = 20` leaves descriptor collisions on graphs beyond ~300 nodes; the
/// `ablation_grasp_k` bench and DESIGN.md §3 record the trade-off).
#[derive(Debug, Clone)]
pub struct Grasp {
    /// Number of eigenpairs `k`.
    pub k: usize,
    /// Number of heat-kernel time steps `q`.
    pub q: usize,
    /// Smallest and largest diffusion times (log-spaced grid).
    pub t_range: (f64, f64),
    /// Weight `μ` of the corresponding-function term in Equation 14.
    pub mu: f64,
    /// Projected-gradient iterations for the base alignment `M`.
    pub base_align_iters: usize,
    /// Gradient step size.
    pub lr: f64,
    /// Seed for the Lanczos starting vectors.
    pub seed: u64,
    /// L2-normalize each corresponding function (heat-kernel diagonal per
    /// time step) before fitting the base alignment. On power-law graphs the
    /// raw diagonals are dominated by hub entries, which otherwise drowns
    /// the least-squares terms of Equation 14.
    pub normalize_functions: bool,
    /// Disable the Equation 14 base alignment (use `M = I`): the "raw
    /// eigenvector" ablation. Without `M`, eigenvector sign flips and
    /// rotations within near-degenerate eigenspaces go uncorrected, so this
    /// variant collapses on permuted inputs — which is precisely what the
    /// ablation bench demonstrates.
    pub skip_base_alignment: bool,
}

impl Default for Grasp {
    fn default() -> Self {
        Self {
            k: 40,
            q: 100,
            t_range: (0.1, 50.0),
            mu: 0.5,
            base_align_iters: 150,
            lr: 0.05,
            seed: 0x6a457,
            normalize_functions: true,
            skip_base_alignment: false,
        }
    }
}

impl Grasp {
    /// Bottom-`k` eigenpairs of the normalized Laplacian of `g`, computed
    /// via Lanczos on `2I − L` (the spectrum lives in `[0, 2]`, so the
    /// bottom of `L` is the top of `2I − L`, where Lanczos converges fast).
    fn spectrum(&self, g: &Graph, k: usize) -> Result<(Vec<f64>, DenseMatrix), AlignError> {
        let l = spectral::normalized_laplacian(g);
        let flipped = ShiftedOp::new(&l, -1.0, 2.0);
        let krylov = (4 * k + 20).min(l.dim());
        let res = lanczos(&flipped, k, Which::Largest, krylov, self.seed)?;
        let values: Vec<f64> = res.values.iter().map(|v| 2.0 - v).collect();
        Ok((values, res.vectors))
    }

    /// Heat-kernel diagonals at the `q` log-spaced times: an `n × q` matrix
    /// `F[i][s] = Σ_j e^{−t_s λ_j} φ_j[i]²`.
    fn heat_diagonals(&self, values: &[f64], vectors: &DenseMatrix, times: &[f64]) -> DenseMatrix {
        let n = vectors.rows();
        let k = values.len();
        let weights: Vec<Vec<f64>> =
            times.iter().map(|&t| values.iter().map(|&l| (-t * l).exp()).collect()).collect();
        // Parallel over node rows; the j-accumulation order is unchanged, so
        // the entries are bit-identical to the sequential double loop.
        DenseMatrix::par_from_fn(n, times.len(), |i, s| {
            let w = &weights[s];
            let mut acc = 0.0;
            for (j, wj) in w.iter().enumerate().take(k) {
                let phi = vectors.get(i, j);
                acc += wj * phi * phi;
            }
            acc
        })
    }

    fn time_grid(&self) -> Vec<f64> {
        let (lo, hi) = self.t_range;
        let q = self.q.max(2);
        (0..q)
            .map(|s| {
                let frac = s as f64 / (q - 1) as f64;
                lo * (hi / lo).powf(frac)
            })
            .collect()
    }

    /// Optimizes the base-alignment matrix `M` of Equation 14.
    ///
    /// The fit term `μ‖A − BM‖²` has a closed-form orthogonal minimizer —
    /// the Procrustes rotation from the SVD of `BᵀA` — which we use as the
    /// starting point; the off-diagonality term `off(MᵀΛ₂M)` is then
    /// refined by projected gradient steps on the orthogonal group, keeping
    /// the best-objective iterate (a diverging step never degrades the
    /// result, which makes the optimization robust to the scale of the
    /// heat-kernel coefficients).
    fn base_align(
        &self,
        a_coef: &DenseMatrix, // FᵀΦ  (q × k)
        b_coef: &DenseMatrix, // GᵀΨ  (q × k)
        lambda2: &[f64],
    ) -> Result<DenseMatrix, AlignError> {
        let k = a_coef.cols();
        let l2 = DenseMatrix::from_fn(k, k, |i, j| if i == j { lambda2[i] } else { 0.0 });
        // Scale-normalize the coefficients once; the Procrustes solution is
        // scale-invariant, and this keeps the refinement gradients O(1).
        let sa = a_coef.frobenius_norm().max(1e-300);
        let a = a_coef.scaled(1.0 / sa);
        let sb = b_coef.frobenius_norm().max(1e-300);
        let b = b_coef.scaled(1.0 / sb);

        // All per-iteration products land in workspace-pooled buffers; the
        // arithmetic (and thus every objective value and iterate) is
        // bit-identical to the allocating formulation it replaces.
        let q_rows = a.rows();
        let mut ws = Workspace::new();
        let objective = |m: &DenseMatrix, ws: &mut Workspace| -> f64 {
            let mut l2m = ws.take_matrix(k, k);
            l2.matmul_into(m, &mut l2m, ws);
            let mut d = ws.take_matrix(k, k);
            m.tr_matmul_into(&l2m, &mut d, ws);
            let mut off_sq = 0.0;
            for i in 0..k {
                for j in 0..k {
                    if i != j {
                        off_sq += d.get(i, j) * d.get(i, j);
                    }
                }
            }
            let mut bm = ws.take_matrix(q_rows, k);
            b.matmul_into(m, &mut bm, ws);
            let mut residual = ws.take_matrix(q_rows, k);
            a.add_scaled_into(-1.0, &bm, &mut residual);
            let fit = residual.frobenius_norm().powi(2);
            ws.give_matrix(residual);
            ws.give_matrix(bm);
            ws.give_matrix(d);
            ws.give_matrix(l2m);
            off_sq + self.mu * fit
        };

        // Two candidate starting points: the identity (the "no rotation"
        // prior favoured by the off-diagonality term) and the closed-form
        // fit optimum (Procrustes). Refine whichever scores better.
        let procrustes_start = graphalign_linalg::svd::procrustes(&b, &a)?;
        let identity = DenseMatrix::identity(k);
        let mut m = if objective(&identity, &mut ws) <= objective(&procrustes_start, &mut ws) {
            identity
        } else {
            procrustes_start
        };
        let mut best = m.clone();
        let mut best_obj = objective(&m, &mut ws);
        let mut l2m = DenseMatrix::zeros(k, k);
        let mut d = DenseMatrix::zeros(k, k);
        let mut off = DenseMatrix::zeros(k, k);
        let mut grad = DenseMatrix::zeros(k, k);
        let mut m_next = DenseMatrix::zeros(k, k);
        let mut bm = DenseMatrix::zeros(q_rows, k);
        let mut residual = DenseMatrix::zeros(q_rows, k);
        let mut btres = DenseMatrix::zeros(k, k);
        for _ in 0..self.base_align_iters {
            // Gradient of ½‖off(D)‖² with D = MᵀΛ₂M is 2·Λ₂·M·off(D);
            // gradient of μ‖A − BM‖² is −2μ·Bᵀ(A − BM).
            l2.matmul_into(&m, &mut l2m, &mut ws);
            m.tr_matmul_into(&l2m, &mut d, &mut ws);
            off.copy_from(&d);
            for i in 0..k {
                off.set(i, i, 0.0);
            }
            l2m.matmul_into(&off, &mut grad, &mut ws);
            grad.scale_inplace(2.0);
            b.matmul_into(&m, &mut bm, &mut ws);
            a.add_scaled_into(-1.0, &bm, &mut residual);
            b.tr_matmul_into(&residual, &mut btres, &mut ws);
            grad.add_scaled(-2.0 * self.mu, &btres);
            m.add_scaled(-self.lr, &grad);
            // Project back to the orthogonal group: M ← U Vᵀ of M's SVD.
            let svd = thin_svd(&m)?;
            svd.u.matmul_tr_into(&svd.v, &mut m_next, &mut ws);
            std::mem::swap(&mut m, &mut m_next);
            let obj = objective(&m, &mut ws);
            if obj < best_obj {
                best_obj = obj;
                best = m.clone();
            }
        }
        Ok(best)
    }
}

impl Aligner for Grasp {
    fn name(&self) -> &'static str {
        "GRASP"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::JonkerVolgenant
    }

    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let k = self.k.min(source.node_count()).min(target.node_count()).max(1);
        let (la, phi) = self.spectrum(source, k)?;
        let (lb, psi) = self.spectrum(target, k)?;
        let times = self.time_grid();
        let mut f = self.heat_diagonals(&la, &phi, &times); // n_A × q
        let mut g = self.heat_diagonals(&lb, &psi, &times); // n_B × q
        if self.normalize_functions {
            for m in [&mut f, &mut g] {
                for s in 0..m.cols() {
                    let norm = graphalign_linalg::vec_ops::norm2(&m.col(s));
                    if norm > 0.0 {
                        for i in 0..m.rows() {
                            m.set(i, s, m.get(i, s) / norm);
                        }
                    }
                }
            }
        }

        let a_coef = f.tr_matmul(&phi); // q × k
        let b_coef = g.tr_matmul(&psi); // q × k
        let m = if self.skip_base_alignment {
            DenseMatrix::identity(k)
        } else {
            // Rescale the coefficient matrices to Frobenius norm √k so the
            // fit term of Equation 14 (‖A − BM‖² ≈ O(k) at this scale) stays
            // commensurate with the off-diagonality term (also O(k) for a
            // spectrum in [0, 2]) regardless of the functions' raw scale.
            let target = (k as f64).sqrt();
            let sa = target / a_coef.frobenius_norm().max(1e-300);
            let sb = target / b_coef.frobenius_norm().max(1e-300);
            self.base_align(&a_coef.scaled(sa), &b_coef.scaled(sb), &lb)?
        };
        let psi_aligned = psi.matmul(&m); // n_B × k

        // Diagonal coefficient map C: per-column least squares between the
        // corresponding-function coefficients.
        let b_aligned = g.tr_matmul(&psi_aligned); // q × k
        let mut c = vec![0.0; k];
        for j in 0..k {
            let mut num = 0.0;
            let mut den = 0.0;
            for s in 0..a_coef.rows() {
                num += a_coef.get(s, j) * b_aligned.get(s, j);
                den += a_coef.get(s, j) * a_coef.get(s, j);
            }
            c[j] = if den > 1e-300 { num / den } else { 1.0 };
        }

        // Node descriptors: rows of Φ·diag(C) vs rows of Ψ·M; similarity is
        // the negated squared distance, carried factored (`O(n · k)` instead
        // of `n × n`) — the assignment layer densifies only for the LAP
        // solvers.
        let mut phi_c = phi.clone();
        for j in 0..k {
            for i in 0..phi_c.rows() {
                phi_c.set(i, j, phi_c.get(i, j) * c[j]);
            }
        }
        Ok(Similarity::LowRank(LowRankSim::new(phi_c, psi_aligned, LowRankKernel::NegSqDist)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::accuracy;

    fn fast_grasp() -> Grasp {
        Grasp { q: 30, base_align_iters: 60, ..Grasp::default() }
    }

    #[test]
    fn defaults_match_table1() {
        let g = Grasp::default();
        // k deviates from Table 1 deliberately (see the struct docs).
        assert_eq!(g.k, 40);
        assert_eq!(g.q, 100);
        assert_eq!(g.native_assignment(), AssignmentMethod::JonkerVolgenant);
    }

    #[test]
    fn time_grid_is_log_spaced_and_increasing() {
        let g = Grasp::default();
        let t = g.time_grid();
        assert_eq!(t.len(), 100);
        assert!((t[0] - 0.1).abs() < 1e-12);
        assert!((t[99] - 50.0).abs() < 1e-9);
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn recovers_permuted_isomorphic_graph() {
        let inst = permuted_instance(6, 21);
        let aligned = fast_grasp().align(&inst.source, &inst.target).unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.85, "GRASP accuracy on isomorphic graphs: {acc}");
    }

    #[test]
    fn survives_low_noise() {
        use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
        let g = crate::test_support::distinctive_graph(8);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.03);
        let inst = make_instance(&g, &cfg, 5);
        let aligned = fast_grasp().align(&inst.source, &inst.target).unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.4, "GRASP accuracy under 3% noise: {acc}");
    }

    #[test]
    fn base_alignment_matrix_is_orthogonal() {
        let g = fast_grasp();
        let a = DenseMatrix::from_fn(10, 4, |i, j| ((i + j) as f64 * 0.37).sin());
        let b = DenseMatrix::from_fn(10, 4, |i, j| ((i * j) as f64 * 0.21).cos());
        let m = g.base_align(&a, &b, &[0.0, 0.5, 1.0, 1.5]).unwrap();
        let gram = m.tr_matmul(&m);
        assert!(gram.sub(&DenseMatrix::identity(4)).max_abs() < 1e-8);
    }

    #[test]
    fn base_alignment_ablation_is_no_worse_on_average() {
        // The Equation 14 ablation. Pure sign flips are already absorbed by
        // the diagonal coefficient map C (its per-column least squares can
        // go negative), so on easy instances M = I can tie; averaged over
        // noisy instances — where rotations inside near-degenerate
        // eigenspaces matter — the learned M must not lose.
        // Per-instance the comparison is noisy (either side can win on a
        // single noise draw), so the claim is averaged over 12 instances —
        // enough that the 0.2 slack reflects the method, not the draw.
        use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
        let g = crate::test_support::distinctive_graph(8);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.03);
        let mut with_m = 0.0;
        let mut without_m = 0.0;
        for seed in 0..12 {
            let inst = make_instance(&g, &cfg, seed);
            let a = fast_grasp().align(&inst.source, &inst.target).unwrap();
            with_m += accuracy(&a, &inst.ground_truth);
            let a = Grasp { skip_base_alignment: true, ..fast_grasp() }
                .align(&inst.source, &inst.target)
                .unwrap();
            without_m += accuracy(&a, &inst.ground_truth);
        }
        assert!(
            with_m >= without_m - 0.2,
            "base alignment lost badly: {with_m} vs {without_m} (sum over 12 seeds)"
        );
    }

    #[test]
    fn k_is_clamped_to_graph_size() {
        // A 5-node graph with k=20 must not panic.
        let inst = permuted_instance(1, 2); // 6 nodes
        let aligned = fast_grasp().align(&inst.source, &inst.target).unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
    }
}
