//! Multiple-network alignment (the IsoRankN / GWL-multi direction the paper
//! notes as an extension of the pairwise problem).
//!
//! Given `k` graphs, [`star_align`] picks a reference (the first graph) and
//! aligns every other graph to it pairwise with any [`Aligner`]; the
//! resulting maps compose into cross-network correspondences
//! ([`MultiAlignment::compose`]). This is the standard "star" reduction of
//! global multiple alignment — IsoRankN's spectral clustering refines it,
//! but the star form is what downstream pipelines (e.g. multi-species PPI
//! analysis, multi-snapshot de-anonymization) consume.

use crate::{AlignError, Aligner};
use graphalign_graph::Graph;

/// Pairwise maps from a reference graph to every other graph.
#[derive(Debug, Clone)]
pub struct MultiAlignment {
    /// `maps[i][u]` is the node of graph `i + 1` aligned to reference node
    /// `u` (graph 0 is the reference).
    pub maps: Vec<Vec<usize>>,
}

impl MultiAlignment {
    /// Number of non-reference graphs aligned.
    pub fn graph_count(&self) -> usize {
        self.maps.len()
    }

    /// Composes the correspondence from graph `i + 1` to graph `j + 1`
    /// through the reference: `g_i → ref → g_j`. Indices are positions in
    /// [`MultiAlignment::maps`]; the reference itself is addressed by
    /// passing the same index to read off the identity.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn compose(&self, i: usize, j: usize) -> Vec<usize> {
        let from = &self.maps[i];
        let to = &self.maps[j];
        // Invert `from`: node of graph i+1 → reference node.
        let mut inv = vec![usize::MAX; from.len()];
        for (r, &x) in from.iter().enumerate() {
            if x < inv.len() {
                inv[x] = r;
            }
        }
        // g_i node v → ref node inv[v] → g_j node to[inv[v]].
        inv.into_iter().map(|r| if r == usize::MAX { usize::MAX } else { to[r] }).collect()
    }
}

/// Aligns `others` to `reference` pairwise with `aligner` (star reduction of
/// multiple network alignment).
///
/// # Errors
/// Propagates the first pairwise alignment failure.
pub fn star_align(
    aligner: &dyn Aligner,
    reference: &Graph,
    others: &[&Graph],
) -> Result<MultiAlignment, AlignError> {
    let mut maps = Vec::with_capacity(others.len());
    for g in others {
        maps.push(aligner.align(reference, g)?);
    }
    Ok(MultiAlignment { maps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grasp::Grasp;
    use crate::test_support::distinctive_graph;
    use graphalign_graph::Permutation;

    #[test]
    fn star_alignment_recovers_permutations() {
        let base = distinctive_graph(8);
        let p1 = Permutation::random(base.node_count(), 1);
        let p2 = Permutation::random(base.node_count(), 2);
        let g1 = p1.apply_to_graph(&base);
        let g2 = p2.apply_to_graph(&base);
        let grasp = Grasp::default();
        let multi = star_align(&grasp, &base, &[&g1, &g2]).unwrap();
        assert_eq!(multi.graph_count(), 2);
        // Pairwise accuracy against the known permutations.
        let acc1 = multi.maps[0].iter().enumerate().filter(|&(u, &v)| v == p1.apply(u)).count()
            as f64
            / base.node_count() as f64;
        // The ring-of-triangles graph has residual local near-symmetries, so
        // pairwise accuracy sits well below 1; the test guards against
        // regression to chance level (1/27 ≈ 4%).
        assert!(acc1 > 0.5, "reference → g1 accuracy {acc1}");
    }

    #[test]
    fn composition_is_consistent_with_direct_truth() {
        let base = distinctive_graph(8);
        let p1 = Permutation::random(base.node_count(), 7);
        let p2 = Permutation::random(base.node_count(), 8);
        let g1 = p1.apply_to_graph(&base);
        let g2 = p2.apply_to_graph(&base);
        let grasp = Grasp::default();
        let multi = star_align(&grasp, &base, &[&g1, &g2]).unwrap();
        // True g1 → g2 map: v → p2(p1⁻¹(v)).
        let inv1 = p1.inverse();
        let composed = multi.compose(0, 1);
        let correct = composed
            .iter()
            .enumerate()
            .filter(|&(v, &w)| w != usize::MAX && w == p2.apply(inv1.apply(v)))
            .count() as f64
            / base.node_count() as f64;
        // Composition compounds the two pairwise error rates.
        assert!(correct > 0.25, "composed g1 → g2 accuracy {correct}");
    }

    #[test]
    fn compose_handles_unmapped_nodes() {
        let m = MultiAlignment { maps: vec![vec![1, 0], vec![0, 1]] };
        let c = m.compose(0, 1);
        assert_eq!(c, vec![1, 0]);
    }
}
