//! The degree-similarity prior of paper §6.1.
//!
//! IsoRank assumes an external similarity matrix (Blast scores in its
//! original biological setting). For unrestricted alignment the study
//! substitutes "*our own* weight schema that takes into account node
//! degrees": `sim(u, v) = 1 − |deg(u) − deg(v)| / max(deg(u), deg(v))`.
//! The paper credits this choice for making IsoRank "among the most
//! competitive algorithms, as opposed to previous comparisons". NSD uses
//! the same prior; the `isorank_prior` ablation bench quantifies its effect.

use graphalign_graph::Graph;
use graphalign_linalg::DenseMatrix;

/// Degree similarity of two degrees: `1 − |d_u − d_v| / max(d_u, d_v)`,
/// with the convention that two isolated nodes are perfectly similar.
#[inline]
pub fn degree_similarity(du: usize, dv: usize) -> f64 {
    let max = du.max(dv);
    if max == 0 {
        return 1.0;
    }
    1.0 - (du.abs_diff(dv)) as f64 / max as f64
}

/// The full prior matrix `E` with `E[u][v] = degree_similarity(deg_A(u),
/// deg_B(v))`, normalized to sum 1 (IsoRank treats `E` as a probability-like
/// mass that the `(1 − α)` term injects each iteration).
pub fn degree_prior(source: &Graph, target: &Graph) -> DenseMatrix {
    let n = source.node_count();
    let m = target.node_count();
    let deg_a: Vec<usize> = source.degrees();
    let deg_b: Vec<usize> = target.degrees();
    let mut e = DenseMatrix::par_from_fn(n, m, |u, v| degree_similarity(deg_a[u], deg_b[v]));
    let total = e.sum();
    if total > 0.0 {
        e.scale_inplace(1.0 / total);
    }
    e
}

/// A uniform prior of the same shape (what IsoRank degrades to when no
/// side information exists) — the baseline of the `isorank_prior` ablation.
pub fn uniform_prior(source: &Graph, target: &Graph) -> DenseMatrix {
    let n = source.node_count();
    let m = target.node_count();
    DenseMatrix::filled(n, m, 1.0 / (n * m).max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_degrees_are_perfectly_similar() {
        assert_eq!(degree_similarity(5, 5), 1.0);
        assert_eq!(degree_similarity(0, 0), 1.0);
    }

    #[test]
    fn distant_degrees_are_dissimilar() {
        assert_eq!(degree_similarity(1, 2), 0.5);
        assert!((degree_similarity(1, 10) - 0.1).abs() < 1e-12);
        assert_eq!(degree_similarity(0, 7), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        for du in 0..6 {
            for dv in 0..6 {
                assert_eq!(degree_similarity(du, dv), degree_similarity(dv, du));
            }
        }
    }

    #[test]
    fn prior_matrix_sums_to_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let e = degree_prior(&g, &g);
        assert!((e.sum() - 1.0).abs() < 1e-12);
        // Matching degrees (nodes 1 and 2 have degree 2) score highest.
        assert!(e.get(1, 2) > e.get(1, 0));
    }

    #[test]
    fn uniform_prior_is_flat() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let e = uniform_prior(&g, &g);
        assert!((e.get(0, 0) - 1.0 / 9.0).abs() < 1e-15);
        assert!((e.sum() - 1.0).abs() < 1e-12);
    }
}
