//! CONE-Align (Chen, Heimann, Vahedian, Koutra 2020), paper §3.7.
//!
//! CONE computes *proximity-preserving* node embeddings for each graph
//! independently, then aligns the two embedding subspaces by combining a
//! Wasserstein problem (row correspondence `P`) and a Procrustes problem
//! (orthogonal rotation `Q`), per Equation 12:
//!
//! ```text
//! min_{Q ∈ O(d)} min_{P ∈ Π} ‖Y_A Q − P Y_B‖²
//! ```
//!
//! solved by alternating Sinkhorn (for `P`) and an SVD-based orthogonal
//! Procrustes update (for `Q`). Final matching: nearest neighbor by
//! Euclidean distance over the aligned embeddings (k-d tree, like REGAL).
//!
//! Embeddings: the spectral factorization of the symmetric proximity
//! polynomial `S = Â + Â² + Â³` (with `Â = D^{−1/2} A D^{−1/2}`), truncated
//! to `dim` eigenpairs — a NetMF-class factorization that preserves both
//! local and multi-hop proximity, matching CONE's use of an off-the-shelf
//! proximity embedding. Table 1's `dim = 512` is clamped to `⌊n/2⌋` on
//! small graphs (DESIGN.md §3).

use crate::{check_sizes, AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{spectral, Graph};
use graphalign_linalg::lanczos::{lanczos, Which};
use graphalign_linalg::landmark::LandmarkSinkhorn;
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::svd::procrustes;
use graphalign_linalg::{CsrMatrix, DenseMatrix, LinearOp, LowRankKernel, LowRankSim, Similarity};
use graphalign_par::telemetry::{self, Convergence};

/// CONE with the study's tuned hyperparameters (Table 1: `dim = 512`,
/// NN native assignment; the subspace alignment runs ~50 outer rounds in
/// the reference implementation — we default to 20, which converges on all
/// benchmark sizes).
#[derive(Debug, Clone)]
pub struct Cone {
    /// Embedding dimensionality (clamped to `⌊n/2⌋`).
    pub dim: usize,
    /// Proximity polynomial order (number of normalized-adjacency powers).
    pub window: usize,
    /// Outer alternations between the Wasserstein and Procrustes updates.
    pub outer_iters: usize,
    /// Sinkhorn parameters for the Wasserstein step.
    pub sinkhorn: SinkhornParams,
    /// Seed for the Lanczos starting vectors.
    pub seed: u64,
    /// When `Some(k)`, every Wasserstein step runs on a `k`-landmark Nyström
    /// factorization of the Gibbs kernel ([`LandmarkSinkhorn`]) instead of a
    /// dense `n_a × n_b` cost matrix — the XL-tier path with `O((n+m)·k)`
    /// memory. `None` (the default) keeps the exact dense solver,
    /// bit-identical to the pre-landmark implementation.
    pub landmarks: Option<usize>,
}

impl Default for Cone {
    fn default() -> Self {
        Self {
            dim: 512,
            window: 3,
            outer_iters: 20,
            sinkhorn: SinkhornParams { epsilon: 0.05, max_iter: 100, tol: 1e-6 },
            seed: 0xc0e,
            landmarks: None,
        }
    }
}

/// A matrix-free operator applying the proximity polynomial
/// `S·x = Â x + Â² x + … + Â^w x` without materializing the powers.
struct ProximityOp<'a> {
    adj: &'a CsrMatrix,
    window: usize,
}

impl LinearOp for ProximityOp<'_> {
    fn dim(&self) -> usize {
        self.adj.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let mut power = x.to_vec();
        out.iter_mut().for_each(|o| *o = 0.0);
        for _ in 0..self.window {
            power = self.adj.mul_vec(&power);
            for (o, &p) in out.iter_mut().zip(&power) {
                *o += p;
            }
        }
    }
}

impl Cone {
    /// Proximity embedding of one graph: top-`d` eigenpairs of the proximity
    /// polynomial, scaled by `√max(λ, 0)`, rows L2-normalized.
    fn embed(&self, g: &Graph, d: usize) -> Result<DenseMatrix, AlignError> {
        let adj = spectral::sym_normalized_adjacency(g);
        let op = ProximityOp { adj: &adj, window: self.window };
        let krylov = (4 * d + 20).min(g.node_count());
        let res = lanczos(&op, d, Which::Largest, krylov, self.seed)?;
        let mut y = res.vectors;
        for (j, &lambda) in res.values.iter().enumerate() {
            let scale = lambda.max(0.0).sqrt();
            for i in 0..y.rows() {
                y.set(i, j, y.get(i, j) * scale);
            }
        }
        y.normalize_rows();
        Ok(y)
    }

    /// The aligned embeddings `(Y_A·Q, Y_B)` after the Wasserstein–Procrustes
    /// alternation.
    ///
    /// The alternation is warm-started from a transport plan computed on
    /// structural (xNetMF-style) node features — our stand-in for CONE's
    /// Frank–Wolfe convex initialization, without which the alternation
    /// from `Q = I` stalls in a poor local optimum on regular graphs — and
    /// the Sinkhorn regularization is annealed geometrically across the
    /// outer iterations.
    ///
    /// # Errors
    /// Propagates Lanczos/Sinkhorn/SVD failures.
    pub fn aligned_embeddings(
        &self,
        source: &Graph,
        target: &Graph,
    ) -> Result<(DenseMatrix, DenseMatrix), AlignError> {
        let n_a = source.node_count();
        let n_b = target.node_count();
        let d = self.dim.min(n_a / 2).min(n_b / 2).max(1);
        let ya = self.embed(source, d)?;
        let yb = self.embed(target, d)?;

        let mu = uniform_marginal(n_a);
        let nu = uniform_marginal(n_b);

        if let Some(k) = self.landmarks {
            return self.alternate_landmark(source, target, &ya, &yb, &mu, &nu, k);
        }

        // Warm start: transport over structural-feature distances.
        let (fa, fb) = crate::features::feature_pair(
            source,
            target,
            &crate::features::FeatureParams::default(),
        );
        let feat_cost = DenseMatrix::par_from_fn(n_a, n_b, |i, j| {
            graphalign_linalg::vec_ops::dist2_sq(fa.row(i), fb.row(j))
        });
        // Normalize the cost scale so the default ε applies.
        let scale = feat_cost.max_abs().max(1e-12);
        let feat_cost = feat_cost.scaled(1.0 / scale);
        let (p0, _) = sinkhorn(&feat_cost, &mu, &nu, &self.sinkhorn)?;
        let mut p_yb = p0.matmul(&yb);
        p_yb.scale_inplace(n_a as f64);
        let mut q = procrustes(&ya, &p_yb)?;

        const TOL: f64 = 1e-7;
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;
        let mut hit_tol = false;
        for it in 0..self.outer_iters {
            crate::check_budget("cone", it)?;
            let ya_q = ya.matmul(&q);
            // Wasserstein step with annealed ε: transport over the
            // embedding-distance cost.
            let cost = DenseMatrix::par_from_fn(n_a, n_b, |i, j| {
                graphalign_linalg::vec_ops::dist2_sq(ya_q.row(i), yb.row(j))
            });
            let annealed = SinkhornParams {
                epsilon: (self.sinkhorn.epsilon * 0.8_f64.powi(it as i32)).max(0.005),
                ..self.sinkhorn
            };
            let (p, _) = sinkhorn(&cost, &mu, &nu, &annealed)?;
            // Procrustes step: rotate Y_A onto P·Y_B (scaled back to
            // per-row mass 1: P rows sum to 1/n_A).
            let mut p_yb = p.matmul(&yb);
            p_yb.scale_inplace(n_a as f64);
            let q_new = procrustes(&ya, &p_yb)?;
            let delta = q_new.sub(&q).max_abs();
            iterations = it + 1;
            last_delta = delta;
            telemetry::record_residual("cone", delta);
            q = q_new;
            if delta < TOL {
                hit_tol = true;
                break;
            }
        }
        telemetry::record(
            "cone",
            if hit_tol {
                Convergence::tolerance(iterations, last_delta)
            } else {
                Convergence::max_iter(iterations, last_delta)
            },
        );
        Ok((ya.matmul(&q), yb))
    }

    /// The Wasserstein–Procrustes alternation on the `k`-landmark factored
    /// kernel: each outer step rebuilds the Nyström factorization on the
    /// rotated embeddings with the annealed ε, runs the factored scaling
    /// loop, and applies the plan to `Y_B` through the factors
    /// ([`LandmarkSinkhorn::plan_mul`]) — no `n_a × n_b` object anywhere.
    /// The warm start transports over structural-feature distances, like the
    /// dense path, but through the same landmark factorization.
    #[allow(clippy::too_many_arguments)]
    fn alternate_landmark(
        &self,
        source: &Graph,
        target: &Graph,
        ya: &DenseMatrix,
        yb: &DenseMatrix,
        mu: &[f64],
        nu: &[f64],
        k: usize,
    ) -> Result<(DenseMatrix, DenseMatrix), AlignError> {
        let n_a = source.node_count();
        // Warm start: factored transport over structural-feature distances.
        let (fa, fb) = crate::features::feature_pair(
            source,
            target,
            &crate::features::FeatureParams::default(),
        );
        let lk = LandmarkSinkhorn::build(&fa, &fb, k, self.sinkhorn.epsilon)?;
        let (u, v, _) = lk.solve(mu, nu, &self.sinkhorn)?;
        let mut p_yb = lk.plan_mul(&u, &v, yb);
        p_yb.scale_inplace(n_a as f64);
        let mut q = procrustes(ya, &p_yb)?;

        const TOL: f64 = 1e-7;
        let mut iterations = 0;
        let mut last_delta = f64::INFINITY;
        let mut hit_tol = false;
        for it in 0..self.outer_iters {
            crate::check_budget("cone", it)?;
            let ya_q = ya.matmul(&q);
            let annealed = SinkhornParams {
                epsilon: (self.sinkhorn.epsilon * 0.8_f64.powi(it as i32)).max(0.005),
                ..self.sinkhorn
            };
            // The factorization bakes ε into the Gibbs blocks, so it is
            // rebuilt with the annealed value each round — still O((n+m)·k).
            let lk = LandmarkSinkhorn::build(&ya_q, yb, k, annealed.epsilon)?;
            let (u, v, _) = lk.solve(mu, nu, &annealed)?;
            let mut p_yb = lk.plan_mul(&u, &v, yb);
            p_yb.scale_inplace(n_a as f64);
            let q_new = procrustes(ya, &p_yb)?;
            let delta = q_new.sub(&q).max_abs();
            iterations = it + 1;
            last_delta = delta;
            telemetry::record_residual("cone", delta);
            q = q_new;
            if delta < TOL {
                hit_tol = true;
                break;
            }
        }
        telemetry::record(
            "cone",
            if hit_tol {
                Convergence::tolerance(iterations, last_delta)
            } else {
                Convergence::max_iter(iterations, last_delta)
            },
        );
        Ok((ya.matmul(&q), yb.clone()))
    }
}

impl Aligner for Cone {
    fn name(&self) -> &'static str {
        "CONE"
    }

    fn native_assignment(&self) -> AssignmentMethod {
        AssignmentMethod::NearestNeighbor
    }

    /// CONE's similarity stays factored: `exp(−‖(Y_A Q)[u] − Y_B[v]‖²)` over
    /// the Procrustes-aligned embeddings, carried as `O(n · d)` factors. The
    /// assignment layer queries the k-d tree over the factors for NN — the
    /// CONE authors' extraction — and densifies only for the LAP solvers.
    fn similarity(&self, source: &Graph, target: &Graph) -> Result<Similarity, AlignError> {
        check_sizes(source, target)?;
        let (ya, yb) = self.aligned_embeddings(source, target)?;
        Ok(Similarity::LowRank(LowRankSim::new(ya, yb, LowRankKernel::ExpNegSqDist)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::permuted_instance;
    use graphalign_metrics::{accuracy, mnc};

    fn fast_cone() -> Cone {
        Cone { outer_iters: 10, ..Cone::default() }
    }

    #[test]
    fn defaults_match_table1() {
        let c = Cone::default();
        assert_eq!(c.dim, 512);
        assert_eq!(c.native_assignment(), AssignmentMethod::NearestNeighbor);
    }

    #[test]
    fn embedding_dimension_is_clamped() {
        let inst = permuted_instance(4, 3);
        let (ya, yb) = fast_cone().aligned_embeddings(&inst.source, &inst.target).unwrap();
        assert!(ya.cols() <= inst.source.node_count() / 2);
        assert_eq!(ya.cols(), yb.cols());
    }

    #[test]
    fn recovers_permuted_isomorphic_graph_structurally() {
        let inst = permuted_instance(6, 8);
        let aligned = fast_cone()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let m = mnc(&inst.source, &inst.target, &aligned);
        assert!(m > 0.5, "CONE MNC on isomorphic graphs: {m}");
    }

    #[test]
    fn accuracy_on_asymmetric_graph() {
        use graphalign_graph::permutation::AlignmentInstance;
        // Hub with arms of distinct lengths: no automorphisms.
        let mut edges = vec![];
        let mut next = 1;
        for arm in 1..=7 {
            let mut prev = 0;
            for _ in 0..arm {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let g = Graph::from_edges(next, &edges);
        let inst = AlignmentInstance::permuted(g, 31);
        let aligned = fast_cone()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        assert!(acc > 0.3, "CONE accuracy on arm graph: {acc}");
    }

    #[test]
    fn landmark_mode_is_factored_end_to_end_and_aligns() {
        let inst = permuted_instance(6, 8);
        let c = Cone { landmarks: Some(16), outer_iters: 6, ..fast_cone() };
        let _g = telemetry::install(false);
        let sim = c.similarity(&inst.source, &inst.target).unwrap();
        assert!(matches!(sim, Similarity::LowRank(_)));
        let aligned = c.align(&inst.source, &inst.target).unwrap();
        assert_eq!(aligned.len(), inst.source.node_count());
        let t = telemetry::drain();
        assert_eq!(t.densifications, 0, "landmark CONE + NN must not densify");
        assert!(
            t.events.iter().any(|e| e.routine == "sinkhorn_landmark"),
            "Wasserstein steps must run through the landmark solver"
        );
        let m = mnc(&inst.source, &inst.target, &aligned);
        assert!(m > 0.2, "landmark CONE MNC on isomorphic graphs: {m}");
    }

    #[test]
    fn landmark_mode_is_deterministic() {
        let inst = permuted_instance(5, 2);
        let c = Cone { landmarks: Some(8), outer_iters: 4, ..fast_cone() };
        graphalign_par::set_max_threads(1);
        let a = c.align(&inst.source, &inst.target).unwrap();
        graphalign_par::set_max_threads(8);
        let b = c.align(&inst.source, &inst.target).unwrap();
        graphalign_par::set_max_threads(0);
        assert_eq!(a, b, "bit-identical at any thread count");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = permuted_instance(4, 5);
        let c = fast_cone();
        assert_eq!(
            c.align(&inst.source, &inst.target).unwrap(),
            c.align(&inst.source, &inst.target).unwrap()
        );
    }
}
