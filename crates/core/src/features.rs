//! Shared structural node features (xNetMF-style K-hop degree histograms).
//!
//! Three algorithms consume the same permutation-invariant node descriptor:
//! REGAL builds its embeddings from it (paper Equation 8), CONE warm-starts
//! its Wasserstein–Procrustes alternation with it, and S-GWL uses it to
//! steer cluster pairing and leaf transports. The descriptor of node `u` is
//! a histogram over log₂-scaled degree buckets of `u`'s `k`-hop neighbors,
//! hop `h` discounted by `δ^{h−1}`.

use graphalign_graph::Graph;
use graphalign_linalg::DenseMatrix;

/// Feature-extraction parameters (REGAL's defaults: `K = 2`, `δ = 0.1`).
#[derive(Debug, Clone, Copy)]
pub struct FeatureParams {
    /// Neighborhood radius `K`.
    pub k_hops: usize,
    /// Per-hop discount `δ`.
    pub discount: f64,
}

impl Default for FeatureParams {
    fn default() -> Self {
        Self { k_hops: 2, discount: 0.1 }
    }
}

/// Number of log₂ degree buckets needed to cover both graphs.
pub fn bucket_count(source: &Graph, target: &Graph) -> usize {
    let max_deg = source.max_degree().max(target.max_degree()).max(1);
    (max_deg as f64).log2().floor() as usize + 1
}

/// Structural feature matrix of `g` (`n × buckets`): discounted K-hop
/// degree histograms per node.
pub fn structural_features(g: &Graph, params: &FeatureParams, buckets: usize) -> DenseMatrix {
    let n = g.node_count();
    let mut feats = DenseMatrix::zeros(n, buckets);
    // One distance buffer shared across all source nodes, resetting only the
    // entries each BFS touched: total work is the sum of K-hop neighborhood
    // sizes, not n per node — the difference between seconds and hours at
    // the XL tier's n = 10⁶.
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    let mut next: Vec<usize> = Vec::new();
    for v in 0..n {
        frontier.clear();
        frontier.push(v);
        dist[v] = 0;
        touched.push(v);
        for hop in 1..=params.k_hops {
            next.clear();
            for &u in &frontier {
                for &w in g.neighbors(u) {
                    if dist[w] == usize::MAX {
                        dist[w] = hop;
                        next.push(w);
                        touched.push(w);
                    }
                }
            }
            let weight = params.discount.powi(hop as i32 - 1);
            for &w in &next {
                let d = g.degree(w);
                let bucket = if d == 0 { 0 } else { (d as f64).log2().floor() as usize };
                feats.add_to(v, bucket.min(buckets - 1), weight);
            }
            std::mem::swap(&mut frontier, &mut next);
            if frontier.is_empty() {
                break;
            }
        }
        for &t in &touched {
            dist[t] = usize::MAX;
        }
        touched.clear();
    }
    feats
}

/// Feature matrices for a graph pair, over a shared bucket space.
pub fn feature_pair(
    source: &Graph,
    target: &Graph,
    params: &FeatureParams,
) -> (DenseMatrix, DenseMatrix) {
    graphalign_par::telemetry::time_phase("features", || {
        let buckets = bucket_count(source, target);
        (structural_features(source, params, buckets), structural_features(target, params, buckets))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_graph::Permutation;

    #[test]
    fn features_are_permutation_covariant() {
        let g = graphalign_gen_testutil();
        let p = Permutation::random(g.node_count(), 5);
        let h = p.apply_to_graph(&g);
        let params = FeatureParams::default();
        let buckets = bucket_count(&g, &h);
        let fg = structural_features(&g, &params, buckets);
        let fh = structural_features(&h, &params, buckets);
        for v in 0..g.node_count() {
            for b in 0..buckets {
                assert!(
                    (fg.get(v, b) - fh.get(p.apply(v), b)).abs() < 1e-12,
                    "feature mismatch at node {v}, bucket {b}"
                );
            }
        }
    }

    /// Small deterministic test graph (triangle ring + pendant).
    fn graphalign_gen_testutil() -> Graph {
        let mut edges = Vec::new();
        for i in 0..5 {
            let a = 3 * i;
            edges.push((a, a + 1));
            edges.push((a + 1, a + 2));
            edges.push((a, a + 2));
            edges.push((a + 2, (a + 3) % 15));
        }
        edges.push((0, 15));
        Graph::from_edges(16, &edges)
    }

    #[test]
    fn hop_one_dominates_with_small_discount() {
        let g = graphalign_gen_testutil();
        let near = FeatureParams { k_hops: 1, discount: 0.1 };
        let far = FeatureParams { k_hops: 2, discount: 0.1 };
        let buckets = bucket_count(&g, &g);
        let f1 = structural_features(&g, &near, buckets);
        let f2 = structural_features(&g, &far, buckets);
        // 2-hop features extend 1-hop features by at most discount-weighted
        // counts: the total added mass per node is bounded by 0.1 × n.
        for v in 0..g.node_count() {
            let s1: f64 = f1.row(v).iter().sum();
            let s2: f64 = f2.row(v).iter().sum();
            assert!(s2 >= s1 - 1e-12);
            assert!(s2 - s1 <= 0.1 * g.node_count() as f64);
        }
    }

    #[test]
    fn bucket_count_covers_max_degree() {
        let star = Graph::from_edges(9, &(1..9).map(|i| (0, i)).collect::<Vec<_>>());
        let b = bucket_count(&star, &star);
        // max degree 8 → buckets 0..=3 (log2(8) = 3).
        assert_eq!(b, 4);
    }

    #[test]
    fn isolated_nodes_have_zero_features() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let f = structural_features(&g, &FeatureParams::default(), 2);
        assert_eq!(f.row(2).iter().sum::<f64>(), 0.0);
    }
}
