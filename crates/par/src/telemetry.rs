//! Solver telemetry: convergence records, per-iteration residual traces,
//! phase timers, and operation counters, collected through a thread-local
//! sink the harness installs around one repetition of one experiment cell.
//!
//! Every iterative routine in the workspace (power iteration, Sinkhorn
//! scalings, Lanczos, the IsoRank/CONE/LREA/NetAlign/GWL outer loops, the
//! tridiagonal QL sweep) reports how it stopped via [`record`]; the
//! drivers in `graphalign-core` wrap their phases in [`time_phase`]; the
//! kernels bump [`count_matmul`]/[`count_sinkhorn_sweep`]/
//! [`count_auction_bids`]. Without an installed sink every entry point is
//! a single thread-local read that returns immediately, so instrumented
//! code paths stay bit-identical and effectively free when telemetry is
//! off.
//!
//! # Scope and propagation
//!
//! Like [`crate::budget`], the sink is **thread-local** and the fork/join
//! helpers of this crate adopt the installing thread's sink inside their
//! scoped workers. Operation counters are atomics, so their totals do not
//! depend on how work was split across threads; solver *events* (and
//! residual series) are only ever recorded by the driver thread — every
//! solver loop in the workspace runs its outer iterations sequentially —
//! so their order is deterministic as well.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why an iterative routine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The residual dropped below the routine's tolerance.
    Tolerance,
    /// The iteration cap was reached before the tolerance was met.
    MaxIter,
    /// The cooperative cell budget expired ([`crate::budget`]).
    Interrupted,
    /// The iteration ended early for a structural reason (e.g. the Krylov
    /// space was exhausted) rather than by tolerance or cap.
    Breakdown,
}

impl StopReason {
    /// Stable lower-snake-case name used in every JSON surface.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Tolerance => "tolerance",
            StopReason::MaxIter => "max_iter",
            StopReason::Interrupted => "interrupted",
            StopReason::Breakdown => "breakdown",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tolerance" => Some(StopReason::Tolerance),
            "max_iter" => Some(StopReason::MaxIter),
            "interrupted" => Some(StopReason::Interrupted),
            "breakdown" => Some(StopReason::Breakdown),
            _ => None,
        }
    }
}

/// How one invocation of an iterative routine ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Outer iterations actually executed.
    pub iterations: usize,
    /// Final residual (routine-specific metric; `0.0` when the routine has
    /// no meaningful residual).
    pub residual: f64,
    /// Whether the routine met its own stopping tolerance. A fixed-budget
    /// loop judges its final residual against a reporting tolerance.
    pub converged: bool,
    /// Why the loop stopped.
    pub stop: StopReason,
}

impl Convergence {
    /// A tolerance-met stop after `iterations` iterations.
    pub fn tolerance(iterations: usize, residual: f64) -> Self {
        Self { iterations, residual, converged: true, stop: StopReason::Tolerance }
    }

    /// The iteration cap was hit with the tolerance still unmet.
    pub fn max_iter(iterations: usize, residual: f64) -> Self {
        Self { iterations, residual, converged: false, stop: StopReason::MaxIter }
    }

    /// The cell budget interrupted the loop.
    pub fn interrupted(iterations: usize, residual: f64) -> Self {
        Self { iterations, residual, converged: false, stop: StopReason::Interrupted }
    }
}

/// One recorded solver invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverEvent {
    /// Routine name (`"sinkhorn"`, `"isorank"`, …).
    pub routine: &'static str,
    /// How it ended.
    pub convergence: Convergence,
}

/// Per-iteration residuals of one solver invocation (trace mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSeries {
    /// Routine name, matching the paired [`SolverEvent`].
    pub routine: &'static str,
    /// Residual after each recorded outer iteration, in order.
    pub residuals: Vec<f64>,
    /// How the invocation ended.
    pub convergence: Convergence,
}

/// Everything one repetition collected, drained via [`drain`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepTelemetry {
    /// Solver invocations in driver order.
    pub events: Vec<SolverEvent>,
    /// One series per event, in the same order (empty unless the sink was
    /// installed with `trace = true`).
    pub series: Vec<ResidualSeries>,
    /// Dense/sparse matrix-product invocations.
    pub matmuls: u64,
    /// Sinkhorn scaling sweeps (one u/v update pair).
    pub sinkhorn_sweeps: u64,
    /// Bids placed by the auction assignment solver.
    pub auction_bids: u64,
    /// Heap allocations avoided by workspace buffer reuse
    /// ([`count_alloc_saved`]): each count is one scratch buffer that a hot
    /// loop re-used instead of allocating afresh.
    pub allocs_saved: u64,
    /// Bytes of heap allocation avoided by workspace reuse, paired with
    /// [`Self::allocs_saved`].
    pub alloc_bytes_saved: u64,
    /// Times a non-dense similarity representation was materialized into a
    /// dense matrix through the `Similarity::to_dense` choke point
    /// ([`count_densify`]).
    pub densifications: u64,
    /// Bytes of dense matrix materialized by those densifications, paired
    /// with [`Self::densifications`].
    pub densified_bytes: u64,
    /// Precomputation-cache lookups that found a reusable similarity
    /// ([`count_cache_hit`]) — the serving layer's "embedding phase skipped"
    /// signal.
    pub cache_hits: u64,
    /// Precomputation-cache lookups that had to compute from scratch
    /// ([`count_cache_miss`]).
    pub cache_misses: u64,
    /// Bytes of similarity representation served from the cache across the
    /// hits, paired with [`Self::cache_hits`].
    pub cache_bytes: u64,
    /// Accumulated wall-clock seconds per named phase.
    pub phases: Vec<(&'static str, f64)>,
}

#[derive(Debug, Default)]
struct SinkInner {
    events: Vec<SolverEvent>,
    /// Residuals recorded since the last [`record`] call, tagged with their
    /// routine so interleaved inner/outer loops sort themselves out.
    pending: Vec<(&'static str, f64)>,
    series: Vec<ResidualSeries>,
    phases: Vec<(&'static str, f64)>,
}

/// Shared state of one installed telemetry sink.
#[derive(Debug)]
pub struct SinkState {
    trace: bool,
    matmuls: AtomicU64,
    sinkhorn_sweeps: AtomicU64,
    auction_bids: AtomicU64,
    allocs_saved: AtomicU64,
    alloc_bytes_saved: AtomicU64,
    densifications: AtomicU64,
    densified_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_bytes: AtomicU64,
    inner: Mutex<SinkInner>,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<SinkState>>> = const { RefCell::new(None) };
}

/// Restores the previously installed sink (if any) when dropped, so sinks
/// nest correctly and a panicking repetition cannot leak its sink into the
/// next one.
#[must_use = "dropping the guard immediately uninstalls the sink"]
#[derive(Debug)]
pub struct TelemetryGuard {
    prev: Option<Arc<SinkState>>,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

fn swap_in(next: Option<Arc<SinkState>>) -> TelemetryGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), next));
    TelemetryGuard { prev }
}

/// Installs a fresh sink on the current thread. With `trace = true` the
/// sink additionally keeps per-iteration residual series ([`record_residual`]).
///
/// The returned guard restores the previous sink when dropped.
pub fn install(trace: bool) -> TelemetryGuard {
    swap_in(Some(Arc::new(SinkState {
        trace,
        matmuls: AtomicU64::new(0),
        sinkhorn_sweeps: AtomicU64::new(0),
        auction_bids: AtomicU64::new(0),
        allocs_saved: AtomicU64::new(0),
        alloc_bytes_saved: AtomicU64::new(0),
        densifications: AtomicU64::new(0),
        densified_bytes: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        cache_bytes: AtomicU64::new(0),
        inner: Mutex::new(SinkInner::default()),
    })))
}

/// Adopts an already-installed sink (from [`current`]) on this thread — how
/// the fork/join helpers extend the installing thread's sink to their
/// scoped workers. `None` adopts "no sink".
pub fn adopt(sink: Option<Arc<SinkState>>) -> TelemetryGuard {
    swap_in(sink)
}

/// The sink installed on the current thread, for propagation via [`adopt`].
/// Cheap (one `Arc` clone).
pub fn current() -> Option<Arc<SinkState>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether a sink is installed on the current thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_sink<R>(f: impl FnOnce(&SinkState) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_deref().map(f))
}

/// Records how one solver invocation ended. In trace mode, the residuals
/// recorded for `routine` since its previous [`record`] close into a
/// [`ResidualSeries`] paired with this event.
pub fn record(routine: &'static str, convergence: Convergence) {
    with_sink(|s| {
        let mut inner = s.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.push(SolverEvent { routine, convergence });
        if s.trace {
            let mut residuals = Vec::new();
            inner.pending.retain(|&(r, v)| {
                if r == routine {
                    residuals.push(v);
                    false
                } else {
                    true
                }
            });
            inner.series.push(ResidualSeries { routine, residuals, convergence });
        }
    });
}

/// Records one outer-iteration residual for the invocation of `routine`
/// currently in flight. No-op unless a sink is installed in trace mode.
pub fn record_residual(routine: &'static str, value: f64) {
    with_sink(|s| {
        if s.trace {
            s.inner.lock().unwrap_or_else(|e| e.into_inner()).pending.push((routine, value));
        }
    });
}

/// Counts one dense/sparse matrix-product invocation.
pub fn count_matmul() {
    with_sink(|s| s.matmuls.fetch_add(1, Ordering::Relaxed));
}

/// Counts one Sinkhorn scaling sweep (a u/v update pair).
pub fn count_sinkhorn_sweep() {
    with_sink(|s| s.sinkhorn_sweeps.fetch_add(1, Ordering::Relaxed));
}

/// Counts `n` auction bids.
pub fn count_auction_bids(n: u64) {
    with_sink(|s| s.auction_bids.fetch_add(n, Ordering::Relaxed));
}

/// Counts one heap allocation of `bytes` bytes avoided by reusing a
/// workspace scratch buffer instead of allocating afresh.
pub fn count_alloc_saved(bytes: u64) {
    with_sink(|s| {
        s.allocs_saved.fetch_add(1, Ordering::Relaxed);
        s.alloc_bytes_saved.fetch_add(bytes, Ordering::Relaxed);
    });
}

/// Counts one materialization of a non-dense similarity representation into
/// a dense matrix of `bytes` bytes (the `Similarity::to_dense` choke point).
pub fn count_densify(bytes: u64) {
    with_sink(|s| {
        s.densifications.fetch_add(1, Ordering::Relaxed);
        s.densified_bytes.fetch_add(bytes, Ordering::Relaxed);
    });
}

/// Counts one precomputation-cache hit serving `bytes` bytes of similarity
/// representation — the expensive similarity phase was skipped entirely.
pub fn count_cache_hit(bytes: u64) {
    with_sink(|s| {
        s.cache_hits.fetch_add(1, Ordering::Relaxed);
        s.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
    });
}

/// Counts one precomputation-cache miss (the similarity had to be computed
/// and was then inserted into the cache).
pub fn count_cache_miss() {
    with_sink(|s| s.cache_misses.fetch_add(1, Ordering::Relaxed));
}

/// Runs `f`, accumulating its wall-clock time under `name` when a sink is
/// installed. Repeated phases with the same name accumulate into one entry.
pub fn time_phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !active() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    with_sink(|s| {
        let mut inner = s.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = inner.phases.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += secs;
        } else {
            inner.phases.push((name, secs));
        }
    });
    out
}

/// Takes everything the current sink has collected, resetting it to empty.
/// Returns `RepTelemetry::default()` when no sink is installed.
pub fn drain() -> RepTelemetry {
    with_sink(|s| {
        let mut inner = s.inner.lock().unwrap_or_else(|e| e.into_inner());
        RepTelemetry {
            events: std::mem::take(&mut inner.events),
            series: std::mem::take(&mut inner.series),
            matmuls: s.matmuls.swap(0, Ordering::Relaxed),
            sinkhorn_sweeps: s.sinkhorn_sweeps.swap(0, Ordering::Relaxed),
            auction_bids: s.auction_bids.swap(0, Ordering::Relaxed),
            allocs_saved: s.allocs_saved.swap(0, Ordering::Relaxed),
            alloc_bytes_saved: s.alloc_bytes_saved.swap(0, Ordering::Relaxed),
            densifications: s.densifications.swap(0, Ordering::Relaxed),
            densified_bytes: s.densified_bytes.swap(0, Ordering::Relaxed),
            cache_hits: s.cache_hits.swap(0, Ordering::Relaxed),
            cache_misses: s.cache_misses.swap(0, Ordering::Relaxed),
            cache_bytes: s.cache_bytes.swap(0, Ordering::Relaxed),
            phases: std::mem::take(&mut inner.phases),
        }
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_names_round_trip() {
        for s in [
            StopReason::Tolerance,
            StopReason::MaxIter,
            StopReason::Interrupted,
            StopReason::Breakdown,
        ] {
            assert_eq!(StopReason::parse(s.as_str()), Some(s));
        }
        assert_eq!(StopReason::parse("diverged"), None);
    }

    #[test]
    fn no_sink_is_a_no_op() {
        assert!(!active());
        record("solver", Convergence::tolerance(3, 1e-9));
        record_residual("solver", 0.5);
        count_matmul();
        assert_eq!(time_phase("similarity", || 7), 7);
        assert_eq!(drain(), RepTelemetry::default());
    }

    #[test]
    fn events_counters_and_phases_drain() {
        let _g = install(false);
        count_matmul();
        count_matmul();
        count_sinkhorn_sweep();
        count_auction_bids(5);
        count_alloc_saved(1024);
        count_alloc_saved(2048);
        count_densify(4096);
        count_cache_hit(512);
        count_cache_hit(256);
        count_cache_miss();
        record("isorank", Convergence::max_iter(100, 0.2));
        time_phase("similarity", || std::thread::sleep(std::time::Duration::from_millis(1)));
        time_phase("similarity", || ());
        let t = drain();
        assert_eq!(t.matmuls, 2);
        assert_eq!(t.sinkhorn_sweeps, 1);
        assert_eq!(t.auction_bids, 5);
        assert_eq!(t.allocs_saved, 2);
        assert_eq!(t.alloc_bytes_saved, 3072);
        assert_eq!(t.densifications, 1);
        assert_eq!(t.densified_bytes, 4096);
        assert_eq!(t.cache_hits, 2);
        assert_eq!(t.cache_misses, 1);
        assert_eq!(t.cache_bytes, 768);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].routine, "isorank");
        assert!(!t.events[0].convergence.converged);
        assert_eq!(t.events[0].convergence.stop, StopReason::MaxIter);
        assert_eq!(t.phases.len(), 1, "same-name phases accumulate");
        assert!(t.phases[0].1 > 0.0);
        // Drained: the sink is empty again.
        assert_eq!(drain(), RepTelemetry::default());
    }

    #[test]
    fn residuals_ignored_without_trace() {
        let _g = install(false);
        record_residual("sinkhorn", 0.5);
        record("sinkhorn", Convergence::tolerance(1, 0.5));
        let t = drain();
        assert_eq!(t.events.len(), 1);
        assert!(t.series.is_empty());
    }

    #[test]
    fn trace_pairs_series_with_events_across_interleaved_routines() {
        let _g = install(true);
        // A gwl outer loop interleaves its own residuals with an inner
        // proximal_step invocation's residuals.
        record_residual("gwl", 0.9);
        record_residual("proximal_step", 0.4);
        record_residual("proximal_step", 0.1);
        record("proximal_step", Convergence::tolerance(2, 0.1));
        record_residual("gwl", 0.3);
        record("gwl", Convergence::tolerance(2, 0.3));
        let t = drain();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.series.len(), 2);
        assert_eq!(t.series[0].routine, "proximal_step");
        assert_eq!(t.series[0].residuals, vec![0.4, 0.1]);
        assert_eq!(t.series[1].routine, "gwl");
        assert_eq!(t.series[1].residuals, vec![0.9, 0.3]);
    }

    #[test]
    fn sinks_nest_and_restore() {
        let outer = install(false);
        count_matmul();
        {
            let _inner = install(false);
            count_matmul();
            count_matmul();
            assert_eq!(drain().matmuls, 2);
        }
        assert_eq!(drain().matmuls, 1, "outer sink restored untouched");
        drop(outer);
        assert!(!active());
    }

    #[test]
    fn adopted_sink_shares_counters_across_threads() {
        let _g = install(false);
        let shared = current();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    let _w = adopt(shared);
                    for _ in 0..100 {
                        count_matmul();
                    }
                });
            }
        });
        assert_eq!(drain().matmuls, 400);
    }

    #[test]
    fn sinks_are_thread_local() {
        let _g = install(false);
        count_matmul();
        let saw = std::thread::spawn(|| (active(), drain())).join().unwrap();
        assert_eq!(saw, (false, RepTelemetry::default()));
        assert_eq!(drain().matmuls, 1);
    }
}
