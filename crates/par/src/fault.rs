//! Test-only fault injection shared by the experiment harness and the
//! serving layer.
//!
//! Setting `GRAPHALIGN_FAULT=<site-substring>:panic|stall|numeric|io|truncate`
//! (or calling [`set_for_test`]) arms exactly one fault. Every *fault site*
//! whose id contains the substring fires it. Sites are plain strings:
//!
//! * the bench harness injects per repetition with
//!   `"{algorithm}:{noise}:{level}:r{rep}"` cell ids (PR 2's contract — the
//!   harness converts a panic into a structured `CellError::Panic` failure
//!   and a stall into `CellError::Timeout`);
//! * the serving layer injects at `"serve:worker:{algorithm}"` (panic /
//!   stall / numeric failure inside job execution), `"serve:cache:read"`
//!   (simulated IO error on a persisted-entry read), and
//!   `"serve:cache:persist"` (a torn, truncated write of a persisted entry).
//!
//! Execution-style faults (`panic`, `stall`) fire through [`maybe_inject`];
//! data-style faults (`numeric`, `io`, `truncate`) are *queried* via
//! [`active`] by the site that knows how to simulate them. A site that calls [`maybe_inject`]
//! ignores armed data faults and vice versa, so one spec never misfires at
//! the wrong layer.
//!
//! The spec is parsed from the environment once (so concurrently running
//! sites agree on it); tests override it programmatically instead of racing
//! on `set_var`.

use std::sync::{Once, RwLock};
use std::time::{Duration, Instant};

/// What the injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the site (exercises panic isolation).
    Panic,
    /// Spin until the installed budget expires (exercises cooperative
    /// deadlines).
    Stall,
    /// Simulate a numerical-subroutine failure at a site that knows how to
    /// report one (exercises the serve layer's numeric-retry policy).
    Numeric,
    /// Simulate an IO error at a data site (e.g. a cache-file read).
    IoError,
    /// Simulate a torn write: the data site persists a truncated entry.
    Truncate,
}

impl FaultKind {
    /// Stable spec-string name (`panic`, `stall`, `numeric`, `io`,
    /// `truncate`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Numeric => "numeric",
            FaultKind::IoError => "io",
            FaultKind::Truncate => "truncate",
        }
    }
}

#[derive(Debug, Clone)]
struct FaultSpec {
    /// Substring matched against the site id.
    pattern: String,
    kind: FaultKind,
}

static SPEC: RwLock<Option<FaultSpec>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();

fn ensure_env_loaded() {
    ENV_INIT.call_once(|| {
        if let Ok(raw) = std::env::var("GRAPHALIGN_FAULT") {
            match parse(&raw) {
                Some(spec) => *SPEC.write().expect("fault spec lock") = Some(spec),
                None => eprintln!(
                    "warning: ignoring malformed GRAPHALIGN_FAULT={raw:?} \
                     (expected <site-substring>:panic|stall|numeric|io|truncate)"
                ),
            }
        }
    });
}

fn parse(raw: &str) -> Option<FaultSpec> {
    let (pattern, kind) = raw.rsplit_once(':')?;
    if pattern.is_empty() {
        return None;
    }
    let kind = match kind {
        "panic" => FaultKind::Panic,
        "stall" => FaultKind::Stall,
        "numeric" => FaultKind::Numeric,
        "io" => FaultKind::IoError,
        "truncate" => FaultKind::Truncate,
        _ => return None,
    };
    Some(FaultSpec { pattern: pattern.to_string(), kind })
}

/// Arms (or with `None` disarms) the fault programmatically, overriding any
/// `GRAPHALIGN_FAULT` from the environment. Panics on a malformed spec so a
/// typo in a test fails loudly instead of silently injecting nothing.
pub fn set_for_test(raw: Option<&str>) {
    ensure_env_loaded();
    let spec = raw.map(|r| parse(r).unwrap_or_else(|| panic!("malformed fault spec {r:?}")));
    *SPEC.write().expect("fault spec lock") = spec;
}

/// The fault kind armed for `site_id`, if any — a pure query, used by data
/// sites ([`FaultKind::IoError`], [`FaultKind::Truncate`]) that simulate the
/// failure themselves. `None` in every production run.
pub fn active(site_id: &str) -> Option<FaultKind> {
    ensure_env_loaded();
    let spec = SPEC.read().expect("fault spec lock").clone()?;
    site_id.contains(&spec.pattern).then_some(spec.kind)
}

/// Fires an armed *execution* fault if `site_id` matches: panics for
/// [`FaultKind::Panic`], spins until the installed budget expires for
/// [`FaultKind::Stall`]. Data-style kinds (and non-matching sites, and every
/// production run) are a no-op.
pub fn maybe_inject(site_id: &str) {
    match active(site_id) {
        Some(FaultKind::Panic) => panic!("injected fault: panic in {site_id}"),
        Some(FaultKind::Stall) => {
            // Spin cooperatively: the budget expiring is the expected exit.
            // The safety cap turns a stall armed without a deadline into a
            // loud failure instead of a hung test run.
            let start = Instant::now();
            while !crate::budget::exceeded() {
                if start.elapsed() > Duration::from_secs(30) {
                    panic!("injected stall in {site_id} hit the 30 s safety cap");
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Some(FaultKind::Numeric | FaultKind::IoError | FaultKind::Truncate) | None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds_and_rejects_garbage() {
        let p = parse("IsoRank:One-Way:0.05:panic").unwrap();
        assert_eq!(p.kind, FaultKind::Panic);
        assert_eq!(p.pattern, "IsoRank:One-Way:0.05");
        let s = parse("GWL:stall").unwrap();
        assert_eq!(s.kind, FaultKind::Stall);
        let io = parse("serve:cache:read:io").unwrap();
        assert_eq!(io.kind, FaultKind::IoError);
        assert_eq!(io.pattern, "serve:cache:read");
        let t = parse("serve:cache:persist:truncate").unwrap();
        assert_eq!(t.kind, FaultKind::Truncate);
        let n = parse("serve:worker:REGAL:numeric").unwrap();
        assert_eq!(n.kind, FaultKind::Numeric);
        assert_eq!(n.pattern, "serve:worker:REGAL");
        assert!(parse("no-kind").is_none());
        assert!(parse(":panic").is_none());
        assert!(parse("x:explode").is_none());
    }

    #[test]
    fn kind_names_match_spec_grammar() {
        for kind in [
            FaultKind::Panic,
            FaultKind::Stall,
            FaultKind::Numeric,
            FaultKind::IoError,
            FaultKind::Truncate,
        ] {
            let spec = parse(&format!("some-site:{}", kind.as_str())).unwrap();
            assert_eq!(spec.kind, kind);
        }
    }

    #[test]
    fn data_kinds_never_fire_through_maybe_inject() {
        // `maybe_inject` must ignore io/truncate so a data fault armed for
        // the cache cannot blow up a worker that happens to match.
        set_for_test(Some("shared-substring:io"));
        maybe_inject("shared-substring:worker"); // must not panic or stall
        assert_eq!(active("shared-substring:worker"), Some(FaultKind::IoError));
        assert_eq!(active("other"), None);
        set_for_test(None);
        assert_eq!(active("shared-substring:worker"), None);
    }
}
