//! Deterministic data-parallel execution layer for the graphalign workspace.
//!
//! Every hot kernel in the workspace (dense products, Sinkhorn scalings,
//! graphlet counting, per-node similarity rows) is expressed through the
//! fork/join helpers in this crate instead of spawning threads directly. The
//! helpers make one promise that plain thread pools do not:
//!
//! > **The result is a pure function of the input — never of the thread
//! > count.**
//!
//! That holds because work is split at *fixed chunk boundaries* chosen from
//! the problem size alone, each chunk is computed independently, and any
//! reduction over chunk results happens sequentially in chunk order. Running
//! with 1 thread, 64 threads, or with the `parallel` feature disabled
//! produces bit-identical floating-point output, so correctness tests and
//! paper-figure reproductions are insensitive to the machine's core count.
//!
//! # Feature `parallel` (default)
//!
//! With the feature enabled, chunks are executed by scoped OS threads
//! (`std::thread::scope` — the workspace builds offline, so no external
//! thread-pool crate is available). The thread count is taken from, in order:
//! [`set_max_threads`], the `GRAPHALIGN_THREADS` environment variable, the
//! `RAYON_NUM_THREADS` environment variable (honored for familiarity), and
//! finally [`std::thread::available_parallelism`]. With the feature disabled
//! the same chunk schedule runs inline and no thread is ever spawned.
//!
//! Small inputs (below [`MIN_PAR_WORK`] work items) also run inline: scoped
//! threads cost tens of microseconds to fork and join, which would dominate
//! kernels on small matrices.

pub mod budget;
pub mod fault;
pub mod telemetry;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Work threshold (in `cost_per_item` units, 1 unit ≈ one multiply-add)
/// below which helpers run inline even when the `parallel` feature is
/// enabled: forking scoped threads costs tens of microseconds, which would
/// dominate kernels this small.
pub const MIN_PAR_WORK: usize = 1 << 17;

/// Thread-count override installed by [`set_max_threads`]; 0 means "unset".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// One unit of work handed to a worker: chunk index, its index range, and
/// the disjoint sub-slice it owns.
#[cfg(feature = "parallel")]
type Job<'a, T> = (usize, Range<usize>, &'a mut [T]);

/// Caps the number of worker threads used by all helpers in this crate.
///
/// Takes precedence over `GRAPHALIGN_THREADS` / `RAYON_NUM_THREADS`. Passing
/// `0` clears the override. Because results are thread-count independent,
/// this knob only affects wall-clock time.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

fn env_threads() -> Option<usize> {
    for var in ["GRAPHALIGN_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// The number of worker threads helpers may use for large inputs.
///
/// Always `1` when the `parallel` feature is disabled.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    let explicit = MAX_THREADS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..len` into the fixed chunk ranges all helpers use: `chunk_len`
/// items each, last chunk possibly shorter. The schedule depends only on
/// `len` and `chunk_len` — never on the thread count — which is what makes
/// chunked reductions deterministic.
pub fn chunk_ranges(len: usize, chunk_len: usize) -> Vec<Range<usize>> {
    assert!(chunk_len > 0, "chunk_len must be positive");
    (0..len.div_ceil(chunk_len)).map(|c| c * chunk_len..((c + 1) * chunk_len).min(len)).collect()
}

/// Picks the chunk length for a map over items of roughly uniform cost
/// `cost_per_item` (arbitrary units where 1 unit ≈ one multiply-add).
///
/// The quantum is a **pure function of the per-item cost** — deliberately
/// independent of the thread count — so chunk boundaries (and therefore the
/// combining order of chunked reductions) never change with the machine.
/// Each chunk carries about `MIN_PAR_WORK / 2` work units: enough to
/// amortize fork overhead, small enough that work-stealing over chunks
/// balances load across any realistic core count.
fn auto_chunk_len(_len: usize, cost_per_item: usize) -> usize {
    (MIN_PAR_WORK / 2).div_ceil(cost_per_item.max(1)).max(1)
}

/// Runs `f(chunk_index, chunk)` over fixed-size chunks of `data`, in parallel
/// for large inputs.
///
/// `cost_per_item` is the approximate work per element (1 ≈ one flop); it
/// only influences the inline/parallel decision and chunk sizing, never the
/// result.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    cost_per_item: usize,
    f: impl Fn(usize, Range<usize>, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = auto_chunk_len(len, cost_per_item);
    let ranges = chunk_ranges(len, chunk_len);
    if !should_fork(len, cost_per_item, ranges.len()) {
        let mut rest = data;
        let mut offset = 0;
        for (c, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.end - offset);
            f(c, r.clone(), head);
            rest = tail;
            offset = r.end;
        }
        return;
    }
    #[cfg(feature = "parallel")]
    {
        // Hand each worker a round-robin share of the (disjoint) chunks.
        let mut jobs: Vec<Job<'_, T>> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut offset = 0;
        for (c, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.end - offset);
            jobs.push((c, r.clone(), head));
            rest = tail;
            offset = r.end;
        }
        let workers = max_threads().min(jobs.len());
        let mut shares: Vec<Vec<Job<'_, T>>> = (0..workers).map(|_| Vec::new()).collect();
        for (slot, job) in jobs.into_iter().enumerate() {
            shares[slot % workers].push(job);
        }
        let f = &f;
        let parent_budget = budget::current();
        let parent_sink = telemetry::current();
        std::thread::scope(|s| {
            for share in shares {
                let parent_budget = parent_budget.clone();
                let parent_sink = parent_sink.clone();
                s.spawn(move || {
                    let _budget = budget::adopt(parent_budget);
                    let _telemetry = telemetry::adopt(parent_sink);
                    for (c, r, chunk) in share {
                        f(c, r, chunk);
                    }
                });
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("should_fork is false without the `parallel` feature");
}

/// Runs `f(row_range, block)` over blocks of whole rows of a row-major
/// buffer, in parallel for large inputs. Blocks are split at row boundaries
/// (`row_len` elements per row) so matrix kernels can hand out disjoint
/// row slices.
///
/// # Panics
/// Panics (debug) when `data.len()` is not a multiple of `row_len`.
pub fn for_each_row_block_mut<T: Send>(
    data: &mut [T],
    row_len: usize,
    cost_per_row: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    if data.is_empty() || row_len == 0 {
        return;
    }
    debug_assert_eq!(data.len() % row_len, 0, "data must hold whole rows");
    let rows = data.len() / row_len;
    let chunk_rows = auto_chunk_len(rows, cost_per_row);
    let ranges = chunk_ranges(rows, chunk_rows);
    if !should_fork(rows, cost_per_row, ranges.len()) {
        let mut rest = data;
        let mut offset = 0;
        for r in ranges {
            let (head, tail) = rest.split_at_mut((r.end - offset) * row_len);
            offset = r.end;
            f(r, head);
            rest = tail;
        }
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let mut jobs: Vec<(Range<usize>, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut offset = 0;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut((r.end - offset) * row_len);
            jobs.push((r.clone(), head));
            rest = tail;
            offset = r.end;
        }
        let workers = max_threads().min(jobs.len());
        let mut shares: Vec<Vec<(Range<usize>, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (slot, job) in jobs.into_iter().enumerate() {
            shares[slot % workers].push(job);
        }
        let f = &f;
        let parent_budget = budget::current();
        let parent_sink = telemetry::current();
        std::thread::scope(|s| {
            for share in shares {
                let parent_budget = parent_budget.clone();
                let parent_sink = parent_sink.clone();
                s.spawn(move || {
                    let _budget = budget::adopt(parent_budget);
                    let _telemetry = telemetry::adopt(parent_sink);
                    for (r, block) in share {
                        f(r, block);
                    }
                });
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("should_fork is false without the `parallel` feature");
}

fn should_fork(len: usize, cost_per_item: usize, chunks: usize) -> bool {
    cfg!(feature = "parallel")
        && chunks > 1
        && max_threads() > 1
        && len.saturating_mul(cost_per_item.max(1)) >= MIN_PAR_WORK
}

/// Computes `(0..len).map(f)` into a `Vec`, in parallel for large inputs.
///
/// Equivalent to the sequential map for every thread count: each index is
/// produced exactly once, by exactly one worker, into its own slot.
pub fn map_collect<T: Send>(
    len: usize,
    cost_per_item: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let chunk_len = auto_chunk_len(len, cost_per_item);
    let ranges = chunk_ranges(len, chunk_len);
    if !should_fork(len, cost_per_item, ranges.len()) {
        return (0..len).map(f).collect();
    }
    #[cfg(feature = "parallel")]
    {
        let mut parts: Vec<Vec<T>> =
            map_chunks_parallel(&ranges, &|r: Range<usize>| r.map(&f).collect::<Vec<T>>());
        let mut out = Vec::with_capacity(len);
        for part in parts.iter_mut() {
            out.append(part);
        }
        out
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("should_fork is false without the `parallel` feature");
}

/// Extracts a human-readable message from a caught panic payload
/// (`panic!("...")` produces `&str` or `String`; anything else is opaque).
/// Shared by every panic-isolation site ([`try_map_collect`] here, the
/// serving layer's worker isolation).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Panic-isolating [`map_collect`]: computes `(0..len).map(f)` into a `Vec`,
/// converting a panic in `f(i)` into `Err(message)` for that index instead
/// of unwinding (and, under the `parallel` feature, instead of poisoning the
/// worker pool and aborting the process).
///
/// The chunk schedule is identical to [`map_collect`]'s — a pure function of
/// `len` and `cost_per_item` — so both the successful values and the
/// positions of failures are bit-identical for every thread count. Each index
/// is caught independently: one panicking item never discards its chunk
/// neighbors' results.
///
/// The closure is wrapped in [`std::panic::AssertUnwindSafe`]; callers
/// sharing writable state across items (none of the harness call sites do)
/// must ensure a mid-item panic cannot leave that state torn.
pub fn try_map_collect<T: Send>(
    len: usize,
    cost_per_item: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<Result<T, String>> {
    map_collect(len, cost_per_item, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Applies `fold` to each fixed chunk of `0..len` and returns the per-chunk
/// results **in chunk order**, computing chunks in parallel for large inputs.
///
/// This is the deterministic-reduction primitive: callers fold the returned
/// vector sequentially, so the combining order is fixed regardless of thread
/// count. `cost_per_item` approximates per-index work for sizing decisions.
pub fn fold_chunks<A: Send>(
    len: usize,
    cost_per_item: usize,
    fold: impl Fn(Range<usize>) -> A + Sync,
) -> Vec<A> {
    let chunk_len = auto_chunk_len(len, cost_per_item);
    let ranges = chunk_ranges(len, chunk_len);
    if !should_fork(len, cost_per_item, ranges.len()) {
        return ranges.into_iter().map(fold).collect();
    }
    #[cfg(feature = "parallel")]
    {
        map_chunks_parallel(&ranges, &fold)
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("should_fork is false without the `parallel` feature");
}

/// Deterministic parallel sum of `f(i)` over `0..len`: chunk partial sums are
/// accumulated left-to-right within each fixed chunk and combined in chunk
/// order, so the floating-point result is thread-count independent (though it
/// may differ from a single un-chunked left-to-right sum).
pub fn sum_indexed(len: usize, cost_per_item: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    fold_chunks(len, cost_per_item, |r| r.map(&f).sum::<f64>()).into_iter().sum()
}

/// Folds `0..len` in round-robin strides (`start, start+step, …`), one
/// stride per worker, returning per-stride results in stride order.
///
/// Unlike [`fold_chunks`], the partition here depends on the thread count,
/// so this is only appropriate for **exactly associative** accumulations —
/// integer counters and the like — where any grouping yields the same total.
/// The round-robin stride balances heavily skewed per-index costs (e.g. ESU
/// graphlet trees, whose size shrinks with the root index).
pub fn fold_strided<A: Send>(
    len: usize,
    cost_per_item: usize,
    fold: impl Fn(usize, usize) -> A + Sync,
) -> Vec<A> {
    if len == 0 {
        return Vec::new();
    }
    if !should_fork(len, cost_per_item, 2) {
        return vec![fold(0, 1)];
    }
    #[cfg(feature = "parallel")]
    {
        let workers = max_threads().min(len);
        let fold = &fold;
        let parent_budget = budget::current();
        let parent_sink = telemetry::current();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let parent_budget = parent_budget.clone();
                    let parent_sink = parent_sink.clone();
                    s.spawn(move || {
                        let _budget = budget::adopt(parent_budget);
                        let _telemetry = telemetry::adopt(parent_sink);
                        fold(w, workers)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        })
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("should_fork is false without the `parallel` feature");
}

/// Runs every chunk closure on scoped threads and collects results in chunk
/// order.
#[cfg(feature = "parallel")]
fn map_chunks_parallel<A: Send>(
    ranges: &[Range<usize>],
    fold: &(impl Fn(Range<usize>) -> A + Sync),
) -> Vec<A> {
    let workers = max_threads().min(ranges.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<A>> = (0..ranges.len()).map(|_| None).collect();
    {
        let slot_ptrs: Vec<_> = slots.iter_mut().collect();
        let shared = std::sync::Mutex::new(slot_ptrs);
        let parent_budget = budget::current();
        let parent_sink = telemetry::current();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let shared = &shared;
                    let parent_budget = parent_budget.clone();
                    let parent_sink = parent_sink.clone();
                    s.spawn(move || {
                        let _budget = budget::adopt(parent_budget);
                        let _telemetry = telemetry::adopt(parent_sink);
                        let mut produced: Vec<(usize, A)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= ranges.len() {
                                break;
                            }
                            produced.push((c, fold(ranges[c].clone())));
                        }
                        let mut slots = shared.lock().expect("slot mutex poisoned");
                        for (c, a) in produced {
                            *slots[c] = Some(a);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker thread panicked");
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every chunk produced")).collect()
}

/// Re-exports for `use graphalign_par::prelude::*` call sites.
pub mod prelude {
    pub use crate::{
        budget, fault, fold_chunks, fold_strided, for_each_chunk_mut, for_each_row_block_mut,
        map_collect, max_threads, set_max_threads, sum_indexed, telemetry, try_map_collect,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_tile_the_input_exactly() {
        for len in [0usize, 1, 5, 4096, 4097, 10_000] {
            for chunk in [1usize, 7, 4096] {
                let ranges = chunk_ranges(len, chunk);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(r.end > r.start);
                    assert!(r.end - r.start <= chunk);
                    expect = r.end;
                }
                assert_eq!(expect, len);
            }
        }
    }

    #[test]
    fn map_collect_matches_sequential_map() {
        let n = 300_000;
        let expected: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        for threads in [1, 2, 7] {
            set_max_threads(threads);
            let got = map_collect(n, 1, |i| (i as f64).sqrt());
            assert_eq!(got, expected, "threads={threads}");
        }
        set_max_threads(0);
    }

    #[test]
    fn for_each_chunk_mut_writes_every_slot_once() {
        let n = 300_000;
        for threads in [1, 3, 16] {
            set_max_threads(threads);
            let mut data = vec![0u64; n];
            for_each_chunk_mut(&mut data, 1, |_, range, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot += (range.start + off) as u64 + 1;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1), "threads={threads}");
        }
        set_max_threads(0);
    }

    #[test]
    fn sum_is_bit_identical_across_thread_counts() {
        // Floating-point catastrophe bait: wildly varying magnitudes.
        let n = 400_000;
        let f = |i: usize| ((i * 2654435761) % 1000) as f64 * 1e-3 + (i as f64).powi(3) * 1e-12;
        set_max_threads(1);
        let s1 = sum_indexed(n, 1, f);
        let mut sums = vec![s1];
        for threads in [2, 5, 32] {
            set_max_threads(threads);
            sums.push(sum_indexed(n, 1, f));
        }
        set_max_threads(0);
        assert!(
            sums.iter().all(|s| s.to_bits() == s1.to_bits()),
            "sums differ across thread counts: {sums:?}"
        );
    }

    #[test]
    fn fold_chunks_preserves_chunk_order() {
        set_max_threads(8);
        let ids = fold_chunks(400_000, 1, |r| r.start);
        assert!(ids.len() > 1, "expected multiple chunks");
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        set_max_threads(0);
    }

    #[test]
    fn row_blocks_split_on_row_boundaries() {
        let (rows, cols) = (20_000, 17);
        for threads in [1, 4] {
            set_max_threads(threads);
            let mut data = vec![0.0f64; rows * cols];
            for_each_row_block_mut(&mut data, cols, cols, |row_range, block| {
                assert_eq!(block.len(), (row_range.end - row_range.start) * cols);
                for (off, row) in block.chunks_mut(cols).enumerate() {
                    let i = row_range.start + off;
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (i * cols + j) as f64;
                    }
                }
            });
            assert!(data.iter().enumerate().all(|(p, &v)| v == p as f64), "threads={threads}");
        }
        set_max_threads(0);
    }

    #[test]
    fn small_inputs_run_inline() {
        // Nothing observable to assert beyond correctness, but exercise the
        // inline path explicitly (len * cost < MIN_PAR_WORK).
        let mut data = vec![1.0f64; 8];
        for_each_chunk_mut(&mut data, 1, |_, _, chunk| {
            for v in chunk {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
        assert_eq!(sum_indexed(8, 1, |i| i as f64), 28.0);
    }

    #[test]
    fn strided_integer_counts_are_exact_for_any_thread_count() {
        let n = 300_000;
        let total_seq: u64 = (0..n as u64).sum();
        for threads in [1, 3, 8] {
            set_max_threads(threads);
            let partials = fold_strided(n, 1, |start, step| {
                let mut acc = 0u64;
                let mut i = start;
                while i < n {
                    acc += i as u64;
                    i += step;
                }
                acc
            });
            assert_eq!(partials.iter().sum::<u64>(), total_seq, "threads={threads}");
        }
        set_max_threads(0);
    }

    #[test]
    fn try_map_collect_matches_map_collect_when_nothing_panics() {
        let n = 300_000;
        for threads in [1, 2, 7] {
            set_max_threads(threads);
            let got = try_map_collect(n, 1, |i| i * 2);
            assert!(
                got.iter().enumerate().all(|(i, r)| r.as_ref() == Ok(&(i * 2))),
                "threads={threads}"
            );
        }
        set_max_threads(0);
    }

    /// Serializes tests that swap the (global) panic hook.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn try_map_collect_isolates_panics_deterministically() {
        let _lock = HOOK_LOCK.lock().unwrap();
        // Keep panic-hook noise out of the test log while panics are caught.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let n = 300_000;
        let poison = |i: usize| {
            if i % 97 == 13 {
                panic!("boom at {i}");
            }
            i as u64
        };
        set_max_threads(1);
        let baseline = try_map_collect(n, 1, poison);
        for threads in [2, 8] {
            set_max_threads(threads);
            let got = try_map_collect(n, 1, poison);
            assert_eq!(got, baseline, "threads={threads}");
        }
        set_max_threads(0);
        std::panic::set_hook(prev);
        assert_eq!(baseline[13], Err("boom at 13".to_string()));
        assert_eq!(baseline[14], Ok(14));
        let failures = baseline.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, n.div_ceil(97), "one failure per residue class");
    }

    #[test]
    fn try_map_collect_reports_string_payloads() {
        let _lock = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let got = try_map_collect(2, 1, |i| {
            if i == 1 {
                // String (formatted) payload, unlike the &'static str case.
                panic!("{}", format!("dynamic {i}"));
            }
            i
        });
        std::panic::set_hook(prev);
        assert_eq!(got[0], Ok(0));
        assert_eq!(got[1], Err("dynamic 1".to_string()));
    }

    #[test]
    fn worker_threads_inherit_the_installed_budget() {
        if !cfg!(feature = "parallel") {
            return;
        }
        set_max_threads(4);
        let _g = budget::install(Some(std::time::Duration::ZERO));
        // Every index polls the budget from whatever worker runs it.
        let seen = map_collect(300_000, 1, |_| budget::exceeded());
        set_max_threads(0);
        assert!(seen.iter().all(|&b| b), "all workers must see the expired budget");
    }

    #[test]
    fn worker_threads_inherit_the_installed_telemetry_sink() {
        if !cfg!(feature = "parallel") {
            return;
        }
        set_max_threads(4);
        let _g = telemetry::install(false);
        // Every index bumps the shared counter from whatever worker runs it.
        map_collect(300_000, 1, |_| telemetry::count_matmul());
        set_max_threads(0);
        assert_eq!(telemetry::drain().matmuls, 300_000);
    }

    #[test]
    fn max_threads_is_positive_and_overridable() {
        assert!(max_threads() >= 1);
        set_max_threads(3);
        if cfg!(feature = "parallel") {
            assert_eq!(max_threads(), 3);
        } else {
            assert_eq!(max_threads(), 1);
        }
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
