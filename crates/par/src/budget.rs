//! Cooperative per-cell execution budgets: a deadline plus a cancellation
//! flag that iterative solvers poll between outer iterations.
//!
//! The harness installs a budget around one experiment cell; every solver
//! loop in the workspace (Sinkhorn scalings, power/Lanczos iterations,
//! IsoRank/GWL/NetAlign outer iterations, auction rounds) checks
//! [`exceeded`] once per iteration and winds down gracefully instead of
//! running away — the cell is then *recorded* as timed out rather than
//! killed from outside.
//!
//! # Scope and propagation
//!
//! The current budget is **thread-local**, not process-global, so
//! concurrently running cells (or tests) never observe each other's
//! deadlines. The fork/join helpers in this crate propagate the installing
//! thread's budget into their scoped workers, which is the only way worker
//! threads are created in this workspace — a solver parallelized through
//! [`crate::map_collect`] or [`crate::for_each_chunk_mut`] therefore sees
//! the same budget on every thread.
//!
//! Polling [`exceeded`] costs one thread-local read plus (when a deadline is
//! armed) one `Instant::now()`; it is meant for *outer* loops, not inner
//! per-element kernels.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared state of one installed budget.
#[derive(Debug)]
pub struct BudgetState {
    /// Wall-clock instant after which [`exceeded`] reports `true`; `None`
    /// means the budget only responds to [`cancel_current`].
    deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    cancelled: AtomicBool,
}

impl BudgetState {
    fn is_exceeded(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Cooperatively cancels this budget from *any* thread holding the
    /// `Arc<BudgetState>` (obtained via [`current`]): every thread that
    /// installed or adopted it observes [`exceeded`] `== true` from now on.
    /// This is how the serving layer cancels an in-flight request from a
    /// connection-handler thread while a worker thread runs the job.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<BudgetState>>> = const { RefCell::new(None) };
}

/// Restores the previously installed budget (if any) when dropped, so
/// budgets nest correctly and a panicking cell cannot leak its deadline
/// into the next one.
#[must_use = "dropping the guard immediately uninstalls the budget"]
#[derive(Debug)]
pub struct BudgetGuard {
    prev: Option<Arc<BudgetState>>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

fn swap_in(next: Option<Arc<BudgetState>>) -> BudgetGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), next));
    BudgetGuard { prev }
}

/// Installs a budget on the current thread: [`exceeded`] reports `true` once
/// `timeout` has elapsed (measured from now) or after [`cancel_current`].
/// `timeout: None` arms only the cancellation flag.
///
/// The returned guard restores the previous budget when dropped.
pub fn install(timeout: Option<Duration>) -> BudgetGuard {
    let state = Arc::new(BudgetState {
        deadline: timeout.map(|t| Instant::now() + t),
        cancelled: AtomicBool::new(false),
    });
    swap_in(Some(state))
}

/// Adopts an already-running budget (from [`current`]) on this thread —
/// how the fork/join helpers extend the installing thread's budget to
/// their scoped workers. `None` adopts "no budget".
pub fn adopt(budget: Option<Arc<BudgetState>>) -> BudgetGuard {
    swap_in(budget)
}

/// The budget installed on the current thread, for propagation via
/// [`adopt`]. Cheap (one `Arc` clone).
pub fn current() -> Option<Arc<BudgetState>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Cooperatively cancels the current budget: every thread sharing it (the
/// installer and any workers it forked) observes [`exceeded`] `== true`
/// from now on. No-op without an installed budget.
pub fn cancel_current() {
    if let Some(b) = current() {
        b.cancel();
    }
}

/// Whether the current thread's budget has expired or been cancelled.
/// Always `false` when no budget is installed.
pub fn exceeded() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|b| b.is_exceeded()))
}

/// Whether any budget (deadline-armed or cancel-only) is installed on the
/// current thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_never_exceeds() {
        assert!(!active());
        assert!(!exceeded());
        cancel_current(); // no-op
        assert!(!exceeded());
    }

    #[test]
    fn zero_timeout_exceeds_immediately_and_guard_restores() {
        {
            let _g = install(Some(Duration::ZERO));
            assert!(active());
            assert!(exceeded());
        }
        assert!(!active());
        assert!(!exceeded());
    }

    #[test]
    fn generous_deadline_is_not_exceeded_until_cancelled() {
        let _g = install(Some(Duration::from_secs(3600)));
        assert!(!exceeded());
        cancel_current();
        assert!(exceeded());
    }

    #[test]
    fn cancel_only_budget() {
        let _g = install(None);
        assert!(active());
        assert!(!exceeded());
        cancel_current();
        assert!(exceeded());
    }

    #[test]
    fn budgets_nest_and_restore() {
        let _outer = install(Some(Duration::from_secs(3600)));
        assert!(!exceeded());
        {
            let _inner = install(Some(Duration::ZERO));
            assert!(exceeded());
        }
        // Outer budget restored, still healthy.
        assert!(active());
        assert!(!exceeded());
    }

    #[test]
    fn adopted_budget_shares_cancellation() {
        let _g = install(None);
        let shared = current();
        let handle = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let _w = adopt(shared);
                let start = Instant::now();
                while !exceeded() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                true
            })
        };
        cancel_current();
        assert!(handle.join().expect("worker finished"), "worker saw cancellation");
    }

    #[test]
    fn cancel_through_the_shared_state_reaches_the_installer() {
        let _g = install(None);
        let shared = current().expect("budget installed");
        assert!(!exceeded());
        // Another thread cancels via the Arc without adopting the budget.
        let shared2 = shared.clone();
        std::thread::spawn(move || shared2.cancel()).join().unwrap();
        assert!(exceeded());
    }

    #[test]
    fn budgets_are_thread_local() {
        let _g = install(Some(Duration::ZERO));
        assert!(exceeded());
        // A thread that does NOT adopt sees no budget.
        let saw = std::thread::spawn(|| (active(), exceeded())).join().unwrap();
        assert_eq!(saw, (false, false));
    }
}
