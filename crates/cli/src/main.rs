//! The `graphalign` command-line entry point; see the library crate for the
//! subcommand implementations.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match graphalign_cli::run(&argv) {
        Ok(msg) => print!("{msg}{}", if msg.ends_with('\n') { "" } else { "\n" }),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
