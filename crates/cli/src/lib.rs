//! Implementation of the `graphalign` command-line tool.
//!
//! Subcommands:
//!
//! * `align` — align two edge-list graphs with any of the nine algorithms
//!   and any assignment method, writing a `source target` mapping file;
//! * `generate` — emit a synthetic benchmark graph (ER/BA/WS/NW/PL);
//! * `perturb` — apply the benchmark protocol (permute + noise) to a graph,
//!   writing the target graph and the ground-truth mapping;
//! * `score` — evaluate a mapping file against a ground truth and/or the
//!   structural measures.
//!
//! The argument grammar is deliberately tiny (`--flag value` pairs), so the
//! tool has no dependency beyond the workspace crates.

use graphalign::{registry, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::{io, Graph};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Write};

/// A parsed `--flag value` argument list.
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; returns an error message on stray tokens.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            let key =
                tok.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {tok:?}"))?;
            let value = it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.to_string();
            flags.insert(key.to_string(), value);
        }
        Ok(Self { flags })
    }

    /// Required flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.flags.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing --{key}"))
    }

    /// Optional flag with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Optional numeric flag.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

/// Looks up an aligner by case-insensitive name.
pub fn find_aligner(name: &str) -> Result<Box<dyn Aligner + Send + Sync>, String> {
    registry().into_iter().find(|a| a.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let names: Vec<&str> = registry_names();
        format!("unknown algorithm {name:?}; available: {}", names.join(", "))
    })
}

/// The canonical algorithm names.
pub fn registry_names() -> Vec<&'static str> {
    registry().iter().map(|a| a.name()).collect()
}

/// Parses an assignment method label.
pub fn parse_assignment(label: &str) -> Result<AssignmentMethod, String> {
    AssignmentMethod::parse_label(label)
}

/// Reads an edge-list graph from a path.
pub fn read_graph(path: &str) -> Result<Graph, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    io::read_edge_list(BufReader::new(file)).map(|p| p.graph).map_err(|e| format!("{path}: {e}"))
}

/// `align` subcommand.
pub fn cmd_align(args: &Args) -> Result<String, String> {
    let aligner = find_aligner(args.require("algorithm")?)?;
    let source = read_graph(args.require("source")?)?;
    let target = read_graph(args.require("target")?)?;
    let method = parse_assignment(args.get_or("assignment", "jv"))?;
    let timeout: f64 = args.get_parse("timeout", 0.0)?;
    if timeout < 0.0 || !timeout.is_finite() {
        return Err("--timeout needs a non-negative number of seconds".into());
    }
    // A cooperative deadline: the iterative solvers poll it at iteration
    // boundaries, so an oversized instance fails cleanly instead of hanging.
    let _budget = (timeout > 0.0).then(|| {
        graphalign_par::budget::install(Some(std::time::Duration::from_secs_f64(timeout)))
    });
    let alignment = aligner.align_with(&source, &target, method).map_err(|e| {
        if e.is_interrupted() {
            format!("alignment exceeded --timeout {timeout}s: {e}")
        } else {
            format!("alignment failed: {e}")
        }
    })?;
    let mut out = String::new();
    for (u, &v) in alignment.iter().enumerate() {
        out.push_str(&format!("{u} {v}\n"));
    }
    if let Some(path) = args.flags.get("out") {
        let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(out.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
        Ok(format!(
            "aligned {} nodes with {} + {}; mapping written to {path}",
            alignment.len(),
            aligner.name(),
            method.label()
        ))
    } else {
        Ok(out)
    }
}

/// `generate` subcommand.
pub fn cmd_generate(args: &Args) -> Result<String, String> {
    let model = args.require("model")?;
    let n: usize = args.get_parse("n", 1000)?;
    let seed: u64 = args.get_parse("seed", 2023)?;
    let graph = match model.to_ascii_lowercase().as_str() {
        "er" => graphalign_gen::erdos_renyi(n, args.get_parse("p", 0.009)?, seed),
        "ba" => graphalign_gen::barabasi_albert(n, args.get_parse("m", 5)?, seed),
        "ws" => graphalign_gen::watts_strogatz(
            n,
            args.get_parse("k", 10)?,
            args.get_parse("p", 0.5)?,
            seed,
        ),
        "nw" => graphalign_gen::newman_watts(
            n,
            args.get_parse("k", 7)?,
            args.get_parse("p", 0.5)?,
            seed,
        ),
        "pl" => graphalign_gen::powerlaw_cluster(
            n,
            args.get_parse("m", 5)?,
            args.get_parse("p", 0.5)?,
            seed,
        ),
        other => return Err(format!("unknown model {other:?}; use er|ba|ws|nw|pl")),
    };
    let path = args.require("out")?;
    let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    io::write_edge_list(&graph, &mut f).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!(
        "wrote {model} graph: {} nodes, {} edges -> {path}",
        graph.node_count(),
        graph.edge_count()
    ))
}

/// `perturb` subcommand.
pub fn cmd_perturb(args: &Args) -> Result<String, String> {
    use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
    let graph = read_graph(args.require("input")?)?;
    let model = match args.get_or("noise", "one-way").to_ascii_lowercase().as_str() {
        "one-way" => NoiseModel::OneWay,
        "multi-modal" => NoiseModel::MultiModal,
        "two-way" => NoiseModel::TwoWay,
        other => return Err(format!("unknown noise {other:?}")),
    };
    let level: f64 = args.get_parse("level", 0.05)?;
    let seed: u64 = args.get_parse("seed", 2023)?;
    let instance = make_instance(&graph, &NoiseConfig::new(model, level), seed);
    let target_path = args.require("out-target")?;
    let mut f = File::create(target_path).map_err(|e| format!("{target_path}: {e}"))?;
    io::write_edge_list(&instance.target, &mut f).map_err(|e| e.to_string())?;
    let truth_path = args.require("out-truth")?;
    let mut f = File::create(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
    for (u, &v) in instance.ground_truth.iter().enumerate() {
        writeln!(f, "{u} {v}").map_err(|e| e.to_string())?;
    }
    Ok(format!(
        "perturbed ({} at {level}): target -> {target_path}, truth -> {truth_path}",
        model.label()
    ))
}

/// Reads a `source target` mapping file.
pub fn read_mapping(path: &str, n: usize) -> Result<Vec<usize>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut map = vec![usize::MAX; n];
    for (lineno, line) in text.lines().enumerate() {
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad mapping line", lineno + 1))?;
        let v: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad mapping line", lineno + 1))?;
        if u >= n {
            return Err(format!("{path}:{}: node {u} out of range", lineno + 1));
        }
        map[u] = v;
    }
    if map.contains(&usize::MAX) {
        return Err(format!("{path}: mapping does not cover all {n} source nodes"));
    }
    Ok(map)
}

/// `score` subcommand.
pub fn cmd_score(args: &Args) -> Result<String, String> {
    let source = read_graph(args.require("source")?)?;
    let target = read_graph(args.require("target")?)?;
    let mapping = read_mapping(args.require("mapping")?, source.node_count())?;
    let mut out = String::new();
    if let Some(truth_path) = args.flags.get("truth") {
        let truth = read_mapping(truth_path, source.node_count())?;
        out.push_str(&format!("accuracy: {:.4}\n", graphalign_metrics::accuracy(&mapping, &truth)));
    }
    out.push_str(&format!("MNC: {:.4}\n", graphalign_metrics::mnc(&source, &target, &mapping)));
    out.push_str(&format!(
        "EC: {:.4}\n",
        graphalign_metrics::edge_correctness(&source, &target, &mapping)
    ));
    out.push_str(&format!(
        "ICS: {:.4}\n",
        graphalign_metrics::induced_conserved_structure(&source, &target, &mapping)
    ));
    out.push_str(&format!("S3: {:.4}\n", graphalign_metrics::s3(&source, &target, &mapping)));
    Ok(out)
}

/// `serve` subcommand: runs the resident alignment server until it is shut
/// down over the protocol (`POST /shutdown`).
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let timeout: f64 = args.get_parse("timeout", 0.0)?;
    if timeout < 0.0 || !timeout.is_finite() {
        return Err("--timeout needs a non-negative number of seconds".into());
    }
    let io_timeout: f64 = args.get_parse("io-timeout", 10.0)?;
    if io_timeout < 0.0 || !io_timeout.is_finite() {
        return Err("--io-timeout needs a non-negative number of seconds".into());
    }
    let defaults = graphalign_serve::ServeConfig::default();
    let config = graphalign_serve::ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:7464").to_string(),
        workers: args.get_parse("workers", 2)?,
        cache_bytes: args.get_parse("cache-bytes", 256u64 << 20)?,
        cache_dir: args.flags.get("cache-dir").map(std::path::PathBuf::from),
        default_timeout: (timeout > 0.0).then(|| std::time::Duration::from_secs_f64(timeout)),
        max_queued: args.get_parse("max-queued", defaults.max_queued)?,
        max_inflight_bytes: args.get_parse("max-inflight-bytes", defaults.max_inflight_bytes)?,
        job_retries: args.get_parse("job-retries", defaults.job_retries)?,
        io_timeout: (io_timeout > 0.0).then(|| std::time::Duration::from_secs_f64(io_timeout)),
        max_body_bytes: args.get_parse("max-body-bytes", defaults.max_body_bytes)?,
    };
    let server =
        graphalign_serve::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();
    eprintln!("graphalign serve: listening on {addr} (POST /shutdown to stop)");
    server.wait();
    Ok(format!("graphalign serve: {addr} shut down cleanly"))
}

/// Top-level dispatch; returns the message to print or an error. An `Err`
/// maps to exit code 2, so explicitly requested help returns `Ok`: asking
/// for usage is not a usage error.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (cmd, rest) = argv.split_first().ok_or_else(usage)?;
    if matches!(cmd.as_str(), "--help" | "-h" | "help")
        || rest.iter().any(|a| a == "--help" || a == "-h")
    {
        return Ok(usage());
    }
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "align" => cmd_align(&args),
        "generate" => cmd_generate(&args),
        "perturb" => cmd_perturb(&args),
        "score" => cmd_score(&args),
        "serve" => cmd_serve(&args),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    format!(
        "graphalign — unrestricted graph alignment (EDBT 2023 study)\n\
         \n\
         usage:\n\
         graphalign align    --algorithm <name> --source <a.txt> --target <b.txt>\n\
         [--assignment nn|sg|hun|jv|mwm] [--out mapping.txt] [--timeout <secs>]\n\
         graphalign generate --model er|ba|ws|nw|pl --n <nodes> --out <g.txt>\n\
         [--p <prob>] [--m <edges>] [--k <neighbors>] [--seed <u64>]\n\
         graphalign perturb  --input <g.txt> --out-target <t.txt> --out-truth <truth.txt>\n\
         [--noise one-way|multi-modal|two-way] [--level <f64>] [--seed <u64>]\n\
         graphalign score    --source <a.txt> --target <b.txt> --mapping <m.txt> [--truth <t.txt>]\n\
         graphalign serve    [--addr 127.0.0.1:7464] [--workers <n>] [--timeout <secs>]\n\
         [--cache-bytes <n>] [--cache-dir <dir>] [--max-queued <n>]\n\
         [--max-inflight-bytes <n>] [--job-retries <n>] [--io-timeout <secs>]\n\
         [--max-body-bytes <n>]\n\
         \n\
         algorithms: {}",
        registry_names().join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flag_pairs() {
        let raw: Vec<String> =
            ["--algorithm", "GRASP", "--n", "42"].iter().map(|s| s.to_string()).collect();
        let a = Args::parse(&raw).unwrap();
        assert_eq!(a.require("algorithm").unwrap(), "GRASP");
        assert_eq!(a.get_parse::<usize>("n", 0).unwrap(), 42);
        assert_eq!(a.get_or("missing", "x"), "x");
    }

    #[test]
    fn args_reject_stray_tokens_and_missing_values() {
        assert!(Args::parse(&["stray".to_string()]).is_err());
        assert!(Args::parse(&["--flag".to_string()]).is_err());
    }

    #[test]
    fn aligner_lookup_is_case_insensitive() {
        assert_eq!(find_aligner("grasp").unwrap().name(), "GRASP");
        assert_eq!(find_aligner("s-gwl").unwrap().name(), "S-GWL");
        assert!(find_aligner("nope").is_err());
    }

    #[test]
    fn assignment_labels_parse() {
        assert_eq!(parse_assignment("JV").unwrap(), AssignmentMethod::JonkerVolgenant);
        assert_eq!(parse_assignment("mwm").unwrap(), AssignmentMethod::Auction);
        assert!(parse_assignment("zz").is_err());
    }

    #[test]
    fn end_to_end_generate_perturb_align_score() {
        let dir = std::env::temp_dir().join(format!("graphalign-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().to_string();
        let sv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();

        // generate
        let msg = run(&sv(&[
            "generate",
            "--model",
            "pl",
            "--n",
            "120",
            "--out",
            &p("g.txt"),
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(msg.contains("120 nodes"));
        // perturb
        run(&sv(&[
            "perturb",
            "--input",
            &p("g.txt"),
            "--out-target",
            &p("t.txt"),
            "--out-truth",
            &p("truth.txt"),
            "--level",
            "0.02",
            "--seed",
            "6",
        ]))
        .unwrap();
        // align
        let msg = run(&sv(&[
            "align",
            "--algorithm",
            "GRASP",
            "--source",
            &p("g.txt"),
            "--target",
            &p("t.txt"),
            "--out",
            &p("map.txt"),
        ]))
        .unwrap();
        assert!(msg.contains("GRASP"));
        // score
        let report = run(&sv(&[
            "score",
            "--source",
            &p("g.txt"),
            "--target",
            &p("t.txt"),
            "--mapping",
            &p("map.txt"),
            "--truth",
            &p("truth.txt"),
        ]))
        .unwrap();
        assert!(report.contains("accuracy:"));
        assert!(report.contains("S3:"));
        // The accuracy line parses to a sane value.
        let acc: f64 = report
            .lines()
            .find(|l| l.starts_with("accuracy:"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn align_with_expired_timeout_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("graphalign-cli-to-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().to_string();
        let sv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        run(&sv(&["generate", "--model", "ws", "--n", "60", "--k", "6", "--out", &p("g.txt")]))
            .unwrap();
        let err = run(&sv(&[
            "align",
            "--algorithm",
            "IsoRank",
            "--source",
            &p("g.txt"),
            "--target",
            &p("g.txt"),
            "--timeout",
            "0.000001",
        ]))
        .unwrap_err();
        assert!(err.contains("--timeout"), "{err}");
        assert!(run(&sv(&[
            "align",
            "--algorithm",
            "IsoRank",
            "--source",
            &p("g.txt"),
            "--target",
            &p("g.txt"),
            "--timeout",
            "-1"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = run(&["bogus".to_string()]).unwrap_err();
        assert!(err.contains("usage"));
    }
}

#[cfg(test)]
mod algorithm_smoke {
    use super::*;

    /// Every registry algorithm survives the CLI align path on a small
    /// generated instance (REGAL/CONE exercise their embedding branches).
    #[test]
    fn cli_align_smoke_for_fast_algorithms() {
        let dir = std::env::temp_dir().join(format!("graphalign-cli-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().to_string();
        let sv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        run(&sv(&["generate", "--model", "ws", "--n", "60", "--k", "6", "--out", &p("g.txt")]))
            .unwrap();
        run(&sv(&[
            "perturb",
            "--input",
            &p("g.txt"),
            "--out-target",
            &p("t.txt"),
            "--out-truth",
            &p("truth.txt"),
            "--level",
            "0.0",
        ]))
        .unwrap();
        for algo in ["NSD", "REGAL", "LREA", "IsoRank"] {
            let msg = run(&sv(&[
                "align",
                "--algorithm",
                algo,
                "--source",
                &p("g.txt"),
                "--target",
                &p("t.txt"),
                "--out",
                &p("map.txt"),
                "--assignment",
                "sg",
            ]))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(msg.contains(algo), "{msg}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
