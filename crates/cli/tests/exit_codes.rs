//! Exit-code contract of the `graphalign` binary: explicitly requested help
//! is not an error (usage on stdout, exit 0), while usage mistakes keep
//! exiting 2 with the diagnostic on stderr.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_graphalign")).args(args).output().expect("spawn graphalign")
}

#[test]
fn explicit_help_exits_zero_with_usage_on_stdout() {
    for invocation in [&["--help"][..], &["-h"][..], &["help"][..], &["align", "--help"][..]] {
        let out = run(invocation);
        assert_eq!(out.status.code(), Some(0), "{invocation:?} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{invocation:?} stdout: {stdout}");
        assert!(out.stderr.is_empty(), "{invocation:?} must not write to stderr");
    }
}

#[test]
fn unknown_command_exits_two_with_diagnostic_on_stderr() {
    let out = run(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "stderr: {stderr}");
    assert!(out.stdout.is_empty(), "diagnostics belong on stderr");
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["generate", "--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_arguments_exits_two_with_usage() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
