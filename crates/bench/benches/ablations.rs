//! Criterion ablations of the design choices DESIGN.md §5 calls out:
//!
//! * IsoRank's §6.1 degree prior vs a uniform prior (quality claim is in
//!   the fig binaries; here we show the prior costs nothing);
//! * GRASP's eigenpair count k;
//! * CONE's embedding dimension;
//! * LREA's retained rank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphalign::cone::Cone;
use graphalign::graal::Graal;
use graphalign::grasp::Grasp;
use graphalign::isorank::IsoRank;
use graphalign::lrea::Lrea;
use graphalign::Aligner;
use graphalign_gen as gen;
use graphalign_graph::permutation::AlignmentInstance;
use std::hint::black_box;

fn instance() -> AlignmentInstance {
    AlignmentInstance::permuted(gen::powerlaw_cluster(200, 5, 0.5, 5), 7)
}

fn bench_graal_dictionary(c: &mut Criterion) {
    // 15-orbit (≤4-node) vs 73-orbit (≤5-node) graphlet preprocessing —
    // the cost that earns GRAAL its O(n^5) reputation.
    let mut group = c.benchmark_group("ablation_graal_dictionary");
    group.sample_size(10);
    let inst = AlignmentInstance::permuted(gen::powerlaw_cluster(120, 4, 0.5, 5), 7);
    for (label, graal) in
        [("orbits15", Graal::default()), ("orbits73", Graal::with_full_dictionary())]
    {
        group.bench_function(label, |b| {
            b.iter(|| black_box(graal.costs(&inst.source, &inst.target)));
        });
    }
    group.finish();
}

fn bench_isorank_prior(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_isorank_prior");
    group.sample_size(10);
    let inst = instance();
    for (label, aligner) in
        [("degree_prior", IsoRank::default()), ("uniform_prior", IsoRank::without_degree_prior())]
    {
        group.bench_function(label, |b| {
            b.iter(|| black_box(aligner.similarity(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

fn bench_grasp_base_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_grasp_base_alignment");
    group.sample_size(10);
    let inst = instance();
    for (label, grasp) in [
        ("with_base_align", Grasp { q: 50, ..Grasp::default() }),
        ("raw_eigenvectors", Grasp { q: 50, skip_base_alignment: true, ..Grasp::default() }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(grasp.similarity(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

fn bench_grasp_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_grasp_k");
    group.sample_size(10);
    let inst = instance();
    for &k in &[10usize, 20, 40] {
        let grasp = Grasp { k, q: 50, ..Grasp::default() };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(grasp.similarity(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

fn bench_cone_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cone_dim");
    group.sample_size(10);
    let inst = instance();
    for &dim in &[16usize, 64] {
        let cone = Cone { dim, outer_iters: 10, ..Cone::default() };
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| black_box(cone.similarity(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

fn bench_lrea_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lrea_rank");
    group.sample_size(10);
    let inst = instance();
    for &rank in &[4usize, 16, 32] {
        let lrea = Lrea { max_rank: rank, ..Lrea::default() };
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| black_box(lrea.factors(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_graal_dictionary,
    bench_isorank_prior,
    bench_grasp_base_alignment,
    bench_grasp_k,
    bench_cone_dim,
    bench_lrea_rank
);
criterion_main!(ablations);
