//! Criterion benchmarks of the assignment solvers — the §6.2 runtime story:
//! NN and SortGreedy are near-free, JV/Hungarian pay O(n³) for optimality,
//! and the auction MWM sits between, with sparse inputs widening its lead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphalign_assignment::{assign, AssignmentMethod};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

fn random_similarity(n: usize, seed: u64) -> Similarity {
    let mut rng = StdRng::seed_from_u64(seed);
    Similarity::Dense(DenseMatrix::from_fn(n, n, |_, _| rng.random_range(0.0..1.0)))
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_methods");
    group.sample_size(10);
    for &n in &[128usize, 384] {
        let sim = random_similarity(n, 7);
        for method in [
            AssignmentMethod::NearestNeighbor,
            AssignmentMethod::SortGreedy,
            AssignmentMethod::Hungarian,
            AssignmentMethod::JonkerVolgenant,
            AssignmentMethod::Auction,
        ] {
            group.bench_with_input(BenchmarkId::new(method.label(), n), &n, |b, _| {
                b.iter(|| black_box(assign(black_box(&sim), method)))
            });
        }
    }
    group.finish();
}

fn bench_sparse_auction(c: &mut Criterion) {
    // The paper recommends lightweight extraction on large graphs because
    // "the density of the similarity matrix affects JV's runtime": sparse
    // MWM over a thin candidate list vs dense JV.
    let mut group = c.benchmark_group("sparse_vs_dense_extraction");
    group.sample_size(10);
    let n = 384;
    let mut rng = StdRng::seed_from_u64(11);
    let dense = random_similarity(n, 13);
    let mut triplets = Vec::new();
    for i in 0..n {
        for _ in 0..8 {
            triplets.push((i, rng.random_range(0..n), rng.random_range(0.0..1.0)));
        }
    }
    let sparse = CsrMatrix::from_triplets(n, n, &triplets);
    group.bench_function("jv_dense", |b| {
        b.iter(|| black_box(assign(&dense, AssignmentMethod::JonkerVolgenant)));
    });
    group.bench_function("auction_sparse_8_per_row", |b| {
        b.iter(|| black_box(graphalign_assignment::auction::auction_max(&sparse)));
    });
    group.finish();
}

criterion_group!(assignment, bench_methods, bench_sparse_auction);
criterion_main!(assignment);
