//! Criterion micro-benchmarks of the numerical kernels every aligner rests
//! on: SpMV, dense matmul, symmetric eigendecomposition, Lanczos, thin SVD
//! and Sinkhorn. These bound the per-iteration cost terms behind the
//! paper's Table 1 complexity column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphalign_gen as gen;
use graphalign_graph::spectral;
use graphalign_linalg::eigen::symmetric_eigen;
use graphalign_linalg::lanczos::{lanczos, Which};
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::svd::thin_svd;
use graphalign_linalg::DenseMatrix;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for &n in &[512usize, 2048] {
        let g = gen::configuration_model(&gen::degrees::uniform(n, 10), 1);
        let a = g.adjacency();
        let x = vec![1.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(a.mul_vec(black_box(&x))));
        });
    }
    group.finish();
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_matmul");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j) as f64).sin());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(a.matmul(black_box(&a))));
        });
    }
    group.finish();
}

fn bench_symmetric_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    group.sample_size(10);
    for &n in &[32usize, 96] {
        let m = DenseMatrix::from_fn(n, n, |i, j| {
            let v = ((i * 7 + j * 3) as f64).cos();
            if i <= j {
                v
            } else {
                ((j * 7 + i * 3) as f64).cos()
            }
        });
        // Symmetrize exactly.
        let m = m.add(&m.transpose()).scaled(0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(symmetric_eigen(black_box(&m)).unwrap()));
        });
    }
    group.finish();
}

fn bench_lanczos_bottom_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos_bottom20");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        let g = gen::configuration_model(&gen::degrees::uniform(n, 10), 3);
        let l = spectral::normalized_laplacian(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(lanczos(&l, 20, Which::Smallest, 100, 5).unwrap()));
        });
    }
    group.finish();
}

fn bench_thin_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("thin_svd");
    group.sample_size(10);
    for &(m, n) in &[(256usize, 32usize), (1024, 64)] {
        let a = DenseMatrix::from_fn(m, n, |i, j| ((i * 13 + j * 5) as f64).sin());
        group.bench_with_input(BenchmarkId::new("shape", format!("{m}x{n}")), &m, |b, _| {
            b.iter(|| black_box(thin_svd(black_box(&a)).unwrap()));
        });
    }
    group.finish();
}

fn bench_sinkhorn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinkhorn");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let cost = DenseMatrix::from_fn(n, n, |i, j| ((i + j) % 17) as f64 / 17.0);
        let mu = uniform_marginal(n);
        let params = SinkhornParams { epsilon: 0.05, max_iter: 100, tol: 1e-6 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(sinkhorn(&cost, &mu, &mu, &params).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_dense_matmul,
    bench_symmetric_eigen,
    bench_lanczos_bottom_k,
    bench_thin_svd,
    bench_sinkhorn
);
criterion_main!(kernels);
