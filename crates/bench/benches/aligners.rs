//! Criterion benchmarks of the nine alignment algorithms on a common small
//! instance — the kernel behind Figures 11–12's runtime ordering (NSD,
//! LREA, REGAL fastest; GWL, IsoRank slowest).

use criterion::{criterion_group, criterion_main, Criterion};
use graphalign_bench::suite::Algo;
use graphalign_gen as gen;
use graphalign_graph::permutation::AlignmentInstance;
use std::hint::black_box;

fn bench_similarity_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("aligner_similarity_n200");
    group.sample_size(10);
    let base = gen::configuration_model(&gen::degrees::normal(200, 10.0, 2.5, 1), 2);
    let inst = AlignmentInstance::permuted(base, 3);
    for algo in Algo::ALL {
        let aligner = algo.make(true);
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(aligner.similarity(&inst.source, &inst.target).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(aligners, bench_similarity_phase);
criterion_main!(aligners);
