//! The XL ("never densify") scale tier shared by fig11/fig13 and `mem_smoke`.
//!
//! Everything the million-node sweep needs in one place: the XL-capable
//! algorithm roster with its tuned `O(n·d)` configurations, the node grids,
//! the enforced peak-RSS budget, the streamed-instance constructor, the
//! sliced sharded-NN quality probe, and the analytic memory model for the
//! fig13 XL rows.
//!
//! Why this roster: REGAL and CONE are the two study algorithms whose whole
//! pipeline factorizes (REGAL's landmark xNetMF embeddings; CONE with the
//! landmark Sinkhorn replacing its dense transport costs), and FPROP is the
//! CSR-only factored-propagation reference introduced for this tier. The
//! dense-similarity family (IsoRank, NSD, GWL, S-GWL, GRASP's full
//! eigensolve, GRAAL's graphlet costs) inherently materializes `n × n`
//! state or super-linear solver state and is excluded by construction —
//! that exclusion is what the `mem_smoke --scale xl` gate enforces.

use crate::harness::{CellResult, RepFailure, SimilarityStats};
use crate::memprobe::{self, CellRssProbe};
use crate::telemetry::CellTelemetry;
use graphalign::cone::Cone;
use graphalign::fprop::Fprop;
use graphalign::regal::Regal;
use graphalign::Aligner;
use graphalign_datasets::stream::{self, XlInstance};
use graphalign_linalg::sinkhorn::SinkhornParams;
use graphalign_linalg::Similarity;
use std::path::{Path, PathBuf};

/// Average degree of the XL benchmark graphs (the paper's scalability
/// figures use sparse graphs; d ≈ 10 keeps 10⁶ nodes at ~5·10⁶ edges).
pub const XL_AVG_DEGREE: f64 = 10.0;

/// Landmark count for REGAL's xNetMF at XL scale. The paper's
/// `p = 10·log₂(2n)` would be ~200 at n = 10⁶ (≈ 3.2 GB of embeddings);
/// a fixed small landmark set keeps the factor memory inside the `O(n·d)`
/// budget with d of the same order as the average degree.
pub const XL_REGAL_LANDMARKS: usize = 32;

/// Embedding dimension and landmark count for CONE at XL scale.
pub const XL_CONE_DIM: usize = 16;
/// Landmark count for CONE's factored Wasserstein steps.
pub const XL_CONE_LANDMARKS: usize = 64;

/// Source rows evaluated by the sliced nearest-neighbor quality probe at
/// full XL scale (each row still scans *all* `m` target columns through the
/// sharded top-k, so the probe is exact on the rows it covers).
pub const XL_EVAL_SLICE: usize = 4096;
/// Sliced-probe rows in quick (CI-sized) mode.
pub const XL_EVAL_SLICE_QUICK: usize = 1024;

/// The XL-capable algorithm roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XlAlgo {
    /// REGAL with a fixed small landmark set.
    Regal,
    /// CONE with landmark Sinkhorn transport.
    Cone,
    /// Factored feature propagation (the tier's reference method).
    Fprop,
}

impl XlAlgo {
    /// Roster order used by every XL sweep.
    pub const ALL: [XlAlgo; 3] = [XlAlgo::Regal, XlAlgo::Cone, XlAlgo::Fprop];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            XlAlgo::Regal => "REGAL",
            XlAlgo::Cone => "CONE",
            XlAlgo::Fprop => "FPROP",
        }
    }

    /// The aligner with its XL-tuned `O(n·d)` configuration.
    pub fn make(&self) -> Box<dyn Aligner + Send + Sync> {
        match self {
            XlAlgo::Regal => {
                Box::new(Regal { landmarks: Some(XL_REGAL_LANDMARKS), ..Regal::default() })
            }
            XlAlgo::Cone => Box::new(Cone {
                dim: XL_CONE_DIM,
                outer_iters: 5,
                sinkhorn: SinkhornParams { epsilon: 0.05, max_iter: 50, tol: 1e-5 },
                landmarks: Some(XL_CONE_LANDMARKS),
                ..Cone::default()
            }),
            XlAlgo::Fprop => Box::new(Fprop::default()),
        }
    }

    /// Analytic model bytes at `n` nodes / `m` undirected edges: the factored
    /// similarity plus the per-algorithm working state plus both CSR graphs,
    /// with sparse objects accounted at nnz-based CSR bytes
    /// ([`Similarity::sparse_bytes`]) — never a dense upper bound.
    pub fn model_bytes(&self, n: usize, m: usize) -> usize {
        let csr_pair = 2 * memprobe::csr_graph_bytes(n, m);
        match self {
            XlAlgo::Regal => {
                let p = XL_REGAL_LANDMARKS;
                // Similarity factors + the n×p similarity-to-landmark block
                // per graph (xNetMF's C matrix) + features.
                Similarity::lowrank_bytes(n, n, p) + 8 * 2 * n * p + csr_pair
            }
            XlAlgo::Cone => {
                let d = XL_CONE_DIM;
                let k = XL_CONE_LANDMARKS;
                // Aligned embedding factors + the three Nyström blocks.
                Similarity::lowrank_bytes(n, n, d) + 8 * (2 * n * k + k * k) + csr_pair
            }
            XlAlgo::Fprop => {
                // Feature buckets scale with log₂(max degree); the three
                // propagation buffers dominate.
                let f = ((2 * m / n).max(2) as f64).log2().ceil() as usize + 1;
                Similarity::lowrank_bytes(n, n, f) + 8 * 3 * n * f + csr_pair
            }
        }
    }
}

/// XL node grids: CI-sized in quick mode, million-node in full mode.
pub fn node_grid(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 14, 100_000]
    } else {
        vec![1 << 18, 1_000_000]
    }
}

/// The enforced peak-RSS budget at `n` nodes: `c · 8 · n · d` bytes with
/// `d = XL_AVG_DEGREE` and `c = 64`. The constant covers every `O(n·d)`-class
/// allocation the tier legitimately makes (both CSR graphs ≈ 3·8·n·d,
/// embedding factors up to 8·n·32 per side, propagation double-buffers,
/// allocator slack); what it cannot cover — by two orders of magnitude at
/// n = 10⁶ — is any `O(n²)` materialization, which is the regression the
/// `mem_smoke --scale xl` gate exists to catch.
pub fn budget_bytes(n: usize) -> usize {
    64 * 8 * XL_AVG_DEGREE as usize * n
}

/// Directory for the streamed XL edge files (under the system temp dir,
/// keyed by pid so concurrent runs do not collide).
pub fn stream_dir() -> PathBuf {
    std::env::temp_dir().join(format!("graphalign_xl_{}", std::process::id()))
}

/// Builds the deterministic streamed XL instance at `n` nodes.
///
/// # Errors
/// Propagates stream I/O errors.
pub fn instance(dir: &Path, n: usize, seed: u64) -> std::io::Result<XlInstance> {
    stream::xl_instance(dir, n, XL_AVG_DEGREE, seed)
}

/// Result of the sliced nearest-neighbor quality probe.
#[derive(Debug, Clone, Copy)]
pub struct SliceEval {
    /// Source rows evaluated.
    pub rows: usize,
    /// Fraction of evaluated rows matched to their ground-truth target.
    pub accuracy: f64,
}

/// Exact nearest-neighbor accuracy over the first `slice` source rows,
/// computed with the sharded blocked top-k against **all** target columns
/// (fig11's protocol times the similarity phase; at n = 10⁶ a full
/// brute-force assignment over every row is hours of single-core work, so
/// the quality probe covers a deterministic row slice exactly instead of
/// every row approximately). Returns `None` for non-factored similarities.
pub fn sliced_nn_accuracy(
    sim: &Similarity,
    ground_truth: &[usize],
    slice: usize,
) -> Option<SliceEval> {
    let Similarity::LowRank(lr) = sim else {
        return None;
    };
    let rows = slice.min(lr.rows());
    let idx: Vec<usize> = (0..rows).collect();
    let mut sliced =
        graphalign_linalg::LowRankSim::new(lr.ya().select_rows(&idx), lr.yb().clone(), lr.kernel());
    if let Some(off) = lr.row_offsets() {
        sliced = sliced.with_row_offsets(off[..rows].to_vec());
    }
    let nn = graphalign_assignment::topk::nearest_neighbor_sharded(
        &sliced,
        &graphalign_assignment::topk::TopKConfig::default(),
    );
    let hits = nn.iter().zip(&ground_truth[..rows]).filter(|(a, b)| a == b).count();
    Some(SliceEval { rows, accuracy: hits as f64 / rows.max(1) as f64 })
}

/// The workload label XL journal rows carry (doubles as the fig11 XL
/// table caption).
pub const XL_WORKLOAD: &str = "xl-ring-chords-d10";

/// Everything one measured XL cell produces: the journal-ready
/// [`CellResult`] (similarity-phase timing per the paper's fig11 protocol,
/// sliced-NN accuracy, per-cell telemetry with the densification counter),
/// plus the memory facts the fig13/`mem_smoke` gates check.
#[derive(Debug, Clone)]
pub struct XlMeasurement {
    /// The cell in the shared sweep/journal schema.
    pub cell: CellResult,
    /// Representation and bytes of the produced similarity (`None` on
    /// failure).
    pub sim: Option<SimilarityStats>,
    /// Peak-RSS growth attributable to this cell, when `/proc` is readable.
    pub rss_delta_bytes: Option<usize>,
    /// `Similarity::to_dense` invocations observed during the cell — the XL
    /// tier's invariant is that this stays 0.
    pub densifications: u64,
}

/// Runs one XL cell: times the similarity phase (assignment excluded, per
/// fig11's protocol), scores the sliced sharded-NN probe over `slice` rows,
/// and captures telemetry + per-cell RSS. One repetition — XL instances are
/// deterministic per seed and a million-node cell is minutes of wall-clock.
pub fn run_cell(
    algo: XlAlgo,
    inst: &XlInstance,
    slice: usize,
    cell_timeout: Option<std::time::Duration>,
) -> XlMeasurement {
    let start = std::time::Instant::now();
    let _budget = graphalign_par::budget::install(cell_timeout);
    let probe = CellRssProbe::begin();
    let sink = graphalign_par::telemetry::install(false);
    let aligner = algo.make();
    let sim_start = std::time::Instant::now();
    let sim = aligner.similarity(&inst.source, &inst.target);
    let seconds = sim_start.elapsed().as_secs_f64();
    match sim {
        Ok(sim) => {
            let stats = SimilarityStats { repr: sim.repr_kind(), bytes: sim.approx_bytes() };
            let eval = sliced_nn_accuracy(&sim, &inst.ground_truth, slice);
            drop(sim);
            let rep = graphalign_par::telemetry::drain();
            drop(sink);
            let telemetry = CellTelemetry::aggregate(std::slice::from_ref(&rep));
            let densifications = telemetry.densifications;
            let cell = CellResult {
                seconds: Some(seconds),
                accuracy: eval.map(|e| e.accuracy),
                reps: 1,
                reps_ok: 1,
                skipped: false,
                error_class: None,
                wall_clock: start.elapsed().as_secs_f64(),
                telemetry: Some(telemetry),
                ..CellResult::skipped(algo.name(), "NN")
            };
            XlMeasurement {
                cell,
                sim: Some(stats),
                rss_delta_bytes: probe.delta_bytes(),
                densifications,
            }
        }
        Err(e) => {
            drop(sink);
            let f = RepFailure::from_align_error(algo.name(), " similarity", &e);
            let cell = CellResult::failed(
                algo.name(),
                "NN",
                f.class,
                f.message,
                1,
                start.elapsed().as_secs_f64(),
            );
            XlMeasurement {
                cell,
                sim: None,
                rss_delta_bytes: probe.delta_bytes(),
                densifications: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_linalg::{DenseMatrix, LowRankKernel, LowRankSim};

    #[test]
    fn roster_is_regal_cone_fprop() {
        let names: Vec<_> = XlAlgo::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["REGAL", "CONE", "FPROP"]);
        for a in XlAlgo::ALL {
            assert_eq!(a.make().name(), a.name());
        }
    }

    #[test]
    fn budget_is_linear_and_dwarfed_by_dense() {
        let n = 1_000_000;
        let budget = budget_bytes(n);
        assert_eq!(budget, 64 * 8 * 10 * n);
        // Any dense n×n f64 is ~2 orders of magnitude over budget at 10⁶.
        assert!(Similarity::dense_bytes(n, n) > 100 * budget);
        // The models of every roster member fit comfortably.
        let m = (n as f64 * XL_AVG_DEGREE / 2.0) as usize;
        for a in XlAlgo::ALL {
            let model = a.model_bytes(n, m);
            assert!(model < budget / 2, "{} model {model} vs budget {budget}", a.name());
        }
    }

    #[test]
    fn node_grids_are_xl_sized() {
        assert_eq!(node_grid(false).last(), Some(&1_000_000));
        assert!(node_grid(true).iter().all(|&n| n <= 100_000));
    }

    #[test]
    fn sliced_probe_scores_an_identity_mapping() {
        let y = DenseMatrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64 / 20.0);
        let sim = Similarity::LowRank(LowRankSim::new(y.clone(), y, LowRankKernel::NegSqDist));
        let truth: Vec<usize> = (0..10).collect();
        let ev = sliced_nn_accuracy(&sim, &truth, 4).unwrap();
        assert_eq!(ev.rows, 4);
        assert_eq!(ev.accuracy, 1.0);
        // Non-factored input is not probed.
        let dense = Similarity::Dense(DenseMatrix::identity(4));
        assert!(sliced_nn_accuracy(&dense, &truth, 4).is_none());
    }
}
