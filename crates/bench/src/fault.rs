//! Test-only fault injection for the resilience suite.
//!
//! The parser and injection machinery live in [`graphalign_par::fault`]
//! so the serving layer shares the same `GRAPHALIGN_FAULT` grammar and
//! arming state; this module re-exports them under the historical bench
//! path. The harness contract is unchanged: every repetition whose cell id
//! (`"{algorithm}:{noise}:{level}:r{rep}"`) matches the armed spec either
//! panics — converted into a structured [`crate::harness::CellError::Panic`]
//! failure — or stalls until the cell budget expires, recorded as
//! [`crate::harness::CellError::Timeout`]. The serve-only data kinds
//! (`numeric`, `io`, `truncate`) never fire at harness sites.

pub use graphalign_par::fault::{active, maybe_inject, set_for_test, FaultKind};
