//! Test-only fault injection for the resilience suite.
//!
//! Setting `GRAPHALIGN_FAULT=<cell-substring>:panic|stall` (or calling
//! [`set_for_test`]) arms exactly one fault: every repetition whose cell id
//! (`"{algorithm}:{noise}:{level}:r{rep}"`) contains the substring either
//! panics or stalls until the cell budget expires. The harness must convert
//! the panic into a structured [`crate::harness::CellError::Panic`] failure
//! and the stall into a [`crate::harness::CellError::Timeout`] — that
//! contract is what the resilience integration tests exercise.
//!
//! The spec is parsed from the environment once (so concurrently running
//! cells agree on it); tests override it programmatically instead of racing
//! on `set_var`.

use std::sync::{Once, RwLock};
use std::time::{Duration, Instant};

/// What the injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the repetition (exercises panic isolation).
    Panic,
    /// Spin until the cell budget expires (exercises cooperative deadlines).
    Stall,
}

#[derive(Debug, Clone)]
struct FaultSpec {
    /// Substring matched against the cell id.
    pattern: String,
    kind: FaultKind,
}

static SPEC: RwLock<Option<FaultSpec>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();

fn ensure_env_loaded() {
    ENV_INIT.call_once(|| {
        if let Ok(raw) = std::env::var("GRAPHALIGN_FAULT") {
            match parse(&raw) {
                Some(spec) => *SPEC.write().expect("fault spec lock") = Some(spec),
                None => eprintln!(
                    "warning: ignoring malformed GRAPHALIGN_FAULT={raw:?} \
                     (expected <cell-substring>:panic|stall)"
                ),
            }
        }
    });
}

fn parse(raw: &str) -> Option<FaultSpec> {
    let (pattern, kind) = raw.rsplit_once(':')?;
    if pattern.is_empty() {
        return None;
    }
    let kind = match kind {
        "panic" => FaultKind::Panic,
        "stall" => FaultKind::Stall,
        _ => return None,
    };
    Some(FaultSpec { pattern: pattern.to_string(), kind })
}

/// Arms (or with `None` disarms) the fault programmatically, overriding any
/// `GRAPHALIGN_FAULT` from the environment. Panics on a malformed spec so a
/// typo in a test fails loudly instead of silently injecting nothing.
pub fn set_for_test(raw: Option<&str>) {
    ensure_env_loaded();
    let spec = raw.map(|r| parse(r).unwrap_or_else(|| panic!("malformed fault spec {r:?}")));
    *SPEC.write().expect("fault spec lock") = spec;
}

/// Fires the armed fault if `cell_id` matches; no-op otherwise (and in every
/// production run, where no fault is armed).
pub fn maybe_inject(cell_id: &str) {
    ensure_env_loaded();
    let spec = SPEC.read().expect("fault spec lock").clone();
    let Some(spec) = spec else { return };
    if !cell_id.contains(&spec.pattern) {
        return;
    }
    match spec.kind {
        FaultKind::Panic => panic!("injected fault: panic in cell {cell_id}"),
        FaultKind::Stall => {
            // Spin cooperatively: the budget expiring is the expected exit.
            // The safety cap turns a stall armed without a deadline into a
            // loud failure instead of a hung test run.
            let start = Instant::now();
            while !graphalign_par::budget::exceeded() {
                if start.elapsed() > Duration::from_secs(30) {
                    panic!("injected stall in cell {cell_id} hit the 30 s safety cap");
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_kinds_and_rejects_garbage() {
        let p = parse("IsoRank:One-Way:0.05:panic").unwrap();
        assert_eq!(p.kind, FaultKind::Panic);
        assert_eq!(p.pattern, "IsoRank:One-Way:0.05");
        let s = parse("GWL:stall").unwrap();
        assert_eq!(s.kind, FaultKind::Stall);
        assert!(parse("no-kind").is_none());
        assert!(parse(":panic").is_none());
        assert!(parse("x:explode").is_none());
    }
}
