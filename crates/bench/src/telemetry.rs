//! Cell-level solver telemetry: aggregates the per-repetition
//! [`RepTelemetry`] records the solvers emit (via
//! [`graphalign_par::telemetry`]) into the `telemetry` block of a
//! [`crate::harness::CellResult`], and defines the JSONL record written per
//! solver invocation by the opt-in `--trace <path>` sidecar.
//!
//! Aggregation runs over the *successful* repetitions only, in repetition
//! order, so the block is bit-identical for every worker-thread count (the
//! same determinism contract the cell measures obey). Wall-clock phase spans
//! are the only timing-derived fields; everything else (iteration counts,
//! stop reasons, op counters) is exactly reproducible.

use graphalign_json::Json;
use graphalign_par::telemetry::{RepTelemetry, StopReason};

/// The fixed stop-reason taxonomy, in reporting order. `stop_reasons` keys
/// always appear in this order so the JSON block is deterministic.
const TAXONOMY: [StopReason; 4] =
    [StopReason::Tolerance, StopReason::MaxIter, StopReason::Interrupted, StopReason::Breakdown];

/// Aggregated solver telemetry of one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTelemetry {
    /// `true` when every solver invocation across the successful repetitions
    /// reported convergence. This is the cell's headline flag: `false` means
    /// at least one iterative routine was silently truncated.
    pub converged: bool,
    /// Total solver invocations recorded.
    pub solver_runs: usize,
    /// Invocations that ended with `converged: false`.
    pub nonconverged_runs: usize,
    /// Total outer iterations across all invocations.
    pub iterations: u64,
    /// Invocation counts per stop reason, in taxonomy order ([`TAXONOMY`]);
    /// zero-count reasons are omitted.
    pub stop_reasons: Vec<(String, usize)>,
    /// Dense/sparse matrix-product invocations.
    pub matmuls: u64,
    /// Sinkhorn scaling sweeps.
    pub sinkhorn_sweeps: u64,
    /// Auction assignment bids.
    pub auction_bids: u64,
    /// Heap allocations avoided by workspace buffer reuse in solver hot
    /// loops ([`graphalign_linalg::Workspace`]).
    pub allocs_saved: u64,
    /// Bytes those avoided allocations would have requested.
    pub alloc_bytes_saved: u64,
    /// Times a non-dense [`graphalign_linalg::Similarity`] was materialized
    /// to a dense matrix (the `Similarity::to_dense` choke point — expected
    /// only for the LAP solvers on factored/sparse input).
    pub densifications: u64,
    /// Bytes those densifications materialized.
    pub densified_bytes: u64,
    /// Precomputation-cache hits (similarity served from the serving
    /// layer's keyed cache instead of being recomputed).
    pub cache_hits: u64,
    /// Precomputation-cache misses (similarity computed and inserted).
    pub cache_misses: u64,
    /// Bytes of similarity representation served across the cache hits.
    pub cache_bytes: u64,
    /// Accumulated wall-clock seconds per named phase, sorted by name.
    pub phases: Vec<(String, f64)>,
}

impl CellTelemetry {
    /// Aggregates the telemetry of the successful repetitions of one cell.
    /// Pass the drained records in repetition order for deterministic output.
    pub fn aggregate(reps: &[RepTelemetry]) -> Self {
        let mut solver_runs = 0usize;
        let mut nonconverged_runs = 0usize;
        let mut iterations = 0u64;
        let mut counts = [0usize; TAXONOMY.len()];
        let mut matmuls = 0u64;
        let mut sinkhorn_sweeps = 0u64;
        let mut auction_bids = 0u64;
        let mut allocs_saved = 0u64;
        let mut alloc_bytes_saved = 0u64;
        let mut densifications = 0u64;
        let mut densified_bytes = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut cache_bytes = 0u64;
        let mut phases: Vec<(String, f64)> = Vec::new();
        for rep in reps {
            for ev in &rep.events {
                solver_runs += 1;
                if !ev.convergence.converged {
                    nonconverged_runs += 1;
                }
                iterations += ev.convergence.iterations as u64;
                let slot = TAXONOMY
                    .iter()
                    .position(|&r| r == ev.convergence.stop)
                    .expect("stop reason in taxonomy");
                counts[slot] += 1;
            }
            matmuls += rep.matmuls;
            sinkhorn_sweeps += rep.sinkhorn_sweeps;
            auction_bids += rep.auction_bids;
            allocs_saved += rep.allocs_saved;
            alloc_bytes_saved += rep.alloc_bytes_saved;
            densifications += rep.densifications;
            densified_bytes += rep.densified_bytes;
            cache_hits += rep.cache_hits;
            cache_misses += rep.cache_misses;
            cache_bytes += rep.cache_bytes;
            for &(name, secs) in &rep.phases {
                match phases.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += secs,
                    None => phases.push((name.to_string(), secs)),
                }
            }
        }
        phases.sort_by(|a, b| a.0.cmp(&b.0));
        let stop_reasons = TAXONOMY
            .iter()
            .zip(counts)
            .filter(|&(_, c)| c > 0)
            .map(|(r, c)| (r.as_str().to_string(), c))
            .collect();
        Self {
            converged: nonconverged_runs == 0,
            solver_runs,
            nonconverged_runs,
            iterations,
            stop_reasons,
            matmuls,
            sinkhorn_sweeps,
            auction_bids,
            allocs_saved,
            alloc_bytes_saved,
            densifications,
            densified_bytes,
            cache_hits,
            cache_misses,
            cache_bytes,
            phases,
        }
    }

    /// Parses the block back from its JSON form. Returns `None` when a
    /// required field is missing, mistyped, or names an unknown stop reason.
    pub fn from_json(v: &Json) -> Option<Self> {
        let count = |key: &str| v.get(key).and_then(Json::as_f64).map(|n| n as usize);
        let obj_entries = |val: &Json| match val {
            Json::Obj(members) => Some(members.clone()),
            _ => None,
        };
        let ops = v.get("ops")?;
        let mut stop_reasons = Vec::new();
        for (k, c) in obj_entries(v.get("stop_reasons")?)? {
            StopReason::parse(&k)?;
            stop_reasons.push((k, c.as_f64()? as usize));
        }
        let mut phases = Vec::new();
        for (k, secs) in obj_entries(v.get("phases")?)? {
            phases.push((k, secs.as_f64()?));
        }
        Some(Self {
            converged: v.get("converged")?.as_bool()?,
            solver_runs: count("solver_runs")?,
            nonconverged_runs: count("nonconverged_runs")?,
            iterations: v.get("iterations")?.as_f64()? as u64,
            stop_reasons,
            matmuls: ops.get("matmuls")?.as_f64()? as u64,
            sinkhorn_sweeps: ops.get("sinkhorn_sweeps")?.as_f64()? as u64,
            auction_bids: ops.get("auction_bids")?.as_f64()? as u64,
            // Absent in blocks written before the workspace layer existed;
            // treat as zero so old checkpoints stay readable.
            allocs_saved: ops.get("allocs_saved").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            alloc_bytes_saved: ops.get("alloc_bytes_saved").and_then(Json::as_f64).unwrap_or(0.0)
                as u64,
            // Likewise absent before the Similarity pipeline currency.
            densifications: ops.get("densifications").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            densified_bytes: ops.get("densified_bytes").and_then(Json::as_f64).unwrap_or(0.0)
                as u64,
            // Absent in blocks written before the serving-layer cache.
            cache_hits: ops.get("cache_hits").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_misses: ops.get("cache_misses").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_bytes: ops.get("cache_bytes").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            phases,
        })
    }
}

impl graphalign_json::ToJson for CellTelemetry {
    fn to_json(&self) -> Json {
        let pairs_obj = |pairs: &[(String, usize)]| {
            Json::Obj(pairs.iter().map(|(k, c)| (k.clone(), Json::Num(*c as f64))).collect())
        };
        Json::Obj(vec![
            ("converged".into(), Json::Bool(self.converged)),
            ("solver_runs".into(), Json::Num(self.solver_runs as f64)),
            ("nonconverged_runs".into(), Json::Num(self.nonconverged_runs as f64)),
            ("iterations".into(), Json::Num(self.iterations as f64)),
            ("stop_reasons".into(), pairs_obj(&self.stop_reasons)),
            (
                "ops".into(),
                Json::Obj(vec![
                    ("matmuls".into(), Json::Num(self.matmuls as f64)),
                    ("sinkhorn_sweeps".into(), Json::Num(self.sinkhorn_sweeps as f64)),
                    ("auction_bids".into(), Json::Num(self.auction_bids as f64)),
                    ("allocs_saved".into(), Json::Num(self.allocs_saved as f64)),
                    ("alloc_bytes_saved".into(), Json::Num(self.alloc_bytes_saved as f64)),
                    ("densifications".into(), Json::Num(self.densifications as f64)),
                    ("densified_bytes".into(), Json::Num(self.densified_bytes as f64)),
                    ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
                    ("cache_misses".into(), Json::Num(self.cache_misses as f64)),
                    ("cache_bytes".into(), Json::Num(self.cache_bytes as f64)),
                ]),
            ),
            (
                "phases".into(),
                Json::Obj(self.phases.iter().map(|(k, s)| (k.clone(), Json::Num(*s))).collect()),
            ),
        ])
    }
}

/// One line of the `--trace <path>` JSONL sidecar: the residual series of a
/// single solver invocation inside a single repetition of a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Workload label (dataset / sweep identifier), sweep-specific.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Assignment method label.
    pub assignment: String,
    /// Noise model label.
    pub noise: String,
    /// Noise level.
    pub level: f64,
    /// Repetition index within the cell.
    pub rep: usize,
    /// Solver routine name (`"sinkhorn"`, `"isorank"`, …).
    pub routine: String,
    /// Outer iterations the invocation ran.
    pub iterations: usize,
    /// Final residual.
    pub residual: f64,
    /// Whether the invocation converged.
    pub converged: bool,
    /// Stop reason ([`StopReason::as_str`] form).
    pub stop: String,
    /// Residual after each recorded outer iteration, in order.
    pub residuals: Vec<f64>,
}

graphalign_json::impl_to_json!(TraceRecord {
    workload,
    algorithm,
    assignment,
    noise,
    level,
    rep,
    routine,
    iterations,
    residual,
    converged,
    stop,
    residuals,
});

impl TraceRecord {
    /// Parses a record back from one JSONL line's value. Returns `None` on
    /// missing/mistyped fields or an unknown stop reason.
    pub fn from_json(v: &Json) -> Option<Self> {
        let s = |key: &str| v.get(key)?.as_str().map(str::to_string);
        let stop = s("stop")?;
        StopReason::parse(&stop)?;
        Some(Self {
            workload: s("workload")?,
            algorithm: s("algorithm")?,
            assignment: s("assignment")?,
            noise: s("noise")?,
            level: v.get("level")?.as_f64()?,
            rep: v.get("rep")?.as_f64()? as usize,
            routine: s("routine")?,
            iterations: v.get("iterations")?.as_f64()? as usize,
            residual: v.get("residual")?.as_f64().unwrap_or(f64::NAN),
            converged: v.get("converged")?.as_bool()?,
            stop,
            residuals: v
                .get("residuals")?
                .as_array()?
                .iter()
                .map(|r| r.as_f64().unwrap_or(f64::NAN))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_par::telemetry::{Convergence, SolverEvent};

    fn rep(events: Vec<SolverEvent>) -> RepTelemetry {
        RepTelemetry { events, ..RepTelemetry::default() }
    }

    #[test]
    fn aggregate_counts_runs_iterations_and_reasons() {
        let reps = vec![
            rep(vec![
                SolverEvent { routine: "isorank", convergence: Convergence::tolerance(12, 1e-10) },
                SolverEvent { routine: "sinkhorn", convergence: Convergence::max_iter(300, 0.2) },
            ]),
            RepTelemetry {
                events: vec![SolverEvent {
                    routine: "isorank",
                    convergence: Convergence::tolerance(9, 1e-11),
                }],
                matmuls: 5,
                sinkhorn_sweeps: 40,
                auction_bids: 7,
                allocs_saved: 3,
                alloc_bytes_saved: 96,
                densifications: 2,
                densified_bytes: 8192,
                cache_hits: 1,
                cache_misses: 2,
                cache_bytes: 4096,
                phases: vec![("similarity", 0.5), ("assignment", 0.25)],
                ..RepTelemetry::default()
            },
        ];
        let t = CellTelemetry::aggregate(&reps);
        assert!(!t.converged, "a max_iter truncation must flip the cell flag");
        assert_eq!(t.solver_runs, 3);
        assert_eq!(t.nonconverged_runs, 1);
        assert_eq!(t.iterations, 12 + 300 + 9);
        assert_eq!(t.stop_reasons, vec![("tolerance".to_string(), 2), ("max_iter".to_string(), 1)]);
        assert_eq!(t.matmuls, 5);
        assert_eq!(t.sinkhorn_sweeps, 40);
        assert_eq!(t.auction_bids, 7);
        assert_eq!(t.allocs_saved, 3);
        assert_eq!(t.alloc_bytes_saved, 96);
        assert_eq!(t.densifications, 2);
        assert_eq!(t.densified_bytes, 8192);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.cache_misses, 2);
        assert_eq!(t.cache_bytes, 4096);
        // Sorted by phase name, not insertion order.
        assert_eq!(t.phases[0].0, "assignment");
        assert_eq!(t.phases[1].0, "similarity");
    }

    #[test]
    fn empty_aggregate_is_vacuously_converged() {
        let t = CellTelemetry::aggregate(&[]);
        assert!(t.converged);
        assert_eq!(t.solver_runs, 0);
        assert!(t.stop_reasons.is_empty());
        assert!(t.phases.is_empty());
    }

    #[test]
    fn cell_telemetry_json_round_trips() {
        let reps = vec![rep(vec![
            SolverEvent { routine: "power", convergence: Convergence::tolerance(40, 1e-9) },
            SolverEvent { routine: "gwl", convergence: Convergence::max_iter(250, 0.01) },
        ])];
        let t = CellTelemetry::aggregate(&reps);
        let line = graphalign_json::to_string_compact(&t);
        let parsed = graphalign_json::from_str(&line).expect("valid JSON");
        let back = CellTelemetry::from_json(&parsed).expect("parseable block");
        assert_eq!(back, t);
        assert_eq!(graphalign_json::to_string_compact(&back), line);
    }

    #[test]
    fn from_json_accepts_pre_workspace_blocks() {
        // Checkpoints written before the alloc counters existed parse with
        // the counters defaulting to zero.
        let line = r#"{"converged":true,"solver_runs":1,"nonconverged_runs":0,"iterations":3,"stop_reasons":{"tolerance":1},"ops":{"matmuls":2,"sinkhorn_sweeps":0,"auction_bids":0},"phases":{}}"#;
        let parsed = graphalign_json::from_str(line).unwrap();
        let t = CellTelemetry::from_json(&parsed).expect("legacy block parses");
        assert_eq!(t.matmuls, 2);
        assert_eq!(t.allocs_saved, 0);
        assert_eq!(t.alloc_bytes_saved, 0);
        assert_eq!(t.densifications, 0);
        assert_eq!(t.densified_bytes, 0);
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.cache_misses, 0);
        assert_eq!(t.cache_bytes, 0);
    }

    #[test]
    fn from_json_rejects_unknown_stop_reason() {
        let line = r#"{"converged":true,"solver_runs":1,"nonconverged_runs":0,"iterations":3,"stop_reasons":{"gave_up":1},"ops":{"matmuls":0,"sinkhorn_sweeps":0,"auction_bids":0},"phases":{}}"#;
        let parsed = graphalign_json::from_str(line).unwrap();
        assert!(CellTelemetry::from_json(&parsed).is_none());
    }

    #[test]
    fn trace_record_json_round_trips() {
        let r = TraceRecord {
            workload: "quality-sweep".into(),
            algorithm: "IsoRank".into(),
            assignment: "JV".into(),
            noise: "one-way".into(),
            level: 0.05,
            rep: 2,
            routine: "isorank".into(),
            iterations: 3,
            residual: 0.0078125,
            converged: false,
            stop: "max_iter".into(),
            residuals: vec![0.5, 0.125, 0.0078125],
        };
        let line = graphalign_json::to_string_compact(&r);
        let parsed = graphalign_json::from_str(&line).expect("valid JSON");
        let back = TraceRecord::from_json(&parsed).expect("parseable record");
        assert_eq!(back, r);
    }

    #[test]
    fn trace_record_rejects_unknown_stop() {
        let r = TraceRecord {
            workload: "w".into(),
            algorithm: "A".into(),
            assignment: "JV".into(),
            noise: "one-way".into(),
            level: 0.0,
            rep: 0,
            routine: "x".into(),
            iterations: 1,
            residual: 0.0,
            converged: true,
            stop: "wandered_off".into(),
            residuals: vec![],
        };
        let line = graphalign_json::to_string_compact(&r);
        let parsed = graphalign_json::from_str(&line).unwrap();
        assert!(TraceRecord::from_json(&parsed).is_none());
    }
}
