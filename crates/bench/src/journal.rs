//! Checkpoint/resume journal: an append-only JSONL sidecar (`<out>.journal`)
//! holding one completed sweep cell per line.
//!
//! The sweep drivers append each finished [`SweepRow`] as soon as it
//! completes; a run that dies (OOM kill, power loss, Ctrl-C) can then be
//! relaunched with `--resume`, which replays the journaled cells verbatim
//! and runs only the remainder before writing the final JSON exactly as an
//! uninterrupted run would. Replay is bit-identical: the compact JSON
//! printer uses shortest-roundtrip `f64` formatting, so a parsed-back row
//! equals the row that was written.
//!
//! Each line is keyed by `(workload, algorithm, assignment, noise, level,
//! seed, reps)` — everything that determines a cell's result besides
//! wall-clock timing. Rows recorded under a different `--seed` or
//! repetition count are ignored on resume, as is a trailing partial line
//! from an interrupted write.

use crate::figures::SweepRow;
use graphalign_json::{Json, ToJson};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::path::{Path, PathBuf};

/// Identity of one sweep cell, exact under resume (`level` is compared by
/// bit pattern, `seed` is stored as a string so 64-bit seeds survive the
/// JSON number type).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload label (graph model or dataset name).
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Assignment method label.
    pub assignment: String,
    /// Noise model label.
    pub noise: String,
    /// Bit pattern of the noise level (`f64::to_bits`).
    pub level_bits: u64,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Repetitions the policy asked for (not the count actually attempted:
    /// feasibility-skipped cells record 0 attempts but keep this key).
    pub reps: usize,
}

impl CellKey {
    /// Builds the key for one cell of a sweep.
    pub fn new(
        workload: &str,
        algorithm: &str,
        assignment: &str,
        noise: &str,
        level: f64,
        seed: u64,
        reps: usize,
    ) -> Self {
        Self {
            workload: workload.into(),
            algorithm: algorithm.into(),
            assignment: assignment.into(),
            noise: noise.into(),
            level_bits: level.to_bits(),
            seed,
            reps,
        }
    }
}

/// The append-only journal behind one `--out` file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    completed: HashMap<CellKey, SweepRow>,
}

impl Journal {
    /// The journal path for an output file: `<out>.journal`.
    pub fn path_for(out: &Path) -> PathBuf {
        let mut os = out.as_os_str().to_os_string();
        os.push(".journal");
        PathBuf::from(os)
    }

    /// Starts a fresh journal (truncating any stale one from an earlier
    /// run, so a non-resume run never mixes epochs).
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn fresh(out: &Path, _seed: u64) -> std::io::Result<Self> {
        let path = Self::path_for(out);
        let file = File::create(&path)?;
        Ok(Self { path, file, completed: HashMap::new() })
    }

    /// Opens the journal for `--resume`: loads every completed cell recorded
    /// under `seed`, then reopens for appending. A missing journal file is
    /// not an error (resume of a run that died before its first cell).
    ///
    /// Malformed lines (an interrupted write leaves at most one, at the
    /// end) and rows from other seeds or repetition counts are skipped with
    /// a warning.
    ///
    /// # Errors
    /// Propagates I/O failures other than the journal not existing.
    pub fn resume(out: &Path, seed: u64) -> std::io::Result<Self> {
        let path = Self::path_for(out);
        let mut completed = HashMap::new();
        match File::open(&path) {
            Ok(f) => {
                for (idx, line) in BufReader::new(f).lines().enumerate() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_line(&line) {
                        Some((key, row)) if key.seed == seed => {
                            completed.insert(key, row);
                        }
                        Some((key, _)) => eprintln!(
                            "warning: {}:{}: journaled under seed {}, this run uses {} — ignoring",
                            path.display(),
                            idx + 1,
                            key.seed,
                            seed
                        ),
                        None => eprintln!(
                            "warning: {}:{}: unreadable journal line (interrupted write?) — ignoring",
                            path.display(),
                            idx + 1
                        ),
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { path, file, completed })
    }

    /// Where this journal lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed cells loaded or recorded so far.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no cells are journaled yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The journaled row for `key`, when that cell already completed.
    pub fn lookup(&self, key: &CellKey) -> Option<&SweepRow> {
        self.completed.get(key)
    }

    /// Appends one completed cell and flushes, so the row survives even if
    /// the process dies immediately after.
    ///
    /// # Errors
    /// Propagates write failures (callers treat these as fatal: a journal
    /// that silently drops rows defeats its purpose).
    pub fn record(&mut self, key: CellKey, row: &SweepRow) -> std::io::Result<()> {
        let mut members = vec![
            ("journal_seed".to_string(), Json::Str(key.seed.to_string())),
            ("journal_reps".to_string(), key.reps.to_json()),
        ];
        match row.to_json() {
            Json::Obj(fields) => members.extend(fields),
            other => members.push(("row".to_string(), other)),
        }
        let line = Json::Obj(members).to_string_compact();
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.completed.insert(key, row.clone());
        Ok(())
    }
}

fn parse_line(line: &str) -> Option<(CellKey, SweepRow)> {
    let v = graphalign_json::from_str(line).ok()?;
    let seed: u64 = v.get("journal_seed")?.as_str()?.parse().ok()?;
    let reps = v.get("journal_reps")?.as_f64()? as usize;
    let row = SweepRow::from_json(&v)?;
    let key = CellKey::new(
        &row.workload,
        &row.cell.algorithm,
        &row.cell.assignment,
        &row.noise,
        row.level,
        seed,
        reps,
    );
    Some((key, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::CellResult;

    fn sample_row(workload: &str, level: f64) -> SweepRow {
        let mut cell = CellResult::skipped("IsoRank", "JV");
        cell.skipped = false;
        cell.error_class = None;
        cell.reps = 3;
        cell.reps_ok = 3;
        cell.accuracy = Some(0.8125);
        cell.seconds = Some(0.0123456789);
        cell.wall_clock = 0.5;
        SweepRow { workload: workload.into(), noise: "One-Way".into(), level, cell }
    }

    #[test]
    fn journal_round_trips_rows_bit_identically() {
        let dir = std::env::temp_dir().join(format!("ga-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        let row = sample_row("ER", 0.05);
        let key = CellKey::new("ER", "IsoRank", "JV", "One-Way", 0.05, 7, 3);
        {
            let mut j = Journal::fresh(&out, 7).unwrap();
            j.record(key.clone(), &row).unwrap();
        }
        let j = Journal::resume(&out, 7).unwrap();
        assert_eq!(j.len(), 1);
        let back = j.lookup(&key).expect("row journaled");
        assert_eq!(
            graphalign_json::to_string_compact(back),
            graphalign_json::to_string_compact(&row),
            "replayed row must serialize identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_other_seeds_and_partial_lines() {
        let dir = std::env::temp_dir().join(format!("ga-journal-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        {
            let mut j = Journal::fresh(&out, 1).unwrap();
            j.record(
                CellKey::new("ER", "IsoRank", "JV", "One-Way", 0.0, 1, 3),
                &sample_row("ER", 0.0),
            )
            .unwrap();
        }
        // Simulate an interrupted write: a torn final line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(Journal::path_for(&out)).unwrap();
            write!(f, "{{\"journal_seed\":\"1\",\"journal_re").unwrap();
        }
        // Different seed sees nothing; same seed sees the one good row.
        assert!(Journal::resume(&out, 2).unwrap().is_empty());
        assert_eq!(Journal::resume(&out, 1).unwrap().len(), 1);
        // Fresh truncates.
        assert!(Journal::fresh(&out, 1).unwrap().is_empty());
        assert!(Journal::resume(&out, 1).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_resumes_empty() {
        let out = std::env::temp_dir().join("ga-journal-definitely-missing.json");
        let j = Journal::resume(&out, 3).unwrap();
        assert!(j.is_empty());
        std::fs::remove_file(Journal::path_for(&out)).ok();
    }
}
