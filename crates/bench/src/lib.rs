//! Experiment harness reproducing every table and figure of the EDBT 2023
//! study *"Comprehensive Evaluation of Algorithms for Unrestricted Graph
//! Alignment"*.
//!
//! Each table/figure has a dedicated binary in `src/bin/` (see DESIGN.md §4
//! for the full index). All binaries accept:
//!
//! * `--quick` (default) / `--full` — scaled-down grid sized for a laptop
//!   container vs the paper-scale grid (28-core/256 GB testbed numbers);
//! * `--seed <u64>` — base RNG seed;
//! * `--out <path>` — additionally write the result rows as JSON;
//! * `--threads <n>` — worker-thread cap for the parallel kernels (default:
//!   `GRAPHALIGN_THREADS`/`RAYON_NUM_THREADS`, then the machine's core
//!   count). Results are bit-identical for every thread count; only the
//!   wall-clock columns change.
//!
//! The library half provides the pieces the binaries share: the algorithm
//! roster with per-algorithm feasibility caps ([`suite`]), the measurement
//! loop ([`harness`]), memory accounting ([`memprobe`]), and plain-text
//! table rendering ([`table`]).

pub mod fault;
pub mod figures;
pub mod harness;
pub mod journal;
pub mod memprobe;
pub mod plot;
pub mod suite;
pub mod table;
pub mod telemetry;
pub mod xl;

use std::path::PathBuf;
use std::time::Duration;

/// Shared command-line configuration of the experiment binaries.
#[derive(Debug, Clone)]
pub struct Config {
    /// `false` = paper-scale grid (`--full`), `true` = scaled-down grid.
    pub quick: bool,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Optional JSON output path.
    pub out: Option<PathBuf>,
    /// `--threads` override; `None` defers to the environment/core count.
    pub threads: Option<usize>,
    /// `--cell-timeout <secs>`: cooperative deadline per experiment cell.
    pub cell_timeout: Option<f64>,
    /// `--retries <n>`: reseeded retries per repetition after a numerical
    /// failure.
    pub retries: usize,
    /// `--resume`: replay completed cells from the `<out>.journal` file and
    /// run only the remainder.
    pub resume: bool,
    /// `--trace <path>`: write a JSONL sidecar with the per-iteration
    /// residual series of every solver invocation (see [`telemetry`]).
    pub trace: Option<PathBuf>,
    /// `--scale xl`: run the million-node tier (streamed instances, the
    /// XL-capable algorithm roster, enforced `O(n·d)` memory budget) instead
    /// of the paper grid. Combines with `--quick`/`--full` for the CI-sized
    /// vs full XL node grid. Only the scalability binaries (fig11/fig13,
    /// mem_smoke) consume it; the others ignore it.
    pub xl: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            quick: true,
            seed: 2023,
            out: None,
            threads: None,
            cell_timeout: None,
            retries: 0,
            resume: false,
            trace: None,
            xl: false,
        }
    }
}

impl Config {
    /// Parses the common flags from `std::env::args`. Unknown flags abort
    /// with a usage message. A `--threads` flag takes effect immediately
    /// (process-wide) via [`graphalign_par::set_max_threads`].
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--full" => cfg.quick = false,
                "--scale" => {
                    let v = args.next().unwrap_or_else(|| usage("--scale needs a value"));
                    match v.as_str() {
                        "xl" => cfg.xl = true,
                        "quick" => cfg.quick = true,
                        "full" => cfg.quick = false,
                        _ => usage("--scale takes xl, quick, or full"),
                    }
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    cfg.seed = v.parse().unwrap_or_else(|_| usage("--seed needs a u64"));
                }
                "--out" => {
                    let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                    cfg.out = Some(PathBuf::from(v));
                }
                "--threads" => {
                    let v = args.next().unwrap_or_else(|| usage("--threads needs a value"));
                    let n: usize =
                        v.parse().unwrap_or_else(|_| usage("--threads needs a positive integer"));
                    if n == 0 {
                        usage("--threads needs a positive integer");
                    }
                    cfg.threads = Some(n);
                }
                "--cell-timeout" => {
                    let v = args.next().unwrap_or_else(|| usage("--cell-timeout needs a value"));
                    let secs: f64 =
                        v.parse().unwrap_or_else(|_| usage("--cell-timeout needs seconds (f64)"));
                    if !secs.is_finite() || secs <= 0.0 {
                        usage("--cell-timeout needs a positive number of seconds");
                    }
                    cfg.cell_timeout = Some(secs);
                }
                "--retries" => {
                    let v = args.next().unwrap_or_else(|| usage("--retries needs a value"));
                    cfg.retries =
                        v.parse().unwrap_or_else(|_| usage("--retries needs a non-negative count"));
                }
                "--resume" => cfg.resume = true,
                "--trace" => {
                    let v = args.next().unwrap_or_else(|| usage("--trace needs a path"));
                    cfg.trace = Some(PathBuf::from(v));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if cfg.resume && cfg.out.is_none() {
            usage("--resume requires --out (the journal lives next to the output file)");
        }
        if let Some(n) = cfg.threads {
            graphalign_par::set_max_threads(n);
        }
        cfg
    }

    /// Number of noisy repetitions per cell (paper: 10 for the synthetic
    /// figures, 5 for the high-noise/scalability ones; quick mode caps at 3).
    pub fn reps(&self, paper_reps: usize) -> usize {
        if self.quick {
            paper_reps.clamp(1, 3)
        } else {
            paper_reps
        }
    }

    /// The [`harness::RunPolicy`] for a cell with `paper_reps` paper-scale
    /// repetitions: quick-mode clamping plus this run's timeout/retry knobs.
    pub fn policy(&self, paper_reps: usize) -> harness::RunPolicy {
        harness::RunPolicy {
            cell_timeout: self.cell_timeout.map(Duration::from_secs_f64),
            retries: self.retries,
            trace: self.trace.is_some(),
            ..harness::RunPolicy::new(self.reps(paper_reps), self.seed, self.quick)
        }
    }

    /// Writes rows as JSON if `--out` was given. A write failure is fatal
    /// (exit code 1): silently losing hours of sweep output to a bad path or
    /// a full disk is exactly what this harness exists to prevent.
    pub fn write_json<T: graphalign_json::ToJson>(&self, rows: &[T]) {
        if let Some(path) = &self.out {
            let json = graphalign_json::to_string_pretty(rows);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--quick|--full] [--scale xl|quick|full] [--seed <u64>] [--out <path.json>]\n\
         \x20           [--threads <n>] [--cell-timeout <secs>] [--retries <n>] [--resume]\n\
         \x20           [--trace <path.jsonl>]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_quick() {
        let c = Config::default();
        assert!(c.quick);
        assert_eq!(c.seed, 2023);
    }

    #[test]
    fn reps_scale_down_in_quick_mode() {
        let quick = Config::default();
        assert_eq!(quick.reps(10), 3);
        assert_eq!(quick.reps(1), 1);
        let full = Config { quick: false, ..Config::default() };
        assert_eq!(full.reps(10), 10);
    }
}
