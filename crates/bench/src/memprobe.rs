//! Memory accounting for the scalability figures (13–14).
//!
//! The paper measures process memory on a 256 GB machine. Inside one harness
//! process, per-algorithm RSS deltas are noisy (allocators rarely return
//! pages), so we report two complementary numbers per cell:
//!
//! * **model bytes** — the size of the dominant data structures the
//!   algorithm materializes (similarity matrices, embeddings, factor pairs),
//!   computed analytically from the instance shape. This is exact,
//!   deterministic, and the quantity that actually drives the paper's
//!   "dense `n²` methods exhaust memory" observation;
//! * **peak RSS** — `VmHWM` from `/proc/self/status` when available, for a
//!   whole-process sanity reading.

use crate::suite::Algo;
use graphalign::cone::Cone;
use graphalign::grasp::Grasp;
use graphalign::lrea::Lrea;
use graphalign_linalg::Similarity;

/// Analytic estimate of the peak bytes the algorithm's dominant structures
/// occupy on a pair of graphs with `n` nodes and `m` undirected edges each.
///
/// The terms mirror each implementation: algorithms that hand the pipeline a
/// dense similarity pay [`Similarity::dense_bytes`] (`8n²`) per matrix,
/// while the factored methods (LREA, REGAL, CONE, GRASP) pay only
/// [`Similarity::lowrank_bytes`] for the `Similarity::LowRank` they emit —
/// the representation-aware accounting that replaced the old flat `8·n·n`
/// assumption. CSR adjacencies cost `~16·2m`, embeddings `8·n·d`.
pub fn model_bytes(algo: Algo, n: usize, m: usize) -> usize {
    let n2 = Similarity::dense_bytes(n, n);
    let csr = 2 * csr_graph_bytes(n, m);
    match algo {
        // Dense n×n similarity iterated in place (R and E plus a scratch).
        Algo::IsoRank => 3 * n2 + csr,
        // Cost matrix + 15-orbit signatures.
        Algo::Graal => n2 + 2 * (15 * 8 * n) + csr,
        // Component vectors (iterations+1 each side) + dense similarity.
        Algo::Nsd => n2 + 2 * 21 * 8 * n + csr,
        // Factor pairs during the solve, plus the sparse union-of-matchings
        // candidate list the native auction route hands the solver as a
        // `Similarity::Sparse` — accounted at its CSR nnz footprint
        // ([`Similarity::sparse_bytes`], nnz ≤ max_rank·n), not the dense
        // `8n²` upper bound the old accounting implied by ignoring it.
        Algo::Lrea => {
            let lrea = Lrea::default();
            let rank = lrea.max_rank + 3;
            Similarity::lowrank_bytes(n, n, rank)
                + Similarity::sparse_bytes(n, lrea.max_rank * n)
                + csr
        }
        // Features + node-to-landmark matrix + the factored embedding
        // similarity; no n² matrix anywhere.
        Algo::Regal => {
            let p = (10.0 * (2.0 * n.max(2) as f64).log2()).round() as usize;
            Similarity::lowrank_bytes(n, n, p) + 8 * 2 * n * p + csr
        }
        // Transport plan + cost matrix + embeddings.
        Algo::Gwl => 3 * n2 + 2 * 8 * n * 16 + csr,
        // Leaf transports are small; the harness-level similarity is n².
        Algo::Sgwl => n2 + csr,
        // Embeddings (d = min(512, n/2)), the internal n² Sinkhorn cost
        // matrix, and the factored output similarity (which replaced the
        // second n² the old materialized kernel cost).
        Algo::Cone => {
            let d = Cone::default().dim.min(n / 2).max(1);
            Similarity::lowrank_bytes(n, n, d) + n2 + csr
        }
        // k eigenvectors + q heat diagonals + the factored descriptor
        // similarity (was a dense n² before the pipeline went factored).
        Algo::Grasp => {
            let k = Grasp::default().k;
            2 * (8 * n * k + 8 * n * 100) + Similarity::lowrank_bytes(n, n, k) + csr
        }
    }
}

/// Exact bytes one [`graphalign_graph::Graph`] CSR occupies at `n` nodes and
/// `m` undirected edges: `n + 1` offsets plus `2m` neighbor arcs, all
/// `usize`. The nnz-based twin of [`Similarity::sparse_bytes`] for
/// adjacencies — never a dense bound.
pub fn csr_graph_bytes(n: usize, m: usize) -> usize {
    (n + 1) * size_of::<usize>() + 2 * m * size_of::<usize>()
}

/// Peak resident set size of this process in bytes (`VmHWM`), if the
/// platform exposes `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Per-cell RSS high-water-mark probe.
///
/// The whole-process `VmHWM` only ever grows, so reading it once at the end
/// of a run attributes every earlier allocation to whichever cell ran last.
/// This probe resets the kernel's high-water mark (`/proc/self/clear_refs`,
/// code `5`) at cell start and reports the *delta* the cell added — the
/// closest `/proc` gets to "peak memory of this cell". On kernels without
/// `clear_refs` the reset silently degrades to a plain before/after delta
/// (still monotone-safe via `saturating_sub`); on platforms without
/// `/proc/self/status` the probe reports `None`.
#[derive(Debug)]
pub struct CellRssProbe {
    start: Option<usize>,
}

impl CellRssProbe {
    /// Starts a probe: resets the peak-RSS counter and records the floor.
    pub fn begin() -> Self {
        // "5" resets VmHWM (and the peak counters) to the current RSS.
        let _ = std::fs::write("/proc/self/clear_refs", "5");
        Self { start: peak_rss_bytes() }
    }

    /// Bytes of peak-RSS growth since [`CellRssProbe::begin`], if readable.
    pub fn delta_bytes(&self) -> Option<usize> {
        Some(peak_rss_bytes()?.saturating_sub(self.start?))
    }
}

/// Pretty-prints a byte count with a binary unit.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_methods_grow_quadratically() {
        let small = model_bytes(Algo::IsoRank, 1 << 10, 10 << 10);
        let big = model_bytes(Algo::IsoRank, 1 << 12, 10 << 12);
        // 4× nodes → ≈16× bytes for an n² method.
        assert!(big > 10 * small, "IsoRank: {small} -> {big}");
    }

    #[test]
    fn lrea_and_regal_grow_subquadratically() {
        for algo in [Algo::Lrea, Algo::Regal] {
            let small = model_bytes(algo, 1 << 10, 10 << 10);
            let big = model_bytes(algo, 1 << 14, 10 << 14);
            // 16× nodes → well under 256× bytes.
            assert!(big < 64 * small, "{}: {small} -> {big} grew too fast", algo.name());
        }
    }

    #[test]
    fn dense_beats_sparse_at_scale() {
        let n = 1 << 14;
        let m = 10 * n;
        assert!(model_bytes(Algo::IsoRank, n, m) > model_bytes(Algo::Lrea, n, m));
        assert!(model_bytes(Algo::Gwl, n, m) > model_bytes(Algo::Regal, n, m));
    }

    #[test]
    fn lrea_sparse_candidates_are_nnz_accounted() {
        // The LREA model must charge the candidate similarity at CSR nnz
        // bytes (≤ max_rank·n entries), which at scale is a vanishing
        // fraction of the dense 8n² upper bound.
        let n = 1 << 14;
        let m = 10 * n;
        let model = model_bytes(Algo::Lrea, n, m);
        assert!(model > Similarity::sparse_bytes(n, 16 * n), "sparse term missing: {model}");
        assert!(model < Similarity::dense_bytes(n, n) / 10, "dense-bound accounting: {model}");
    }

    #[test]
    fn csr_bytes_match_graph_storage() {
        // ring of 8 nodes: 8 undirected edges, 16 arcs.
        assert_eq!(csr_graph_bytes(8, 8), 9 * 8 + 16 * 8);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("VmHWM should parse");
            assert!(rss > 1 << 20, "peak RSS {rss} suspiciously small");
        }
    }

    #[test]
    fn cell_probe_sees_a_fresh_allocation() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let probe = CellRssProbe::begin();
        // Touch every page so the allocation actually becomes resident.
        let mut big = vec![0u8; 32 << 20];
        for i in (0..big.len()).step_by(4096) {
            big[i] = 1;
        }
        std::hint::black_box(&big);
        let delta = probe.delta_bytes().expect("VmHWM readable");
        // With clear_refs support the delta isolates this allocation; the
        // degraded before/after mode still reports ≥ 0 (saturating).
        assert!(delta < 1 << 34, "delta {delta} implausible");
        if std::fs::write("/proc/self/clear_refs", "5").is_ok() {
            assert!(delta >= 16 << 20, "delta {delta} missed a 32 MiB allocation");
        }
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512.0 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
