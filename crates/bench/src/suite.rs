//! The algorithm roster and per-algorithm feasibility caps.
//!
//! Table 3 of the paper records which algorithms blow the 3-hour/256 GB
//! budget at `n > 2¹⁴` or average degree `Δ > 10³`. The harness encodes the
//! same feasibility knowledge as size caps so sweeps skip hopeless cells
//! instead of hanging — exactly what the paper does ("we report runtime
//! results within 3 hours").

use graphalign::{
    cone::Cone, graal::Graal, grasp::Grasp, gwl::Gwl, isorank::IsoRank, lrea::Lrea, nsd::Nsd,
    regal::Regal, sgwl::Sgwl, Aligner,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide iteration-cap override consulted by [`Algo::make`]; `0`
/// means "no override" (Table 1 defaults). Exists so the telemetry
/// integration tests can force solver truncation through the real harness
/// path (tight caps → `converged: false` with stop `max_iter`) without
/// widening every `make` call site. Not exposed as a CLI flag.
static FORCED_MAX_ITER: AtomicUsize = AtomicUsize::new(0);

/// Forces every iteration-capped solver constructed by [`Algo::make`] to at
/// most `n` iterations (`None` restores the Table 1 defaults). Affects
/// IsoRank's power iteration and CONE's Sinkhorn inner loop — the two
/// solvers the truncation tests exercise.
pub fn set_forced_max_iter(n: Option<usize>) {
    FORCED_MAX_ITER.store(n.unwrap_or(0), Ordering::SeqCst);
}

fn forced_max_iter() -> Option<usize> {
    match FORCED_MAX_ITER.load(Ordering::SeqCst) {
        0 => None,
        n => Some(n),
    }
}

/// Identifier for each algorithm in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Algo {
    IsoRank,
    Graal,
    Nsd,
    Lrea,
    Regal,
    Gwl,
    Sgwl,
    Cone,
    Grasp,
}

impl Algo {
    /// All nine, in the paper's Table 1 order.
    pub const ALL: [Algo; 9] = [
        Algo::IsoRank,
        Algo::Graal,
        Algo::Nsd,
        Algo::Lrea,
        Algo::Regal,
        Algo::Gwl,
        Algo::Sgwl,
        Algo::Cone,
        Algo::Grasp,
    ];

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::IsoRank => "IsoRank",
            Algo::Graal => "GRAAL",
            Algo::Nsd => "NSD",
            Algo::Lrea => "LREA",
            Algo::Regal => "REGAL",
            Algo::Gwl => "GWL",
            Algo::Sgwl => "S-GWL",
            Algo::Cone => "CONE",
            Algo::Grasp => "GRASP",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<Algo> {
        Algo::ALL.iter().copied().find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// Instantiates the algorithm with the study's Table 1 defaults.
    /// `dense_dataset` picks S-GWL's `β` (0.1 dense / 0.025 sparse), the one
    /// hyperparameter the paper tunes per dataset family (§6.4.2).
    pub fn make(&self, dense_dataset: bool) -> Box<dyn Aligner + Send + Sync> {
        let cap = forced_max_iter();
        match self {
            Algo::IsoRank => {
                let mut iso = IsoRank::default();
                if let Some(n) = cap {
                    iso.max_iter = n;
                }
                Box::new(iso)
            }
            Algo::Graal => Box::new(Graal::default()),
            Algo::Nsd => Box::new(Nsd::default()),
            Algo::Lrea => Box::new(Lrea::default()),
            Algo::Regal => Box::new(Regal::default()),
            Algo::Gwl => Box::new(Gwl::default()),
            Algo::Sgwl => Box::new(if dense_dataset { Sgwl::default() } else { Sgwl::sparse() }),
            Algo::Cone => {
                let mut cone = Cone::default();
                if let Some(n) = cap {
                    cone.sinkhorn.max_iter = n;
                }
                Box::new(cone)
            }
            Algo::Grasp => Box::new(Grasp::default()),
        }
    }

    /// Largest node count the algorithm handles within this harness's time
    /// budget (quick mode is sized for a CI container; full mode mirrors
    /// the paper's Table 3 feasibility at 3 h / 256 GB).
    pub fn max_nodes(&self, quick: bool) -> usize {
        if quick {
            match self {
                // Quadratic-and-better methods.
                Algo::Nsd | Algo::Lrea | Algo::Regal => 1 << 12,
                Algo::IsoRank | Algo::Grasp | Algo::Cone | Algo::Sgwl => 1 << 11,
                // Cubic / enumeration-heavy methods.
                Algo::Gwl => 400,
                Algo::Graal => 600,
            }
        } else {
            match self {
                Algo::Nsd | Algo::Lrea | Algo::Regal => 1 << 16,
                Algo::IsoRank | Algo::Grasp => 1 << 14,
                Algo::Cone | Algo::Sgwl | Algo::Gwl => 1 << 13,
                Algo::Graal => 1 << 11,
            }
        }
    }

    /// Largest average degree the algorithm handles (Table 3's `Δ > 10³`
    /// column: only IsoRank, GRAAL, NSD, LREA and GRASP survive there).
    pub fn max_avg_degree(&self, quick: bool) -> f64 {
        let full: f64 = match self {
            Algo::IsoRank | Algo::Graal | Algo::Nsd | Algo::Lrea | Algo::Grasp => 1e4,
            Algo::Regal | Algo::Gwl | Algo::Sgwl | Algo::Cone => 1e3,
        };
        if quick {
            // GRAAL's ESU preprocessing is the one cost that explodes with
            // density (Δ³ per node); the quick budget caps it harder.
            if matches!(self, Algo::Graal) {
                full.min(40.0)
            } else {
                full.min(200.0)
            }
        } else {
            full
        }
    }

    /// Whether the algorithm fits the budget on a graph of `n` nodes and
    /// average degree `avg_deg`.
    pub fn feasible(&self, n: usize, avg_deg: f64, quick: bool) -> bool {
        n <= self.max_nodes(quick) && avg_deg <= self.max_avg_degree(quick)
    }

    /// Asymptotic time complexity as reported in Table 1.
    pub fn complexity(&self) -> &'static str {
        match self {
            Algo::IsoRank => "O(n^4)",
            Algo::Graal => "O(n^3)",
            Algo::Nsd => "O(n^2)",
            Algo::Lrea => "O(n log n)",
            Algo::Regal => "O(n log n)",
            Algo::Gwl => "O(n^3)",
            Algo::Sgwl => "O(n^2 log n)",
            Algo::Cone => "O(n^2)",
            Algo::Grasp => "O(n^3)",
        }
    }

    /// Publication year (Table 1).
    pub fn year(&self) -> u16 {
        match self {
            Algo::IsoRank => 2008,
            Algo::Graal => 2010,
            Algo::Nsd => 2011,
            Algo::Lrea | Algo::Regal => 2018,
            Algo::Gwl | Algo::Sgwl => 2019,
            Algo::Cone => 2020,
            Algo::Grasp => 2021,
        }
    }

    /// Hyperparameter summary (Table 1, as configured in this crate).
    pub fn hyperparameters(&self) -> String {
        match self {
            Algo::IsoRank => format!("alpha={}", IsoRank::default().alpha),
            Algo::Graal => format!("alpha={}", Graal::default().alpha),
            Algo::Nsd => format!("alpha={}", Nsd::default().alpha),
            Algo::Lrea => format!("iterations={}", Lrea::default().iterations),
            Algo::Regal => format!("k={}, p=10*log2(n)", Regal::default().k_hops),
            Algo::Gwl => format!("epoch={}", Gwl::default().epochs),
            Algo::Sgwl => format!("beta in {{{}, {}}}", Sgwl::sparse().beta, Sgwl::default().beta),
            Algo::Cone => format!("dim={}", Cone::default().dim),
            Algo::Grasp => {
                let g = Grasp::default();
                format!("q={}, k={} (paper: k=20)", g.q, g.k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_order_and_years() {
        assert_eq!(Algo::ALL.len(), 9);
        assert_eq!(Algo::ALL[0].year(), 2008);
        assert_eq!(Algo::ALL[8].name(), "GRASP");
    }

    #[test]
    fn name_round_trip() {
        for a in Algo::ALL {
            assert_eq!(Algo::from_name(a.name()), Some(a));
        }
        assert_eq!(Algo::from_name("s-gwl"), Some(Algo::Sgwl));
        assert_eq!(Algo::from_name("nope"), None);
    }

    #[test]
    fn table3_feasibility_shape() {
        // Table 3: at n > 2^14 only NSD, LREA, REGAL fit the time budget.
        for a in Algo::ALL {
            let fits = a.feasible((1 << 14) + 1, 10.0, false);
            let expected = matches!(a, Algo::Nsd | Algo::Lrea | Algo::Regal);
            assert_eq!(fits, expected, "{} at n>2^14", a.name());
        }
        // At Δ > 10^3 REGAL, GWL, S-GWL, CONE drop out.
        for a in Algo::ALL {
            let fits = a.feasible(1 << 10, 1.5e3, false);
            let expected =
                matches!(a, Algo::IsoRank | Algo::Graal | Algo::Nsd | Algo::Lrea | Algo::Grasp);
            assert_eq!(fits, expected, "{} at Δ>10^3", a.name());
        }
    }

    #[test]
    fn make_instantiates_every_algorithm() {
        for a in Algo::ALL {
            let aligner = a.make(true);
            assert_eq!(aligner.name(), a.name());
        }
    }

    #[test]
    fn sgwl_beta_follows_density() {
        // Spot-check through the public type (the roster builds the same).
        assert_eq!(Sgwl::sparse().beta, 0.025);
        assert_eq!(Sgwl::default().beta, 0.1);
    }
}
