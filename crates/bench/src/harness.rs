//! The measurement loop: one experiment *cell* = one algorithm on one noisy
//! instance with one assignment method, timed and scored on all five
//! quality measures.
//!
//! The loop is fault-tolerant: a panicking repetition is caught (via
//! [`graphalign_par::try_map_collect`]) and recorded as a structured
//! [`CellError::Panic`] failure, a repetition that outlives the cell's
//! cooperative deadline ([`RunPolicy::cell_timeout`]) is recorded as
//! [`CellError::Timeout`], and numerical failures can be retried with a
//! reseeded instance ([`RunPolicy::retries`]). Repetitions that completed
//! before the first failure still contribute to the cell's averages
//! ([`CellResult::reps_ok`]).

use crate::suite::Algo;
use crate::telemetry::CellTelemetry;
use graphalign::AlignError;
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_graph::Graph;
use graphalign_metrics::{evaluate, QualityReport};
use graphalign_noise::{make_instance, NoiseConfig};
use graphalign_par::telemetry::{self as solver_telemetry, RepTelemetry, ResidualSeries};
use std::time::{Duration, Instant};

/// Failure classes of an experiment cell, recorded in the result JSON so
/// downstream analysis can distinguish "crashed" from "ran out of budget"
/// from "numerically failed" from "never attempted".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellError {
    /// A repetition panicked (caught; the process and sweep continue).
    Panic,
    /// The cell exceeded its cooperative deadline or was cancelled.
    Timeout,
    /// A numerical subroutine failed (non-convergence, singularity, NaN).
    Numeric,
    /// The cell was not attempted: feasibility caps or an unusable instance.
    Infeasible,
}

impl CellError {
    /// Stable string form used in JSON output (`error_class` field).
    pub fn as_str(self) -> &'static str {
        match self {
            CellError::Panic => "panic",
            CellError::Timeout => "timeout",
            CellError::Numeric => "numeric",
            CellError::Infeasible => "infeasible",
        }
    }

    /// Inverse of [`CellError::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(CellError::Panic),
            "timeout" => Some(CellError::Timeout),
            "numeric" => Some(CellError::Numeric),
            "infeasible" => Some(CellError::Infeasible),
            _ => None,
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One classified repetition failure.
#[derive(Debug, Clone)]
pub struct RepFailure {
    /// Failure class (drives retry policy and JSON classification).
    pub class: CellError,
    /// Human-readable message for the result JSON.
    pub message: String,
}

impl RepFailure {
    pub(crate) fn from_align_error(algo: &str, context: &str, e: &AlignError) -> Self {
        let class = match e {
            AlignError::Interrupted { .. } => CellError::Timeout,
            AlignError::BadInstance(_) => CellError::Infeasible,
            AlignError::Numerical(_) => CellError::Numeric,
        };
        Self { class, message: format!("{algo}{context}: {e}") }
    }
}

impl std::fmt::Display for RepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class, self.message)
    }
}

/// How a cell is executed: repetition count, seeding, and the
/// fault-tolerance knobs shared by every figure binary.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Noisy repetitions per cell.
    pub reps: usize,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Quick-mode feasibility caps.
    pub quick: bool,
    /// Cooperative deadline for the whole cell (`--cell-timeout`); `None`
    /// runs unbounded.
    pub cell_timeout: Option<Duration>,
    /// Extra reseeded attempts per repetition after a numerical failure
    /// (`--retries`). Panics and timeouts are never retried.
    pub retries: usize,
    /// Collect per-iteration residual series (`--trace`). Convergence events
    /// and op counters are always collected; this only controls the series.
    pub trace: bool,
}

impl RunPolicy {
    /// An unbounded, no-retry policy (the pre-fault-tolerance behaviour).
    pub fn new(reps: usize, seed: u64, quick: bool) -> Self {
        Self { reps, seed, quick, cell_timeout: None, retries: 0, trace: false }
    }

    /// Seed for repetition `rep`, attempt `attempt`. Attempt 0 preserves the
    /// historical `seed + rep` seeding exactly (so retries cannot perturb
    /// fault-free runs); each retry shifts by a large odd constant to draw an
    /// unrelated instance.
    pub fn rep_seed(&self, rep: usize, attempt: usize) -> u64 {
        const RESEED: u64 = 0x9E37_79B9_7F4A_7C15;
        self.seed.wrapping_add(rep as u64).wrapping_add((attempt as u64).wrapping_mul(RESEED))
    }
}

/// One measured experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Assignment method label.
    pub assignment: String,
    /// Wall-clock seconds of the alignment (per the paper, *excluding* the
    /// LAP step when `split_assignment` timing is used — see
    /// [`run_instance_split`]). `None` (JSON `null`) when no repetition
    /// succeeded — downstream analysis skips such cells instead of mistaking
    /// them for instant zero-quality runs.
    pub seconds: Option<f64>,
    /// Quality measures averaged over the successful repetitions; `None`
    /// when there were none.
    pub accuracy: Option<f64>,
    /// Matched neighborhood consistency.
    pub mnc: Option<f64>,
    /// Symmetric substructure score.
    pub s3: Option<f64>,
    /// Edge correctness.
    pub ec: Option<f64>,
    /// Induced conserved structure.
    pub ics: Option<f64>,
    /// Repetitions attempted (0 only for feasibility-skipped cells).
    pub reps: usize,
    /// Repetitions that completed successfully; the quality and `seconds`
    /// averages run over these. All measures are zero when none succeeded.
    pub reps_ok: usize,
    /// `true` when the cell was never attempted (feasibility caps).
    pub skipped: bool,
    /// First repetition failure message, when any repetition failed.
    pub error: Option<String>,
    /// Failure class of `error` ([`CellError::as_str`]); also `"infeasible"`
    /// for feasibility-skipped cells.
    pub error_class: Option<String>,
    /// End-to-end wall-clock seconds for the whole cell (all repetitions,
    /// including instance generation) — the number that shrinks when the
    /// repetition fan-out runs on more threads, unlike `seconds`, which is
    /// the summed per-repetition alignment time averaged over `reps_ok`.
    pub wall_clock: f64,
    /// Worker-thread cap the cell ran under (`--threads` /
    /// `GRAPHALIGN_THREADS` / core count; 1 in sequential builds).
    pub threads: usize,
    /// Aggregated solver telemetry of the successful repetitions; `None`
    /// for skipped cells and cells where no repetition succeeded.
    pub telemetry: Option<CellTelemetry>,
}

graphalign_json::impl_to_json!(CellResult {
    algorithm,
    assignment,
    seconds,
    accuracy,
    mnc,
    s3,
    ec,
    ics,
    reps,
    reps_ok,
    skipped,
    error,
    error_class,
    wall_clock,
    threads,
    telemetry,
});

impl CellResult {
    /// A feasibility-skipped cell marker (never attempted).
    pub fn skipped(algorithm: &str, assignment: &str) -> Self {
        Self {
            algorithm: algorithm.into(),
            assignment: assignment.into(),
            seconds: None,
            accuracy: None,
            mnc: None,
            s3: None,
            ec: None,
            ics: None,
            reps: 0,
            reps_ok: 0,
            skipped: true,
            error: None,
            error_class: Some(CellError::Infeasible.as_str().into()),
            wall_clock: 0.0,
            threads: graphalign_par::max_threads(),
            telemetry: None,
        }
    }

    /// A failed-cell marker that records what actually happened: the
    /// repetitions attempted and the true elapsed time, not zeros.
    pub fn failed(
        algorithm: &str,
        assignment: &str,
        class: CellError,
        error: String,
        reps_attempted: usize,
        wall_clock: f64,
    ) -> Self {
        Self {
            reps: reps_attempted,
            skipped: false,
            error: Some(error),
            error_class: Some(class.as_str().into()),
            wall_clock,
            ..Self::skipped(algorithm, assignment)
        }
    }

    /// Whether any repetition failed (the cell may still carry averages from
    /// the repetitions that succeeded).
    pub fn has_failure(&self) -> bool {
        self.error.is_some()
    }

    /// Parses a cell back from the flat JSON object form produced by its
    /// `ToJson` impl (also embedded in sweep rows and journal lines).
    /// Returns `None` when a required field is missing or mistyped.
    pub fn from_json(v: &graphalign_json::Json) -> Option<Self> {
        use graphalign_json::Json;
        let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        // Measures are `null` when no repetition succeeded; `Json::Null`
        // yields `as_f64() == None`, which is exactly the in-memory form.
        let opt_f64 = |key: &str| v.get(key).and_then(Json::as_f64);
        let telemetry = match v.get("telemetry") {
            None | Some(Json::Null) => None,
            Some(t) => Some(CellTelemetry::from_json(t)?),
        };
        Some(Self {
            algorithm: v.get("algorithm")?.as_str()?.to_string(),
            assignment: v.get("assignment")?.as_str()?.to_string(),
            seconds: opt_f64("seconds"),
            accuracy: opt_f64("accuracy"),
            mnc: opt_f64("mnc"),
            s3: opt_f64("s3"),
            ec: opt_f64("ec"),
            ics: opt_f64("ics"),
            reps: v.get("reps")?.as_f64()? as usize,
            reps_ok: v.get("reps_ok")?.as_f64()? as usize,
            skipped: v.get("skipped")?.as_bool()?,
            error: opt_str("error"),
            error_class: opt_str("error_class"),
            wall_clock: v.get("wall_clock")?.as_f64()?,
            threads: v.get("threads")?.as_f64()? as usize,
            telemetry,
        })
    }
}

/// Runs one algorithm on one prepared instance, timing similarity +
/// assignment together.
///
/// # Errors
/// Returns a classified [`RepFailure`] when the aligner fails (or is
/// interrupted by the cell budget).
pub fn run_instance(
    algo: Algo,
    dense_dataset: bool,
    instance: &AlignmentInstance,
    method: AssignmentMethod,
) -> Result<(QualityReport, f64), RepFailure> {
    let aligner = algo.make(dense_dataset);
    let start = Instant::now();
    let alignment = aligner
        .align_with(&instance.source, &instance.target, method)
        .map_err(|e| RepFailure::from_align_error(algo.name(), "", &e))?;
    let seconds = start.elapsed().as_secs_f64();
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    Ok((report, seconds))
}

/// Representation facts about the similarity a split run produced, for the
/// scalability figures' memory reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimilarityStats {
    /// Representation kind (`"dense"`, `"lowrank"`, `"sparse"`).
    pub repr: &'static str,
    /// Bytes the similarity payload occupies in that representation.
    pub bytes: usize,
}

/// Runs one algorithm on one prepared instance, timing only the similarity
/// phase — the paper's scalability protocol ("we exclude the runtime for
/// linear assignment", §6.6). The similarity is requested for `method`
/// ([`graphalign::Aligner::similarity_for`]), so e.g. LREA's auction cell
/// measures the sparse candidate route it actually runs.
///
/// # Errors
/// Returns a classified [`RepFailure`] when the similarity phase fails.
pub fn run_instance_split(
    algo: Algo,
    dense_dataset: bool,
    instance: &AlignmentInstance,
    method: AssignmentMethod,
) -> Result<(QualityReport, f64, SimilarityStats), RepFailure> {
    let aligner = algo.make(dense_dataset);
    let start = Instant::now();
    let sim = aligner
        .similarity_for(&instance.source, &instance.target, method)
        .map_err(|e| RepFailure::from_align_error(algo.name(), " similarity", &e))?;
    let seconds = start.elapsed().as_secs_f64();
    let stats = SimilarityStats { repr: sim.repr_kind(), bytes: sim.approx_bytes() };
    let alignment = graphalign_assignment::assign(&sim, method);
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    Ok((report, seconds, stats))
}

/// Runs a full cell: `policy.reps` noisy instances of `base` under `noise`,
/// aligned by `algo` with `method`, measures averaged over the successful
/// repetitions. Returns a skipped marker when the cell exceeds the
/// algorithm's feasibility caps.
///
/// Fault tolerance:
/// * the cell budget ([`RunPolicy::cell_timeout`]) is installed for the
///   duration of the cell and propagated to the repetition workers, so every
///   iterative solver winds down cooperatively once it expires — such
///   repetitions are classified [`CellError::Timeout`];
/// * a panicking repetition is caught and classified [`CellError::Panic`]
///   without disturbing the other repetitions;
/// * [`CellError::Numeric`] failures are retried up to [`RunPolicy::retries`]
///   times with a reseeded instance;
/// * repetitions that succeeded are aggregated even when others failed
///   ([`CellResult::reps_ok`]); the first failure in repetition order is
///   recorded in `error`/`error_class`.
///
/// The repetitions are independent (instance `r` is seeded with
/// `seed + r`), so they fan out across the worker pool; the reports are
/// then averaged sequentially in repetition order, which keeps the cell
/// measures bit-identical for every thread count.
pub fn run_cell(
    algo: Algo,
    base: &Graph,
    dense_dataset: bool,
    noise: &NoiseConfig,
    method: AssignmentMethod,
    policy: &RunPolicy,
) -> CellResult {
    run_cell_traced(algo, base, dense_dataset, noise, method, policy).0
}

/// [`run_cell`], additionally returning the per-iteration residual series of
/// every solver invocation in the successful repetitions, tagged with their
/// repetition index (in repetition order). The series are empty unless
/// [`RunPolicy::trace`] is set; the cell's aggregated `telemetry` block is
/// collected either way.
pub fn run_cell_traced(
    algo: Algo,
    base: &Graph,
    dense_dataset: bool,
    noise: &NoiseConfig,
    method: AssignmentMethod,
    policy: &RunPolicy,
) -> (CellResult, Vec<(usize, ResidualSeries)>) {
    if !algo.feasible(base.node_count(), base.avg_degree(), policy.quick) {
        return (CellResult::skipped(algo.name(), method.label()), Vec::new());
    }
    let start = Instant::now();
    let _budget = graphalign_par::budget::install(policy.cell_timeout);
    // One chunk per repetition: an alignment run dwarfs any per-item
    // forking threshold, so bill each item at `usize::MAX >> 16`.
    let results = graphalign_par::try_map_collect(policy.reps, usize::MAX >> 16, |r| {
        crate::fault::maybe_inject(&format!(
            "{}:{}:{}:r{r}",
            algo.name(),
            noise.model.label(),
            noise.level
        ));
        let mut attempt = 0usize;
        loop {
            // Fresh telemetry sink per attempt, so a retried repetition's
            // aborted first attempt cannot leak events into its averages.
            let sink = solver_telemetry::install(policy.trace);
            let instance = make_instance(base, noise, policy.rep_seed(r, attempt));
            let outcome = run_instance(algo, dense_dataset, &instance, method);
            // A repetition that "succeeded" after the budget expired may
            // carry a budget-degraded matching (the auction winds down
            // early); classify it as a timeout so degraded measures never
            // enter the averages.
            let outcome = match outcome {
                Ok(_) if graphalign_par::budget::exceeded() => Err(RepFailure {
                    class: CellError::Timeout,
                    message: format!("{}: cell budget expired during repetition {r}", algo.name()),
                }),
                other => other,
            };
            match outcome {
                Err(f) if f.class == CellError::Numeric && attempt < policy.retries => {
                    attempt += 1;
                    drop(sink);
                }
                other => {
                    let telemetry = solver_telemetry::drain();
                    drop(sink);
                    return other.map(|(report, s)| (report, s, telemetry));
                }
            }
        }
    });

    let mut acc = 0.0;
    let mut mnc = 0.0;
    let mut s3 = 0.0;
    let mut ec = 0.0;
    let mut ics = 0.0;
    let mut secs = 0.0;
    let mut ok = 0usize;
    let mut rep_telemetry: Vec<RepTelemetry> = Vec::new();
    let mut series: Vec<(usize, ResidualSeries)> = Vec::new();
    let mut first_failure: Option<(CellError, String)> = None;
    // `try_map_collect` returns outcomes in repetition order regardless of
    // worker count, so this sequential aggregation (measures and telemetry
    // alike) is bit-identical for every thread count.
    for (r, outcome) in results.into_iter().enumerate() {
        match outcome {
            Ok(Ok((report, s, telemetry))) => {
                acc += report.accuracy;
                mnc += report.mnc;
                s3 += report.s3;
                ec += report.ec;
                ics += report.ics;
                secs += s;
                ok += 1;
                series.extend(telemetry.series.iter().cloned().map(|sr| (r, sr)));
                rep_telemetry.push(telemetry);
            }
            Ok(Err(failure)) => {
                if first_failure.is_none() {
                    first_failure = Some((failure.class, failure.message));
                }
            }
            Err(panic_msg) => {
                if first_failure.is_none() {
                    first_failure =
                        Some((CellError::Panic, format!("{}: panic: {panic_msg}", algo.name())));
                }
            }
        }
    }
    // Zero successes means there is nothing to average: the measures are
    // `None` (JSON `null`), never a fabricated 0.0 from a guarded division.
    let avg = |total: f64| (ok > 0).then(|| total / ok as f64);
    let (error_class, error) = match first_failure {
        Some((class, msg)) => (Some(class.as_str().to_string()), Some(msg)),
        None => (None, None),
    };
    let cell = CellResult {
        algorithm: algo.name().into(),
        assignment: method.label().into(),
        seconds: avg(secs),
        accuracy: avg(acc),
        mnc: avg(mnc),
        s3: avg(s3),
        ec: avg(ec),
        ics: avg(ics),
        reps: policy.reps,
        reps_ok: ok,
        skipped: false,
        error,
        error_class,
        wall_clock: start.elapsed().as_secs_f64(),
        threads: graphalign_par::max_threads(),
        telemetry: (ok > 0).then(|| CellTelemetry::aggregate(&rep_telemetry)),
    };
    (cell, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_noise::NoiseModel;

    fn tiny_graph() -> Graph {
        // Ring of triangles with a pendant (distinctive, 21 nodes).
        let rings = 6;
        let mut edges = Vec::new();
        for i in 0..rings {
            let a = 3 * i;
            edges.push((a, a + 1));
            edges.push((a + 1, a + 2));
            edges.push((a, a + 2));
            edges.push((a + 2, (a + 3) % (3 * rings)));
        }
        edges.push((0, 3 * rings));
        Graph::from_edges(3 * rings + 1, &edges)
    }

    #[test]
    fn run_cell_produces_bounded_measures() {
        let g = tiny_graph();
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let cell = run_cell(
            Algo::IsoRank,
            &g,
            true,
            &noise,
            AssignmentMethod::JonkerVolgenant,
            &RunPolicy::new(2, 1, true),
        );
        assert!(!cell.skipped);
        assert_eq!(cell.reps, 2);
        assert_eq!(cell.reps_ok, 2);
        assert!(!cell.has_failure());
        for v in [cell.accuracy, cell.mnc, cell.s3, cell.ec, cell.ics] {
            let v = v.expect("successful cell must carry measures");
            assert!((0.0..=1.0).contains(&v), "measure {v} out of range");
        }
        assert!(cell.seconds.expect("successful cell must carry seconds") > 0.0);
        let t = cell.telemetry.expect("successful cell must carry telemetry");
        assert!(t.solver_runs > 0, "IsoRank must record its power/driver loops");
        assert!(t.iterations > 0);
        assert!(t.matmuls > 0, "IsoRank multiplies matrices");
        assert!(t.phases.iter().any(|(n, _)| n == "similarity"));
        assert!(t.phases.iter().any(|(n, _)| n == "assignment"));
    }

    #[test]
    fn infeasible_cells_are_skipped() {
        // GWL's quick cap is 400 nodes; a fake 10k-node graph must skip.
        let g = Graph::from_edges(10_000, &[(0, 1)]);
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let cell = run_cell(
            Algo::Gwl,
            &g,
            true,
            &noise,
            AssignmentMethod::NearestNeighbor,
            &RunPolicy::new(1, 1, true),
        );
        assert!(cell.skipped);
        assert_eq!(cell.reps, 0);
        assert_eq!(cell.error_class.as_deref(), Some("infeasible"));
    }

    #[test]
    fn split_timing_excludes_assignment() {
        let g = tiny_graph();
        let inst = graphalign_graph::permutation::AlignmentInstance::permuted(g, 3);
        let (report, secs, stats) =
            run_instance_split(Algo::Grasp, true, &inst, AssignmentMethod::JonkerVolgenant)
                .expect("GRASP runs on a tiny graph");
        assert!(secs >= 0.0);
        assert!(report.accuracy >= 0.0);
        assert_eq!(stats.repr, "lowrank", "GRASP hands the pipeline a factored similarity");
        assert!(stats.bytes > 0);
    }

    #[test]
    fn cell_error_strings_round_trip() {
        for class in
            [CellError::Panic, CellError::Timeout, CellError::Numeric, CellError::Infeasible]
        {
            assert_eq!(CellError::parse(class.as_str()), Some(class));
        }
        assert_eq!(CellError::parse("weird"), None);
    }

    #[test]
    fn cell_result_json_round_trips() {
        // Failed cell with hostile characters in the error message, a
        // partially-succeeded cell, and a feasibility skip: the JSON form
        // must reproduce each exactly (the property resume relies on).
        let mut partial = CellResult::failed(
            "GWL",
            "JV",
            CellError::Panic,
            "boom: \"quoted\"\n\ttab and \\ backslash".into(),
            3,
            1.25,
        );
        partial.reps_ok = 1;
        partial.accuracy = Some(0.3333333333333333);
        partial.seconds = Some(0.0078125);
        partial.telemetry = Some(crate::telemetry::CellTelemetry::aggregate(&[
            graphalign_par::telemetry::RepTelemetry {
                events: vec![graphalign_par::telemetry::SolverEvent {
                    routine: "isorank",
                    convergence: graphalign_par::telemetry::Convergence::max_iter(30, 0.125),
                }],
                matmuls: 3,
                phases: vec![("similarity", 0.5)],
                ..Default::default()
            },
        ]));
        let timeout = CellResult::failed(
            "CONE",
            "NN",
            CellError::Timeout,
            "cell budget expired".into(),
            2,
            5.0,
        );
        let skipped = CellResult::skipped("S-GWL", "NN");
        for cell in [partial, timeout, skipped] {
            let line = graphalign_json::to_string_compact(&cell);
            let parsed = graphalign_json::from_str(&line).expect("valid JSON");
            let back = CellResult::from_json(&parsed).expect("parseable cell");
            assert_eq!(
                graphalign_json::to_string_compact(&back),
                line,
                "round trip changed the cell"
            );
            assert_eq!(back.error, cell.error);
            assert_eq!(back.error_class, cell.error_class);
            assert_eq!(back.reps, cell.reps);
            assert_eq!(back.reps_ok, cell.reps_ok);
        }
    }

    #[test]
    fn traced_cell_returns_residual_series_untraced_does_not() {
        let g = tiny_graph();
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let traced = RunPolicy { trace: true, ..RunPolicy::new(1, 1, true) };
        let (cell, series) = run_cell_traced(
            Algo::IsoRank,
            &g,
            true,
            &noise,
            AssignmentMethod::JonkerVolgenant,
            &traced,
        );
        assert_eq!(cell.reps_ok, 1);
        assert!(!series.is_empty(), "trace mode must surface residual series");
        for (rep, s) in &series {
            assert_eq!(*rep, 0);
            assert!(s.residuals.iter().all(|r| r.is_finite()), "residuals must be finite");
        }
        let (_, none) = run_cell_traced(
            Algo::IsoRank,
            &g,
            true,
            &noise,
            AssignmentMethod::JonkerVolgenant,
            &RunPolicy::new(1, 1, true),
        );
        assert!(none.is_empty(), "series are opt-in");
    }

    #[test]
    fn rep_seed_attempt_zero_matches_historical_seeding() {
        let p = RunPolicy::new(3, 100, true);
        assert_eq!(p.rep_seed(0, 0), 100);
        assert_eq!(p.rep_seed(2, 0), 102);
        assert_ne!(p.rep_seed(0, 1), p.rep_seed(0, 0));
        assert_ne!(p.rep_seed(0, 1), p.rep_seed(1, 0));
    }

    #[test]
    fn expired_cell_timeout_is_classified_timeout() {
        let g = tiny_graph();
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let policy = RunPolicy {
            cell_timeout: Some(std::time::Duration::ZERO),
            ..RunPolicy::new(2, 1, true)
        };
        let cell =
            run_cell(Algo::IsoRank, &g, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
        assert!(!cell.skipped);
        assert_eq!(cell.reps, 2);
        assert_eq!(cell.reps_ok, 0);
        assert_eq!(cell.error_class.as_deref(), Some("timeout"));
        // Zero successes → null measures (not a fabricated 0.0), but the
        // attempt is still recorded.
        assert_eq!(cell.accuracy, None);
        assert_eq!(cell.seconds, None);
        assert_eq!(cell.telemetry, None);
        assert!(cell.wall_clock > 0.0);
    }
}
