//! The measurement loop: one experiment *cell* = one algorithm on one noisy
//! instance with one assignment method, timed and scored on all five
//! quality measures.

use crate::suite::Algo;
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_graph::Graph;
use graphalign_metrics::{evaluate, QualityReport};
use graphalign_noise::{make_instance, NoiseConfig};
use std::time::Instant;

/// One measured experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Assignment method label.
    pub assignment: String,
    /// Wall-clock seconds of the alignment (per the paper, *excluding* the
    /// LAP step when `split_assignment` timing is used — see
    /// [`run_instance_split`]).
    pub seconds: f64,
    /// Quality measures averaged over repetitions.
    pub accuracy: f64,
    /// Matched neighborhood consistency.
    pub mnc: f64,
    /// Symmetric substructure score.
    pub s3: f64,
    /// Edge correctness.
    pub ec: f64,
    /// Induced conserved structure.
    pub ics: f64,
    /// Repetitions actually run.
    pub reps: usize,
    /// `true` when the cell was skipped for feasibility (all measures 0).
    pub skipped: bool,
    /// Populated when the algorithm returned an error instead of an
    /// alignment (the cell is then also marked skipped).
    pub error: Option<String>,
    /// End-to-end wall-clock seconds for the whole cell (all repetitions,
    /// including instance generation) — the number that shrinks when the
    /// repetition fan-out runs on more threads, unlike `seconds`, which is
    /// the summed per-repetition alignment time averaged over `reps`.
    pub wall_clock: f64,
    /// Worker-thread cap the cell ran under (`--threads` /
    /// `GRAPHALIGN_THREADS` / core count; 1 in sequential builds).
    pub threads: usize,
}

graphalign_json::impl_to_json!(CellResult {
    algorithm,
    assignment,
    seconds,
    accuracy,
    mnc,
    s3,
    ec,
    ics,
    reps,
    skipped,
    error,
    wall_clock,
    threads,
});

impl CellResult {
    /// A skipped-cell marker.
    pub fn skipped(algorithm: &str, assignment: &str) -> Self {
        Self {
            algorithm: algorithm.into(),
            assignment: assignment.into(),
            seconds: 0.0,
            accuracy: 0.0,
            mnc: 0.0,
            s3: 0.0,
            ec: 0.0,
            ics: 0.0,
            reps: 0,
            skipped: true,
            error: None,
            wall_clock: 0.0,
            threads: graphalign_par::max_threads(),
        }
    }

    /// A failed-cell marker carrying the error message.
    pub fn failed(algorithm: &str, assignment: &str, error: String) -> Self {
        Self { error: Some(error), ..Self::skipped(algorithm, assignment) }
    }
}

/// Runs one algorithm on one prepared instance, timing similarity +
/// assignment together.
pub fn run_instance(
    algo: Algo,
    dense_dataset: bool,
    instance: &AlignmentInstance,
    method: AssignmentMethod,
) -> Result<(QualityReport, f64), String> {
    let aligner = algo.make(dense_dataset);
    let start = Instant::now();
    let alignment = aligner
        .align_with(&instance.source, &instance.target, method)
        .map_err(|e| format!("{}: {e}", algo.name()))?;
    let seconds = start.elapsed().as_secs_f64();
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    Ok((report, seconds))
}

/// Runs one algorithm on one prepared instance, timing only the similarity
/// phase — the paper's scalability protocol ("we exclude the runtime for
/// linear assignment", §6.6).
pub fn run_instance_split(
    algo: Algo,
    dense_dataset: bool,
    instance: &AlignmentInstance,
    method: AssignmentMethod,
) -> Result<(QualityReport, f64), String> {
    let aligner = algo.make(dense_dataset);
    let start = Instant::now();
    let sim = aligner
        .similarity(&instance.source, &instance.target)
        .map_err(|e| format!("{} similarity: {e}", algo.name()))?;
    let seconds = start.elapsed().as_secs_f64();
    let alignment = graphalign_assignment::assign(&sim, method);
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    Ok((report, seconds))
}

/// Runs a full cell: `reps` noisy instances of `base` under `noise`,
/// aligned by `algo` with `method`, measures averaged. Returns a skipped
/// marker when the cell exceeds the algorithm's feasibility caps.
///
/// The repetitions are independent (instance `r` is seeded with
/// `seed + r`), so they fan out across the worker pool; the reports are
/// then averaged sequentially in repetition order, which keeps the cell
/// measures bit-identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    algo: Algo,
    base: &Graph,
    dense_dataset: bool,
    noise: &NoiseConfig,
    method: AssignmentMethod,
    reps: usize,
    seed: u64,
    quick: bool,
) -> CellResult {
    if !algo.feasible(base.node_count(), base.avg_degree(), quick) {
        return CellResult::skipped(algo.name(), method.label());
    }
    let start = Instant::now();
    // One chunk per repetition: an alignment run dwarfs any per-item
    // forking threshold, so bill each item at `usize::MAX >> 16`.
    let results = graphalign_par::map_collect(reps, usize::MAX >> 16, |r| {
        let instance = make_instance(base, noise, seed.wrapping_add(r as u64));
        run_instance(algo, dense_dataset, &instance, method)
    });
    let mut acc = 0.0;
    let mut mnc = 0.0;
    let mut s3 = 0.0;
    let mut ec = 0.0;
    let mut ics = 0.0;
    let mut secs = 0.0;
    for result in results {
        let (report, s) = match result {
            Ok(v) => v,
            Err(e) => return CellResult::failed(algo.name(), method.label(), e),
        };
        acc += report.accuracy;
        mnc += report.mnc;
        s3 += report.s3;
        ec += report.ec;
        ics += report.ics;
        secs += s;
    }
    let k = reps.max(1) as f64;
    CellResult {
        algorithm: algo.name().into(),
        assignment: method.label().into(),
        seconds: secs / k,
        accuracy: acc / k,
        mnc: mnc / k,
        s3: s3 / k,
        ec: ec / k,
        ics: ics / k,
        reps,
        skipped: false,
        error: None,
        wall_clock: start.elapsed().as_secs_f64(),
        threads: graphalign_par::max_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_noise::NoiseModel;

    fn tiny_graph() -> Graph {
        // Ring of triangles with a pendant (distinctive, 21 nodes).
        let rings = 6;
        let mut edges = Vec::new();
        for i in 0..rings {
            let a = 3 * i;
            edges.push((a, a + 1));
            edges.push((a + 1, a + 2));
            edges.push((a, a + 2));
            edges.push((a + 2, (a + 3) % (3 * rings)));
        }
        edges.push((0, 3 * rings));
        Graph::from_edges(3 * rings + 1, &edges)
    }

    #[test]
    fn run_cell_produces_bounded_measures() {
        let g = tiny_graph();
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let cell = run_cell(
            Algo::IsoRank,
            &g,
            true,
            &noise,
            AssignmentMethod::JonkerVolgenant,
            2,
            1,
            true,
        );
        assert!(!cell.skipped);
        assert_eq!(cell.reps, 2);
        for v in [cell.accuracy, cell.mnc, cell.s3, cell.ec, cell.ics] {
            assert!((0.0..=1.0).contains(&v), "measure {v} out of range");
        }
        assert!(cell.seconds > 0.0);
    }

    #[test]
    fn infeasible_cells_are_skipped() {
        // GWL's quick cap is 400 nodes; a fake 10k-node graph must skip.
        let g = Graph::from_edges(10_000, &[(0, 1)]);
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let cell =
            run_cell(Algo::Gwl, &g, true, &noise, AssignmentMethod::NearestNeighbor, 1, 1, true);
        assert!(cell.skipped);
        assert_eq!(cell.reps, 0);
    }

    #[test]
    fn split_timing_excludes_assignment() {
        let g = tiny_graph();
        let inst = graphalign_graph::permutation::AlignmentInstance::permuted(g, 3);
        let (report, secs) =
            run_instance_split(Algo::Grasp, true, &inst, AssignmentMethod::JonkerVolgenant)
                .expect("GRASP runs on a tiny graph");
        assert!(secs >= 0.0);
        assert!(report.accuracy >= 0.0);
    }
}
