//! Minimal aligned-column table rendering for the experiment binaries.

/// A plain-text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a quality score as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats seconds with adaptive precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}s")
    } else if v >= 1.0 {
        format!("{v:.1}s")
    } else {
        format!("{:.0}ms", v * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["algo", "acc"]);
        t.row(&["IsoRank".into(), "99.1%".into()]);
        t.row(&["GW".into(), "3.0%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column alignment: "acc" starts at the same offset in every row.
        let off = lines[0].find("acc").unwrap();
        assert_eq!(&lines[2][off..off + 5], "99.1%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(secs(0.0123), "12ms");
        assert_eq!(secs(2.34), "2.3s");
        assert_eq!(secs(345.0), "345s");
    }
}
