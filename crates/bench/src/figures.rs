//! Shared sweep drivers for the figure binaries.
//!
//! Figures 2–6 are the same experiment over five graph models; Figures 7–8
//! are the same experiment over dataset lists. The drivers here implement
//! the common loop — algorithms × noise types × noise levels × repetitions,
//! JV assignment (the §6.2 level playing field) — so each binary only
//! declares its workload.

use crate::harness::{run_cell_traced, CellResult};
use crate::journal::{CellKey, Journal};
use crate::suite::Algo;
use crate::table::{pct, secs, Table};
use crate::telemetry::TraceRecord;
use crate::Config;
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_json::{Json, ToJson};
use graphalign_noise::{NoiseConfig, NoiseModel};

/// One row of a quality-vs-noise sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Workload label (graph model or dataset name).
    pub workload: String,
    /// Noise model label.
    pub noise: String,
    /// Noise level.
    pub level: f64,
    /// Measured cell.
    pub cell: CellResult,
}

impl ToJson for SweepRow {
    /// Serializes with the cell's fields inlined into the row object (the
    /// flat schema `compare_results` keys on).
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload".to_string(), self.workload.to_json()),
            ("noise".to_string(), self.noise.to_json()),
            ("level".to_string(), self.level.to_json()),
        ];
        match self.cell.to_json() {
            Json::Obj(cell_fields) => fields.extend(cell_fields),
            other => fields.push(("cell".to_string(), other)),
        }
        Json::Obj(fields)
    }
}

impl SweepRow {
    /// Parses a row back from its flat JSON object form (journal lines and
    /// `--out` files share this schema). `None` on missing/mistyped fields.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            workload: v.get("workload")?.as_str()?.to_string(),
            noise: v.get("noise")?.as_str()?.to_string(),
            level: v.get("level")?.as_f64()?,
            cell: CellResult::from_json(v)?,
        })
    }
}

/// The noise levels of the low-noise figures (`{0, 0.01, …, 0.05}`;
/// quick mode thins the grid).
pub fn low_noise_levels(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.02, 0.05]
    } else {
        vec![0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
    }
}

/// The noise levels of the high-noise figure (`{0, 0.05, …, 0.25}`).
pub fn high_noise_levels(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.1, 0.25]
    } else {
        vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25]
    }
}

/// A sweep driver bound to one run's configuration, journaling each
/// completed cell when `--out` is given and replaying completed cells when
/// `--resume` is.
///
/// Figure binaries that sweep several workloads against one output file
/// (Figures 7–8) share a single session across datasets, so the journal
/// covers the whole run.
pub struct SweepSession {
    cfg: Config,
    journal: Option<Journal>,
    /// `--trace` sidecar writer: one JSONL [`TraceRecord`] per solver
    /// invocation of every *executed* cell (replayed cells re-run nothing,
    /// so they emit no trace lines).
    trace: Option<std::io::BufWriter<std::fs::File>>,
    replayed: usize,
}

impl SweepSession {
    /// Opens the session: fresh journal for a normal run with `--out`,
    /// loaded journal for `--resume`, no journal without `--out`. Journal
    /// I/O failures are fatal (exit 1) — a checkpoint that silently doesn't
    /// checkpoint is worse than none.
    pub fn new(cfg: &Config) -> Self {
        let journal = cfg.out.as_ref().map(|out| {
            let opened = if cfg.resume {
                Journal::resume(out, cfg.seed)
            } else {
                Journal::fresh(out, cfg.seed)
            };
            opened.unwrap_or_else(|e| {
                eprintln!(
                    "error: could not open journal {}: {e}",
                    Journal::path_for(out).display()
                );
                std::process::exit(1);
            })
        });
        if let Some(j) = &journal {
            if cfg.resume && !j.is_empty() {
                println!(
                    "resuming: {} completed cells journaled in {}",
                    j.len(),
                    j.path().display()
                );
            }
        }
        let trace = cfg.trace.as_ref().map(|path| {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("error: could not create trace file {}: {e}", path.display());
                std::process::exit(1);
            });
            std::io::BufWriter::new(file)
        });
        Self { cfg: cfg.clone(), journal, trace, replayed: 0 }
    }

    /// A session that never journals, regardless of `--out` (used by tests
    /// and the thin [`quality_sweep`] wrapper).
    pub fn without_journal(cfg: &Config) -> Self {
        Self { cfg: cfg.clone(), journal: None, trace: None, replayed: 0 }
    }

    /// Cells replayed from the journal instead of executed.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Runs the Figures 2–7 protocol: every algorithm × every noise model ×
    /// every level on one base graph, JV assignment, averaged over
    /// `reps` — journaling/replaying each cell through this session.
    pub fn quality_sweep(
        &mut self,
        workload: &str,
        base: &Graph,
        dense_dataset: bool,
        noise_models: &[NoiseModel],
        levels: &[f64],
        paper_reps: usize,
    ) -> Vec<SweepRow> {
        let policy = self.cfg.policy(paper_reps);
        let method = AssignmentMethod::JonkerVolgenant;
        let mut rows = Vec::new();
        for algo in Algo::ALL {
            for &model in noise_models {
                for &level in levels {
                    let key = CellKey::new(
                        workload,
                        algo.name(),
                        method.label(),
                        model.label(),
                        level,
                        self.cfg.seed,
                        policy.reps,
                    );
                    if let Some(done) = self.journal.as_ref().and_then(|j| j.lookup(&key)) {
                        rows.push(done.clone());
                        self.replayed += 1;
                        continue;
                    }
                    let noise = NoiseConfig::new(model, level);
                    let (cell, series) =
                        run_cell_traced(algo, base, dense_dataset, &noise, method, &policy);
                    if let Some(w) = self.trace.as_mut() {
                        use std::io::Write;
                        for (rep, s) in &series {
                            let record = TraceRecord {
                                workload: workload.into(),
                                algorithm: algo.name().into(),
                                assignment: method.label().into(),
                                noise: model.label().into(),
                                level,
                                rep: *rep,
                                routine: s.routine.into(),
                                iterations: s.convergence.iterations,
                                residual: s.convergence.residual,
                                converged: s.convergence.converged,
                                stop: s.convergence.stop.as_str().into(),
                                residuals: s.residuals.clone(),
                            };
                            let line = graphalign_json::to_string_compact(&record);
                            if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
                                eprintln!("error: could not append to trace file: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                    let row = SweepRow {
                        workload: workload.into(),
                        noise: model.label().into(),
                        level,
                        cell,
                    };
                    if let Some(j) = self.journal.as_mut() {
                        if let Err(e) = j.record(key, &row) {
                            eprintln!("error: could not append to {}: {e}", j.path().display());
                            std::process::exit(1);
                        }
                    }
                    rows.push(row);
                }
            }
        }
        rows
    }
}

/// [`SweepSession::quality_sweep`] without journaling — the historical
/// entry point, kept for tests and callers that manage output themselves.
pub fn quality_sweep(
    cfg: &Config,
    workload: &str,
    base: &Graph,
    dense_dataset: bool,
    noise_models: &[NoiseModel],
    levels: &[f64],
    paper_reps: usize,
) -> Vec<SweepRow> {
    SweepSession::without_journal(cfg).quality_sweep(
        workload,
        base,
        dense_dataset,
        noise_models,
        levels,
        paper_reps,
    )
}

/// Renders sweep rows as the standard figure table (accuracy, S³, MNC —
/// the three panels of Figures 2–6), followed by one accuracy-vs-noise
/// ASCII chart per noise model (the figure's visual shape).
pub fn print_sweep(title: &str, rows: &[SweepRow]) {
    println!("{title}");
    let mut t = Table::new(&[
        "workload",
        "algorithm",
        "noise",
        "level",
        "accuracy",
        "S3",
        "MNC",
        "time",
        "status",
    ]);
    for r in rows {
        let no_measures = r.cell.skipped || r.cell.reps_ok == 0;
        let status = if r.cell.skipped {
            "skip".to_string()
        } else if let Some(class) = &r.cell.error_class {
            if r.cell.reps_ok > 0 {
                // Partial cell: averages over the reps that succeeded.
                format!("{class} ({}/{} ok)", r.cell.reps_ok, r.cell.reps)
            } else {
                class.clone()
            }
        } else {
            "ok".to_string()
        };
        if no_measures {
            t.row(&[
                r.workload.clone(),
                r.cell.algorithm.clone(),
                r.noise.clone(),
                format!("{:.2}", r.level),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                status,
            ]);
        } else {
            t.row(&[
                r.workload.clone(),
                r.cell.algorithm.clone(),
                r.noise.clone(),
                format!("{:.2}", r.level),
                pct(r.cell.accuracy.unwrap_or(0.0)),
                pct(r.cell.s3.unwrap_or(0.0)),
                pct(r.cell.mnc.unwrap_or(0.0)),
                secs(r.cell.seconds.unwrap_or(0.0)),
                status,
            ]);
        }
    }
    t.print();
    // One chart per (workload, noise model): accuracy vs noise level.
    let mut seen: Vec<(String, String)> = Vec::new();
    for r in rows {
        let key = (r.workload.clone(), r.noise.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key.clone());
        let chart_rows: Vec<(String, f64, f64)> = rows
            .iter()
            .filter(|x| {
                x.workload == key.0 && x.noise == key.1 && !x.cell.skipped && x.cell.reps_ok > 0
            })
            .map(|x| (x.cell.algorithm.clone(), x.level, x.cell.accuracy.unwrap_or(0.0)))
            .collect();
        if chart_rows.is_empty() {
            continue;
        }
        let series = crate::plot::series_from_rows(&chart_rows);
        println!();
        print!(
            "{}",
            crate::plot::line_chart(
                &format!("accuracy vs noise — {} / {}", key.0, key.1),
                &series,
                60,
                12,
            )
        );
    }
}

/// Prints the per-figure header line (mode, seed, workload sizes).
pub fn banner(figure: &str, cfg: &Config, note: &str) {
    println!(
        "== {figure} [{} mode, seed {}] {note}",
        if cfg.quick { "quick" } else { "full" },
        cfg.seed
    );
    if cfg.quick {
        println!("   (quick mode runs a scaled-down grid; pass --full for the paper-scale grid)");
    }
}

/// The synthetic-model workloads of Figures 2–6, at quick or paper scale.
/// Returns `(label, graph, dense_dataset)`.
pub fn model_graph(model: &str, cfg: &Config) -> (String, Graph, bool) {
    use graphalign_gen as gen;
    // Paper: n = 1133 for all five models (§6.3); quick mode: n = 300.
    let n = if cfg.quick { 300 } else { 1133 };
    let seed = cfg.seed ^ 0x9e3779b97f4a7c15;
    // The paper's ER probability (p = 0.009) is calibrated to n = 1133
    // (average degree ≈ 10); quick mode rescales p to preserve that average
    // degree, otherwise the scaled-down ER graph is disconnected and every
    // algorithm's behaviour changes qualitatively.
    let er_p = 0.009 * 1132.0 / (n as f64 - 1.0);
    let g = match model {
        "ER" => gen::erdos_renyi(n, er_p, seed),
        "BA" => gen::barabasi_albert(n, 5, seed),
        "WS" => gen::watts_strogatz(n, 10, 0.5, seed),
        "NW" => gen::newman_watts(n, 7, 0.5, seed),
        "PL" => gen::powerlaw_cluster(n, 5, 0.5, seed),
        other => panic!("unknown model {other}"),
    };
    (format!("{model}(n={n})"), g, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_grids_match_the_paper_in_full_mode() {
        assert_eq!(low_noise_levels(false), vec![0.0, 0.01, 0.02, 0.03, 0.04, 0.05]);
        assert_eq!(high_noise_levels(false).last(), Some(&0.25));
        assert!(low_noise_levels(true).len() < low_noise_levels(false).len());
    }

    #[test]
    fn model_graphs_have_requested_sizes() {
        let cfg = Config::default();
        for m in ["ER", "BA", "WS", "NW", "PL"] {
            let (label, g, _) = model_graph(m, &cfg);
            assert_eq!(g.node_count(), 300, "{label}");
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        model_graph("XX", &Config::default());
    }

    #[test]
    fn quality_sweep_covers_the_grid() {
        // One tiny sweep cell end-to-end: a single level, a single model,
        // every algorithm (tiny graph keeps the runtime trivial).
        let g = graphalign_gen::powerlaw_cluster(60, 3, 0.5, 1);
        let cfg = Config { seed: 1, ..Config::default() };
        let rows = quality_sweep(&cfg, "t", &g, true, &[NoiseModel::OneWay], &[0.0], 1);
        assert_eq!(rows.len(), Algo::ALL.len());
        for r in &rows {
            assert!(!r.cell.skipped, "{} skipped on a 60-node graph", r.cell.algorithm);
            assert!(r.cell.accuracy.expect("measures present") >= 0.0);
            let t = r.cell.telemetry.as_ref().expect("telemetry present");
            assert!(t.phases.iter().any(|(n, _)| n == "similarity"), "{}", r.cell.algorithm);
        }
    }
}
