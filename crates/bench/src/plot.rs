//! Plain-text line charts for the figure binaries.
//!
//! The paper's figures are accuracy-vs-noise line plots with one series per
//! algorithm. The harness renders the same shape as an ASCII chart under
//! each table so the crossovers are visible directly in the terminal and in
//! the archived `results/*.txt` files.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; need not be sorted.
    pub points: Vec<(f64, f64)>,
}

/// Marker characters assigned to series in order.
const MARKERS: &[u8] = b"ox+*#@%&sdgq";

/// Renders a line chart of the series into a `width × height` character
/// grid with axes and a legend. `y` is clamped to `[0, 1]` (all the paper's
/// quality measures live there); `x` spans the data range.
///
/// Returns an empty string if no series has at least one point.
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    if xs.is_empty() {
        return String::new();
    }
    let xmin = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let xmax = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let xspan = (xmax - xmin).max(1e-12);

    let mut grid = vec![vec![b' '; width]; height];
    let to_col = |x: f64| -> usize { (((x - xmin) / xspan) * (width - 1) as f64).round() as usize };
    let to_row = |y: f64| -> usize {
        let clamped = y.clamp(0.0, 1.0);
        ((1.0 - clamped) * (height - 1) as f64).round() as usize
    };
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        let mut pts: Vec<(f64, f64)> = s.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        // Draw connecting segments by linear interpolation per column.
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (c0, c1) = (to_col(x0), to_col(x1));
            #[allow(clippy::needless_range_loop)] // c indexes two coupled grids
            for c in c0..=c1 {
                let frac = if c1 == c0 { 0.0 } else { (c - c0) as f64 / (c1 - c0) as f64 };
                let y = y0 + frac * (y1 - y0);
                let r = to_row(y);
                // Markers at data points win over interpolated dots.
                if grid[r][c] == b' ' {
                    grid[r][c] = b'.';
                }
            }
        }
        for &(x, y) in &pts {
            grid[to_row(y)][to_col(x)] = marker;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            "1.0 |"
        } else if r == height - 1 {
            "0.0 |"
        } else {
            "    |"
        };
        out.push_str(y_label);
        out.push_str(std::str::from_utf8(row).expect("ASCII grid"));
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("     x: {xmin:.2} .. {xmax:.2}\n"));
    // Legend.
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()] as char;
        out.push_str(&format!("     {marker} {}\n", s.label));
    }
    out
}

/// Builds a per-algorithm series set from `(label, x, y)` rows.
pub fn series_from_rows(rows: &[(String, f64, f64)]) -> Vec<Series> {
    let mut out: Vec<Series> = Vec::new();
    for (label, x, y) in rows {
        match out.iter_mut().find(|s| &s.label == label) {
            Some(s) => s.points.push((*x, *y)),
            None => out.push(Series { label: label.clone(), points: vec![(*x, *y)] }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(line_chart("t", &[], 40, 10), "");
    }

    #[test]
    fn single_series_marks_its_points() {
        let s = Series { label: "IsoRank".into(), points: vec![(0.0, 1.0), (0.05, 0.5)] };
        let chart = line_chart("acc", &[s], 40, 8);
        assert!(chart.contains("acc"));
        assert!(chart.contains('o'), "marker missing:\n{chart}");
        assert!(chart.contains("IsoRank"));
        assert!(chart.contains("x: 0.00 .. 0.05"));
        // Top row holds the y=1.0 point.
        let top = chart.lines().nth(1).unwrap();
        assert!(top.contains('o'), "top row should carry the y=1 point: {top}");
    }

    #[test]
    fn two_series_use_distinct_markers() {
        let a = Series { label: "A".into(), points: vec![(0.0, 1.0), (1.0, 0.0)] };
        let b = Series { label: "B".into(), points: vec![(0.0, 0.0), (1.0, 1.0)] };
        let chart = line_chart("x", &[a, b], 30, 6);
        assert!(chart.contains('o') && chart.contains('x'));
    }

    #[test]
    fn y_is_clamped() {
        let s = Series { label: "wild".into(), points: vec![(0.0, 7.0), (1.0, -3.0)] };
        let chart = line_chart("clamp", &[s], 20, 5);
        // Must not panic, and markers land on the border rows.
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains('o'));
        assert!(lines[5].contains('o'));
    }

    #[test]
    fn series_grouping_from_rows() {
        let rows = vec![
            ("A".to_string(), 0.0, 0.9),
            ("B".to_string(), 0.0, 0.8),
            ("A".to_string(), 0.1, 0.7),
        ];
        let series = series_from_rows(&rows);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[1].points.len(), 1);
    }

    #[test]
    fn deterministic_output() {
        let s = Series { label: "A".into(), points: vec![(0.0, 0.5), (1.0, 0.5)] };
        assert_eq!(
            line_chart("t", std::slice::from_ref(&s), 30, 6),
            line_chart("t", std::slice::from_ref(&s), 30, 6)
        );
    }
}
