//! Regenerates **Figure 1**: accuracy of every algorithm under the four
//! assignment methods (NN, SG, JV, MWM) on the Arenas dataset and a
//! power-law synthetic graph, with one-way noise in {0, 0.01, …, 0.05}
//! applied while keeping the graph connected (paper §6.2).

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::{banner, low_noise_levels};
use graphalign_bench::harness::run_cell;
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{pct, secs, Table};
use graphalign_bench::Config;
use graphalign_noise::{NoiseConfig, NoiseModel};

struct Row {
    workload: String,
    algorithm: String,
    assignment: String,
    level: f64,
    accuracy: Option<f64>,
    seconds: Option<f64>,
    wall_clock: f64,
    threads: usize,
    skipped: bool,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    workload,
    algorithm,
    assignment,
    level,
    accuracy,
    seconds,
    wall_clock,
    threads,
    skipped,
    error_class,
});

fn main() {
    let cfg = Config::from_args();
    banner("Figure 1 (assignment methods)", &cfg, "Arenas + power-law graph");
    let workloads: Vec<(String, graphalign_graph::Graph)> = if cfg.quick {
        vec![
            ("Arenas~(n=300)".into(), graphalign_gen::powerlaw_cluster(300, 5, 0.5, cfg.seed)),
            ("PL(n=300)".into(), graphalign_gen::figure1_powerlaw(300, cfg.seed ^ 1)),
        ]
    } else {
        vec![
            ("Arenas".into(), graphalign_datasets::load(graphalign_datasets::DatasetId::Arenas)),
            ("PL(n=1133)".into(), graphalign_gen::figure1_powerlaw(1133, cfg.seed ^ 1)),
        ]
    };
    let methods = [
        AssignmentMethod::NearestNeighbor,
        AssignmentMethod::SortGreedy,
        AssignmentMethod::JonkerVolgenant,
        AssignmentMethod::Auction,
    ];
    let levels = low_noise_levels(cfg.quick);
    let policy = cfg.policy(10);
    let mut t = Table::new(&["workload", "algorithm", "assign", "level", "accuracy", "time"]);
    let mut rows = Vec::new();
    for (label, graph) in &workloads {
        for algo in Algo::ALL {
            for method in methods {
                for &level in &levels {
                    let noise =
                        NoiseConfig { model: NoiseModel::OneWay, level, keep_connected: true };
                    let cell = run_cell(algo, graph, true, &noise, method, &policy);
                    let no_data = cell.skipped || cell.reps_ok == 0;
                    let status = if cell.skipped {
                        "skip".to_string()
                    } else if let Some(class) = &cell.error_class {
                        class.clone()
                    } else {
                        secs(cell.seconds.unwrap_or(0.0))
                    };
                    t.row(&[
                        label.clone(),
                        cell.algorithm.clone(),
                        cell.assignment.clone(),
                        format!("{level:.2}"),
                        match cell.accuracy {
                            Some(a) if !no_data => pct(a),
                            _ => "-".into(),
                        },
                        status,
                    ]);
                    rows.push(Row {
                        workload: label.clone(),
                        algorithm: cell.algorithm,
                        assignment: cell.assignment,
                        level,
                        accuracy: cell.accuracy,
                        seconds: cell.seconds,
                        wall_clock: cell.wall_clock,
                        threads: cell.threads,
                        skipped: cell.skipped,
                        error_class: cell.error_class,
                    });
                }
            }
        }
    }
    t.print();
    cfg.write_json(&rows);
}
