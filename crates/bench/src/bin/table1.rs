//! Regenerates **Table 1**: the algorithm inventory with publication year,
//! native assignment method, time complexity and tuned hyperparameters.

use graphalign_bench::suite::Algo;
use graphalign_bench::table::Table;
use graphalign_bench::Config;

fn main() {
    let cfg = Config::from_args();
    println!("== Table 1: algorithms considered in the experiments");
    let mut t = Table::new(&["Algorithm", "Year", "Assign", "Time", "Parameters"]);
    for algo in Algo::ALL {
        let native = algo.make(true).native_assignment().label().to_string();
        t.row(&[
            algo.name().into(),
            algo.year().to_string(),
            native,
            algo.complexity().into(),
            algo.hyperparameters(),
        ]);
    }
    t.print();
    let rows: Vec<graphalign_json::Json> = Algo::ALL
        .iter()
        .map(|a| {
            graphalign_json::json!({
                "algorithm": a.name(),
                "year": a.year(),
                "assignment": a.make(true).native_assignment().label(),
                "complexity": a.complexity(),
                "parameters": a.hyperparameters(),
            })
        })
        .collect();
    cfg.write_json(&rows);
}
