//! Regenerates **Table 3**: the summary matrix — per-model top-2 performers
//! (from the Figures 2–6 grid) plus the time/memory feasibility flags at
//! `n > 2¹⁴` and `Δ > 10³` (from the suite's Table 3 caps, which the
//! scalability binaries validate empirically).

use graphalign_bench::figures::{model_graph, SweepSession};
use graphalign_bench::suite::Algo;
use graphalign_bench::table::Table;
use graphalign_bench::Config;
use graphalign_noise::NoiseModel;
use std::collections::HashMap;

fn main() {
    let cfg = Config::from_args();
    println!(
        "== Table 3: summary vs graph model / size / density [{} mode]",
        if cfg.quick { "quick" } else { "full" }
    );
    // Rank algorithms per model by mean accuracy over the one-way noise grid.
    let models = ["ER", "BA", "WS", "NW", "PL"];
    let levels = if cfg.quick { vec![0.01, 0.03] } else { vec![0.01, 0.02, 0.03, 0.04, 0.05] };
    // One session across all five models so `--resume` covers the full grid.
    let mut session = SweepSession::new(&cfg);
    let mut all_rows = Vec::new();
    let mut winners: HashMap<&str, Vec<(String, f64)>> = HashMap::new();
    for model in models {
        let (label, graph, dense) = model_graph(model, &cfg);
        let rows = session.quality_sweep(&label, &graph, dense, &[NoiseModel::OneWay], &levels, 3);
        let mut means: HashMap<String, (f64, usize)> = HashMap::new();
        for r in rows.iter().filter(|r| !r.cell.skipped && r.cell.reps_ok > 0) {
            let e = means.entry(r.cell.algorithm.clone()).or_insert((0.0, 0));
            e.0 += r.cell.accuracy.unwrap_or(0.0);
            e.1 += 1;
        }
        let mut ranked: Vec<(String, f64)> =
            means.into_iter().map(|(a, (s, c))| (a, s / c.max(1) as f64)).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite accuracy"));
        winners.insert(model, ranked);
        all_rows.extend(rows);
    }
    let mut t = Table::new(&[
        "Algorithm",
        "ER",
        "BA/PL",
        "WS/NW",
        "Time n>2^14",
        "Time D>10^3",
        "Mem n>2^14",
        "Mem D>10^3",
    ]);
    let medal = |ranked: &[(String, f64)], name: &str| -> String {
        match ranked.iter().position(|(a, _)| a == name) {
            Some(0) => "1st".into(),
            Some(1) => "2nd".into(),
            Some(_) => "-".into(),
            None => "skip".into(),
        }
    };
    for algo in Algo::ALL {
        let name = algo.name();
        let er = medal(&winners["ER"], name);
        let bapl = format!("{}/{}", medal(&winners["BA"], name), medal(&winners["PL"], name));
        let wsnw = format!("{}/{}", medal(&winners["WS"], name), medal(&winners["NW"], name));
        let yes_no = |b: bool| if b { "yes" } else { "X" };
        t.row(&[
            name.into(),
            er,
            bapl,
            wsnw,
            yes_no(algo.feasible((1 << 14) + 1, 10.0, false)).into(),
            yes_no(algo.feasible(1 << 10, 1.5e3, false)).into(),
            // Memory feasibility tracks the same caps in this build (the
            // paper's memory failures coincide with its time failures
            // except REGAL, which fails on memory at n > 2^14 full scale).
            yes_no(algo.feasible((1 << 14) + 1, 10.0, false) && algo != Algo::Regal).into(),
            yes_no(algo.feasible(1 << 10, 1.5e3, false)).into(),
        ]);
    }
    t.print();
    cfg.write_json(&all_rows);
}
