//! Regenerates **Figure 7**: accuracy on the Arenas, Facebook and
//! CA-AstroPh datasets with One-Way / Multi-Modal / Two-Way noise up to
//! 5 % (paper §6.4.1).

use graphalign_bench::figures::{banner, low_noise_levels, print_sweep, SweepSession};
use graphalign_bench::Config;
use graphalign_datasets::DatasetId;
use graphalign_noise::NoiseModel;

fn main() {
    let cfg = Config::from_args();
    banner("Figure 7 (real graphs, low noise)", &cfg, "Arenas / Facebook / CA-AstroPh");
    // Quick mode: smaller stand-ins from the same structural families so
    // every algorithm (incl. GWL) produces data within the CI budget.
    let workloads: Vec<(String, graphalign_graph::Graph, bool)> = if cfg.quick {
        vec![
            (
                "Arenas~(n=300)".into(),
                graphalign_gen::powerlaw_cluster(300, 5, 0.5, cfg.seed),
                true,
            ),
            (
                "Facebook~(n=350)".into(),
                graphalign_gen::powerlaw_cluster(350, 11, 0.8, cfg.seed ^ 2),
                true,
            ),
            (
                "CA-AstroPh~(n=400)".into(),
                graphalign_gen::powerlaw_cluster(400, 6, 0.8, cfg.seed ^ 3),
                true,
            ),
        ]
    } else {
        vec![
            ("Arenas".into(), graphalign_datasets::load(DatasetId::Arenas), true),
            ("Facebook".into(), graphalign_datasets::load(DatasetId::Facebook), true),
            ("CA-AstroPh".into(), graphalign_datasets::load(DatasetId::CaAstroPh), true),
        ]
    };
    // One session across all three datasets: the journal (and `--resume`)
    // covers the whole run, not just the last workload.
    let mut session = SweepSession::new(&cfg);
    let mut all_rows = Vec::new();
    for (label, graph, dense) in &workloads {
        let rows = session.quality_sweep(
            label,
            graph,
            *dense,
            &NoiseModel::ALL,
            &low_noise_levels(cfg.quick),
            10,
        );
        all_rows.extend(rows);
    }
    print_sweep("Accuracy on real graphs, noise up to 5%", &all_rows);
    cfg.write_json(&all_rows);
}
