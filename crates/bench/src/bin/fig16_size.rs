//! Regenerates **Figure 16**: accuracy under 1 % one-way noise on
//! Newman–Watts graphs of increasing size — (a) constant average degree
//! `k = 10` (density decreases with n) and (b) constant density
//! `k = n/10` (paper §6.7: "as the graph becomes progressively sparser,
//! alignment quality drops, except with IsoRank").

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::banner;
use graphalign_bench::harness::run_cell;
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{pct, Table};
use graphalign_bench::Config;
use graphalign_noise::{NoiseConfig, NoiseModel};

struct Row {
    sweep: String,
    n: usize,
    k: usize,
    algorithm: String,
    accuracy: Option<f64>,
    wall_clock: f64,
    threads: usize,
    skipped: bool,
    reps_ok: usize,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    sweep,
    n,
    k,
    algorithm,
    accuracy,
    wall_clock,
    threads,
    skipped,
    reps_ok,
    error_class
});

fn main() {
    let cfg = Config::from_args();
    banner("Figure 16 (size)", &cfg, "Newman-Watts, p = 0.5, 1% one-way noise");
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.01);
    let policy = cfg.policy(5);
    let sizes: Vec<usize> =
        if cfg.quick { vec![100, 200, 400] } else { vec![500, 1000, 2000, 4000] };
    let mut t = Table::new(&["sweep", "n", "k", "algorithm", "accuracy"]);
    let mut rows = Vec::new();
    for (sweep, k_of_n) in [
        ("fixed degree (k=10)", Box::new(|_n: usize| 10usize) as Box<dyn Fn(usize) -> usize>),
        ("fixed density (k=n/10)", Box::new(|n: usize| (n / 10).max(2))),
    ] {
        for &n in &sizes {
            let k = k_of_n(n).min(n - 1);
            let base = graphalign_gen::newman_watts(n, k, 0.5, cfg.seed ^ (n * 31 + k) as u64);
            for algo in Algo::ALL {
                let cell =
                    run_cell(algo, &base, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
                t.row(&[
                    sweep.into(),
                    n.to_string(),
                    k.to_string(),
                    cell.algorithm.clone(),
                    match cell.accuracy {
                        Some(a) if !cell.skipped => pct(a),
                        _ => "-".into(),
                    },
                ]);
                rows.push(Row {
                    sweep: sweep.into(),
                    n,
                    k,
                    algorithm: cell.algorithm,
                    accuracy: cell.accuracy,
                    wall_clock: cell.wall_clock,
                    threads: cell.threads,
                    skipped: cell.skipped,
                    reps_ok: cell.reps_ok,
                    error_class: cell.error_class,
                });
            }
        }
    }
    t.print();
    for sweep in ["fixed degree (k=10)", "fixed density (k=n/10)"] {
        let chart_rows: Vec<(String, f64, f64)> = rows
            .iter()
            .filter(|r| r.sweep == sweep && !r.skipped && r.reps_ok > 0)
            .map(|r| (r.algorithm.clone(), r.n as f64, r.accuracy.unwrap_or(0.0)))
            .collect();
        if chart_rows.is_empty() {
            continue;
        }
        let series = graphalign_bench::plot::series_from_rows(&chart_rows);
        println!();
        print!(
            "{}",
            graphalign_bench::plot::line_chart(
                &format!("accuracy vs n — {sweep}"),
                &series,
                60,
                12,
            )
        );
    }
    cfg.write_json(&rows);
}
