//! Compares two JSON result files produced by the figure binaries
//! (`--out`), reporting per-cell accuracy deltas — the regression check a
//! CI pipeline runs against a stored baseline — and, when both files carry
//! the `wall_clock`/`threads` fields, the aggregate wall-clock speedup of
//! the candidate over the baseline (e.g. a `--threads 8` run vs a
//! `--threads 1` baseline).
//!
//! ```sh
//! compare_results baseline/fig2_er.json results/fig2_er.json [--tol 0.05]
//! ```
//!
//! Exit code 0 when every shared cell moved less than the tolerance,
//! 1 otherwise. Timing differences never fail the check — only quality
//! regressions do.

use graphalign_json::Json;
use std::collections::BTreeMap;

/// One comparable cell: the quality measure plus optional timing and
/// telemetry metadata.
struct Cell {
    accuracy: f64,
    wall_clock: Option<f64>,
    threads: Option<usize>,
    /// The cell's `telemetry.converged` flag, when the row carries a
    /// telemetry block (older result files don't).
    converged: Option<bool>,
}

/// Renders a JSON number the way the identifying keys expect (integers
/// without a trailing `.0`).
fn num_key(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn cell_key(v: &Json) -> Option<String> {
    // Works for the sweep-row and scalability-row schemas alike: join all
    // identifying string/low-cardinality fields.
    let mut parts = Vec::new();
    for field in ["workload", "dataset", "variant", "noise", "algorithm", "assignment", "sweep"] {
        if let Some(s) = v.get(field).and_then(|x| x.as_str()) {
            parts.push(format!("{field}={s}"));
        }
    }
    for field in ["level", "n", "k", "p", "avg_degree"] {
        if let Some(x) = v.get(field).and_then(|x| x.as_f64()) {
            parts.push(format!("{field}={}", num_key(x)));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> BTreeMap<String, Cell> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc =
        graphalign_json::from_str(&text).unwrap_or_else(|e| fail(format!("{path}: bad JSON: {e}")));
    let rows =
        doc.as_array().unwrap_or_else(|| fail(format!("{path}: expected a JSON array of rows")));
    let mut out = BTreeMap::new();
    for row in rows {
        // Cells without measures — feasibility skips, and cells where every
        // repetition failed (`error_class` set, `reps_ok` 0) — carry zeroed
        // measures and must not be compared as if they were quality data.
        let skipped = row.get("skipped").and_then(|x| x.as_bool()).unwrap_or(false);
        let no_data = match row.get("reps_ok").and_then(|x| x.as_f64()) {
            Some(ok) => ok == 0.0,
            None => row.get("error_class").is_some_and(|x| x.as_str().is_some()),
        };
        if skipped || no_data {
            continue;
        }
        if let (Some(key), Some(accuracy)) =
            (cell_key(row), row.get("accuracy").and_then(|x| x.as_f64()))
        {
            let cell = Cell {
                accuracy,
                wall_clock: row.get("wall_clock").and_then(|x| x.as_f64()),
                threads: row.get("threads").and_then(|x| x.as_f64()).map(|t| t as usize),
                converged: row
                    .get("telemetry")
                    .and_then(|t| t.get("converged"))
                    .and_then(|c| c.as_bool()),
            };
            out.insert(key, cell);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: compare_results <baseline.json> <candidate.json> [--tol <f64>]");
        std::process::exit(2);
    }
    let mut tol = 0.05;
    if let Some(pos) = args.iter().position(|a| a == "--tol") {
        tol = args.get(pos + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("--tol needs a number");
            std::process::exit(2);
        });
    }
    let baseline = load(&args[0]);
    let candidate = load(&args[1]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut base_clock = 0.0;
    let mut cand_clock = 0.0;
    let mut timed = 0usize;
    let mut base_threads: Option<usize> = None;
    let mut cand_threads: Option<usize> = None;
    for (key, base) in &baseline {
        let Some(cand) = candidate.get(key) else {
            println!("MISSING  {key} (baseline {:.3})", base.accuracy);
            continue;
        };
        compared += 1;
        let delta = cand.accuracy - base.accuracy;
        if delta.abs() > tol {
            regressions += 1;
            println!(
                "{}  {key}: {:.3} -> {:.3} ({delta:+.3})",
                if delta < 0.0 { "WORSE " } else { "BETTER" },
                base.accuracy,
                cand.accuracy,
            );
        }
        if let (Some(b), Some(c)) = (base.wall_clock, cand.wall_clock) {
            if b > 0.0 && c > 0.0 {
                base_clock += b;
                cand_clock += c;
                timed += 1;
            }
        }
        base_threads = base_threads.or(base.threads);
        cand_threads = cand_threads.or(cand.threads);
    }
    println!("compared {compared} cells, {regressions} moved more than {tol}");
    // Non-convergence summary: cells whose telemetry reports at least one
    // truncated/interrupted solver run. Informational only — the solvers may
    // still produce acceptable alignments (IsoRank's truncated similarity
    // matrices are the paper's own protocol), so these never count as
    // regressions; they explain *why* a quality delta might exist.
    let nonconv: Vec<&String> =
        candidate.iter().filter(|(_, c)| c.converged == Some(false)).map(|(key, _)| key).collect();
    let with_telemetry = candidate.values().filter(|c| c.converged.is_some()).count();
    if with_telemetry > 0 {
        println!(
            "non-convergence: {} of {with_telemetry} candidate cells report unconverged \
             solver runs",
            nonconv.len()
        );
        for key in &nonconv {
            println!("NONCONV  {key}");
        }
    }
    if compared == 0 {
        eprintln!("error: no comparable cells between the two files (wrong baseline?)");
        std::process::exit(1);
    }
    if timed > 0 && cand_clock > 0.0 {
        let label = |t: Option<usize>| t.map_or_else(|| "?".to_string(), |n| n.to_string());
        println!(
            "wall-clock over {timed} timed cells: {base_clock:.2}s ({} threads) -> \
             {cand_clock:.2}s ({} threads), speedup x{:.2}",
            label(base_threads),
            label(cand_threads),
            base_clock / cand_clock,
        );
    }
    std::process::exit(if regressions > 0 { 1 } else { 0 });
}
