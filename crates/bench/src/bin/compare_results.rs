//! Compares two JSON result files produced by the figure binaries
//! (`--out`), reporting per-cell accuracy deltas — the regression check a
//! CI pipeline runs against a stored baseline.
//!
//! ```sh
//! compare_results baseline/fig2_er.json results/fig2_er.json [--tol 0.05]
//! ```
//!
//! Exit code 0 when every shared cell moved less than the tolerance,
//! 1 otherwise.

use std::collections::BTreeMap;

fn cell_key(v: &serde_json::Value) -> Option<String> {
    // Works for the sweep-row and scalability-row schemas alike: join all
    // identifying string/low-cardinality fields.
    let mut parts = Vec::new();
    for field in ["workload", "dataset", "variant", "noise", "algorithm", "assignment", "sweep"] {
        if let Some(s) = v.get(field).and_then(|x| x.as_str()) {
            parts.push(format!("{field}={s}"));
        }
    }
    for field in ["level", "n", "k", "p", "avg_degree"] {
        if let Some(x) = v.get(field) {
            if x.is_number() {
                parts.push(format!("{field}={x}"));
            }
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let rows: Vec<serde_json::Value> =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path}: bad JSON: {e}"));
    let mut out = BTreeMap::new();
    for row in rows {
        if let (Some(key), Some(acc)) =
            (cell_key(&row), row.get("accuracy").and_then(|x| x.as_f64()))
        {
            out.insert(key, acc);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: compare_results <baseline.json> <candidate.json> [--tol <f64>]");
        std::process::exit(2);
    }
    let mut tol = 0.05;
    if let Some(pos) = args.iter().position(|a| a == "--tol") {
        tol = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--tol needs a number");
                std::process::exit(2);
            });
    }
    let baseline = load(&args[0]);
    let candidate = load(&args[1]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, base_acc) in &baseline {
        let Some(cand_acc) = candidate.get(key) else {
            println!("MISSING  {key} (baseline {base_acc:.3})");
            continue;
        };
        compared += 1;
        let delta = cand_acc - base_acc;
        if delta.abs() > tol {
            regressions += 1;
            println!(
                "{}  {key}: {base_acc:.3} -> {cand_acc:.3} ({delta:+.3})",
                if delta < 0.0 { "WORSE " } else { "BETTER" }
            );
        }
    }
    println!("compared {compared} cells, {regressions} moved more than {tol}");
    std::process::exit(if regressions > 0 { 1 } else { 0 });
}
