//! Regenerates **Figure 13**: memory vs node count on configuration-model
//! graphs with average degree 10 (paper §6.6). Reports the analytic
//! model-level byte footprint per algorithm (dominant matrices/embeddings)
//! plus the process peak RSS; DESIGN.md §3.8 documents the substitution for
//! whole-process RSS measurement.

use graphalign_bench::figures::banner;
use graphalign_bench::memprobe::{fmt_bytes, model_bytes, CellRssProbe};
use graphalign_bench::suite::Algo;
use graphalign_bench::table::Table;
use graphalign_bench::{xl, Config};

struct Row {
    algorithm: String,
    n: usize,
    m: usize,
    model_bytes: usize,
    fits_256gb: bool,
}

graphalign_json::impl_to_json!(Row { algorithm, n, m, model_bytes, fits_256gb });

fn node_grid(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 8, 1 << 10, 1 << 12]
    } else {
        (10..=16).map(|e| 1 << e).collect()
    }
}

struct XlRow {
    algorithm: String,
    n: usize,
    m: usize,
    model_bytes: usize,
    budget_bytes: usize,
    fits_nd_budget: bool,
}

graphalign_json::impl_to_json!(XlRow {
    algorithm,
    n,
    m,
    model_bytes,
    budget_bytes,
    fits_nd_budget
});

/// The `--scale xl` branch: analytic model bytes for the XL roster at the XL
/// node grid, checked against the tier's enforced `O(n·d)` budget
/// ([`xl::budget_bytes`]) instead of the paper testbed's 256 GB. Sparse
/// objects (CSR adjacencies, LREA-style candidate lists) are accounted at
/// their nnz footprint throughout, so these rows are truthful at n = 10⁶.
fn run_xl(cfg: &Config) {
    let probe = CellRssProbe::begin();
    banner(
        "Figure 13 XL (memory vs node count, never-densify tier)",
        cfg,
        "ring+chords avg degree 10, O(n·d) budget",
    );
    let mut t = Table::new(&["algorithm", "n", "model bytes", "n·d budget", "fits"]);
    let mut rows = Vec::new();
    for n in xl::node_grid(cfg.quick) {
        let m = (n as f64 * xl::XL_AVG_DEGREE / 2.0) as usize;
        let budget = xl::budget_bytes(n);
        for algo in xl::XlAlgo::ALL {
            let bytes = algo.model_bytes(n, m);
            let fits = bytes <= budget;
            t.row(&[
                algo.name().into(),
                n.to_string(),
                fmt_bytes(bytes),
                fmt_bytes(budget),
                if fits { "yes".into() } else { "NO".into() },
            ]);
            rows.push(XlRow {
                algorithm: algo.name().into(),
                n,
                m,
                model_bytes: bytes,
                budget_bytes: budget,
                fits_nd_budget: fits,
            });
        }
        // The contrast row the figure exists for: any dense n×n object.
        let dense = graphalign_linalg::Similarity::dense_bytes(n, n);
        t.row(&[
            "(dense n×n)".into(),
            n.to_string(),
            fmt_bytes(dense),
            fmt_bytes(budget),
            if dense <= budget { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    if let Some(delta) = probe.delta_bytes() {
        println!("peak RSS growth while tabulating: {}", fmt_bytes(delta));
    }
    cfg.write_json(&rows);
}

fn main() {
    let cfg = Config::from_args();
    if cfg.xl {
        run_xl(&cfg);
        return;
    }
    let probe = CellRssProbe::begin();
    banner("Figure 13 (memory vs node count)", &cfg, "configuration model, avg degree 10");
    let budget: usize = 256 * 1024 * 1024 * 1024;
    let mut t = Table::new(&["algorithm", "n", "model bytes", "fits 256GB"]);
    let mut rows = Vec::new();
    for n in node_grid(cfg.quick) {
        let m = 5 * n; // avg degree 10
        for algo in Algo::ALL {
            if algo == Algo::Graal {
                continue;
            }
            let bytes = model_bytes(algo, n, m);
            let fits = bytes <= budget;
            t.row(&[
                algo.name().into(),
                n.to_string(),
                fmt_bytes(bytes),
                if fits { "yes".into() } else { "NO".into() },
            ]);
            rows.push(Row {
                algorithm: algo.name().into(),
                n,
                m,
                model_bytes: bytes,
                fits_256gb: fits,
            });
        }
    }
    t.print();
    if let Some(delta) = probe.delta_bytes() {
        println!("peak RSS growth while tabulating: {}", fmt_bytes(delta));
    }
    cfg.write_json(&rows);
}
