//! Regenerates **Figure 11**: similarity-phase runtime vs node count on
//! configuration-model graphs with normal degree distribution and average
//! degree 10 (paper §6.6; n = 2¹⁰ … 2¹⁶, assignment time excluded, 5 runs,
//! GRAAL excluded for its quintic preprocessing).

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::{banner, SweepRow};
use graphalign_bench::harness::run_instance_split;
use graphalign_bench::journal::{CellKey, Journal};
use graphalign_bench::memprobe::{fmt_bytes, CellRssProbe};
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{secs, Table};
use graphalign_bench::{xl, Config};
use graphalign_graph::permutation::AlignmentInstance;

struct Row {
    algorithm: String,
    n: usize,
    seconds: f64,
    /// Peak-RSS growth attributable to this cell (see
    /// [`graphalign_bench::memprobe::CellRssProbe`]); `None` when `/proc`
    /// is unavailable.
    rss_delta_bytes: Option<usize>,
    /// Representation the algorithm's similarity used (`"dense"`,
    /// `"lowrank"`, `"sparse"`); `None` when the cell never produced one.
    similarity_repr: Option<String>,
    /// Bytes the similarity payload occupies in that representation.
    similarity_bytes: Option<usize>,
    skipped: bool,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    algorithm,
    n,
    seconds,
    rss_delta_bytes,
    similarity_repr,
    similarity_bytes,
    skipped,
    error_class
});

pub(crate) fn node_grid(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 8, 1 << 9, 1 << 10]
    } else {
        (10..=16).map(|e| 1 << e).collect()
    }
}

/// The `--scale xl` branch: the streamed never-densify tier. Instances come
/// from [`xl::instance`] (chunked CSR build off a disk edge stream), only the
/// XL-capable roster runs, the similarity phase is timed (fig11's protocol),
/// quality is the exact sliced sharded-NN probe, and every cell goes through
/// the journal so `--resume` replays completed cells bit-identically.
fn run_xl(cfg: &Config) {
    banner(
        "Figure 11 XL (runtime vs node count, streamed never-densify tier)",
        cfg,
        "ring+chords avg degree 10; similarity timed, sliced sharded-NN probe",
    );
    let mut journal = cfg.out.as_deref().map(|out| {
        let opened =
            if cfg.resume { Journal::resume(out, cfg.seed) } else { Journal::fresh(out, cfg.seed) };
        opened.unwrap_or_else(|e| {
            eprintln!("error: journal for {}: {e}", out.display());
            std::process::exit(1);
        })
    });
    let slice = if cfg.quick { xl::XL_EVAL_SLICE_QUICK } else { xl::XL_EVAL_SLICE };
    let dir = xl::stream_dir();
    let mut t =
        Table::new(&["algorithm", "n", "time(similarity)", "acc@slice", "repr", "sim", "rss"]);
    let mut rows: Vec<SweepRow> = Vec::new();
    for n in xl::node_grid(cfg.quick) {
        // The streamed instance is built lazily: a fully-journaled resume
        // replays every cell without touching the generator at all.
        let mut inst = None;
        for algo in xl::XlAlgo::ALL {
            let key =
                CellKey::new(xl::XL_WORKLOAD, algo.name(), "NN", "none", n as f64, cfg.seed, 1);
            if let Some(row) = journal.as_ref().and_then(|j| j.lookup(&key)) {
                let row = row.clone();
                t.row(&[
                    algo.name().into(),
                    n.to_string(),
                    row.cell.seconds.map_or_else(|| "journal".into(), secs),
                    row.cell.accuracy.map_or_else(|| "-".into(), |a| format!("{a:.4}")),
                    "journal".into(),
                    "-".into(),
                    "-".into(),
                ]);
                rows.push(row);
                continue;
            }
            if inst.is_none() {
                std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                    eprintln!("error: create {}: {e}", dir.display());
                    std::process::exit(1);
                });
                inst = Some(xl::instance(&dir, n, cfg.seed).unwrap_or_else(|e| {
                    eprintln!("error: streamed instance at n={n}: {e}");
                    std::process::exit(1);
                }));
            }
            let m = xl::run_cell(
                algo,
                inst.as_ref().expect("instance built above"),
                slice,
                cfg.cell_timeout.map(std::time::Duration::from_secs_f64),
            );
            if m.densifications > 0 {
                eprintln!(
                    "warning: {} at n={n}: {} densification(s) — XL tier must stay factored",
                    algo.name(),
                    m.densifications
                );
            }
            t.row(&[
                algo.name().into(),
                n.to_string(),
                m.cell.seconds.map_or_else(|| m.cell.error_class.clone().unwrap_or_default(), secs),
                m.cell.accuracy.map_or_else(|| "-".into(), |a| format!("{a:.4}")),
                m.sim.map_or_else(|| "-".into(), |s| s.repr.into()),
                m.sim.map_or_else(|| "-".into(), |s| fmt_bytes(s.bytes)),
                m.rss_delta_bytes.map_or_else(|| "-".into(), fmt_bytes),
            ]);
            let row = SweepRow {
                workload: xl::XL_WORKLOAD.into(),
                noise: "none".into(),
                level: n as f64,
                cell: m.cell,
            };
            if let Some(j) = journal.as_mut() {
                if let Err(e) = j.record(key, &row) {
                    eprintln!("error: journal write to {}: {e}", j.path().display());
                    std::process::exit(1);
                }
            }
            rows.push(row);
        }
    }
    t.print();
    cfg.write_json(&rows);
}

fn main() {
    let cfg = Config::from_args();
    if cfg.xl {
        run_xl(&cfg);
        return;
    }
    banner("Figure 11 (runtime vs node count)", &cfg, "configuration model, avg degree 10");
    let reps = cfg.reps(5);
    let mut t = Table::new(&["algorithm", "n", "time(similarity)", "rss"]);
    let mut rows = Vec::new();
    for n in node_grid(cfg.quick) {
        let seq = graphalign_gen::degrees::normal(n, 10.0, 2.5, cfg.seed);
        let base = graphalign_gen::configuration_model(&seq, cfg.seed ^ n as u64);
        for algo in Algo::ALL {
            if algo == Algo::Graal {
                continue; // excluded by the paper (O(n^5) preprocessing)
            }
            if !algo.feasible(n, base.avg_degree(), cfg.quick) {
                t.row(&[algo.name().into(), n.to_string(), "skip (>budget)".into(), "-".into()]);
                rows.push(Row {
                    algorithm: algo.name().into(),
                    n,
                    seconds: 0.0,
                    rss_delta_bytes: None,
                    similarity_repr: None,
                    similarity_bytes: None,
                    skipped: true,
                    error_class: Some("infeasible".into()),
                });
                continue;
            }
            // One budget per (algorithm, n) cell for `--cell-timeout`.
            let _budget = graphalign_par::budget::install(
                cfg.cell_timeout.map(std::time::Duration::from_secs_f64),
            );
            let probe = CellRssProbe::begin();
            let mut total = 0.0;
            let mut failure = None;
            let mut sim_stats = None;
            for r in 0..reps {
                let inst = AlignmentInstance::permuted(base.clone(), cfg.seed + r as u64);
                match run_instance_split(algo, true, &inst, AssignmentMethod::NearestNeighbor) {
                    Ok((_, s, stats)) => {
                        total += s;
                        sim_stats = Some(stats);
                    }
                    Err(e) => {
                        eprintln!("warning: {} at n={n}: {e}", algo.name());
                        failure = Some(e);
                        break;
                    }
                }
            }
            let rss_delta_bytes = probe.delta_bytes();
            let rss_label = rss_delta_bytes.map_or_else(|| "-".into(), fmt_bytes);
            let similarity_repr = sim_stats.map(|s| s.repr.to_string());
            let similarity_bytes = sim_stats.map(|s| s.bytes);
            match failure {
                None => {
                    let avg = total / reps as f64;
                    t.row(&[algo.name().into(), n.to_string(), secs(avg), rss_label]);
                    rows.push(Row {
                        algorithm: algo.name().into(),
                        n,
                        seconds: avg,
                        rss_delta_bytes,
                        similarity_repr,
                        similarity_bytes,
                        skipped: false,
                        error_class: None,
                    });
                }
                Some(e) => {
                    t.row(&[algo.name().into(), n.to_string(), e.class.to_string(), rss_label]);
                    rows.push(Row {
                        algorithm: algo.name().into(),
                        n,
                        seconds: 0.0,
                        rss_delta_bytes,
                        similarity_repr,
                        similarity_bytes,
                        skipped: false,
                        error_class: Some(e.class.as_str().into()),
                    });
                }
            }
        }
    }
    t.print();
    cfg.write_json(&rows);
}
