//! Regenerates **Figure 9**: the time-vs-accuracy scatter on the NetScience
//! dataset, with one-way noise in {0, 0.05, …, 0.25} (paper §6.4.2,
//! "CONE and S-GWL stand out on resolving the time-accuracy tradeoff").

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::{banner, high_noise_levels};
use graphalign_bench::harness::run_cell;
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{pct, secs, Table};
use graphalign_bench::Config;
use graphalign_datasets::{load, DatasetId};
use graphalign_noise::{NoiseConfig, NoiseModel};

struct Row {
    algorithm: String,
    level: f64,
    accuracy: Option<f64>,
    seconds: Option<f64>,
    wall_clock: f64,
    threads: usize,
    skipped: bool,
    reps_ok: usize,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    algorithm,
    level,
    accuracy,
    seconds,
    wall_clock,
    threads,
    skipped,
    reps_ok,
    error_class
});

fn main() {
    let cfg = Config::from_args();
    banner("Figure 9 (time vs accuracy, NetScience)", &cfg, "");
    let graph = load(DatasetId::CaNetscience);
    let levels = high_noise_levels(cfg.quick);
    let policy = cfg.policy(5);
    let mut t = Table::new(&["algorithm", "level", "accuracy", "time"]);
    let mut rows = Vec::new();
    for algo in Algo::ALL {
        for &level in &levels {
            let noise = NoiseConfig::new(NoiseModel::OneWay, level);
            let cell = run_cell(
                algo,
                &graph,
                false, // NetScience is sparse: S-GWL beta = 0.025
                &noise,
                AssignmentMethod::JonkerVolgenant,
                &policy,
            );
            let no_data = cell.skipped || cell.reps_ok == 0;
            let status = if cell.skipped {
                "skip".to_string()
            } else if let Some(class) = &cell.error_class {
                class.clone()
            } else {
                secs(cell.seconds.unwrap_or(0.0))
            };
            t.row(&[
                cell.algorithm.clone(),
                format!("{level:.2}"),
                match cell.accuracy {
                    Some(a) if !no_data => pct(a),
                    _ => "-".into(),
                },
                status,
            ]);
            rows.push(Row {
                algorithm: cell.algorithm,
                level,
                accuracy: cell.accuracy,
                seconds: cell.seconds,
                wall_clock: cell.wall_clock,
                threads: cell.threads,
                skipped: cell.skipped,
                reps_ok: cell.reps_ok,
                error_class: cell.error_class,
            });
        }
    }
    t.print();
    // The figure's scatter: time (x) vs accuracy (y), one series per
    // algorithm; noise level decreases along each series as in the paper.
    let chart_rows: Vec<(String, f64, f64)> = rows
        .iter()
        .filter(|r| !r.skipped && r.reps_ok > 0)
        .map(|r| (r.algorithm.clone(), r.seconds.unwrap_or(0.0), r.accuracy.unwrap_or(0.0)))
        .collect();
    let series = graphalign_bench::plot::series_from_rows(&chart_rows);
    println!();
    print!("{}", graphalign_bench::plot::line_chart("accuracy vs time (seconds)", &series, 60, 14));
    cfg.write_json(&rows);
}
