//! Regenerates **Figure 14**: memory vs average degree at n = 2¹⁴ with a
//! uniform degree distribution (paper §6.6). Same accounting as Figure 13;
//! the headline observation — sparse-representation methods' memory does
//! not grow with the edge count while dense methods' does — falls out of
//! the per-algorithm model terms.

use graphalign_bench::figures::banner;
use graphalign_bench::memprobe::{fmt_bytes, model_bytes, CellRssProbe};
use graphalign_bench::suite::Algo;
use graphalign_bench::table::Table;
use graphalign_bench::Config;

struct Row {
    algorithm: String,
    n: usize,
    avg_degree: usize,
    model_bytes: usize,
    fits_256gb: bool,
}

graphalign_json::impl_to_json!(Row { algorithm, n, avg_degree, model_bytes, fits_256gb });

fn main() {
    let cfg = Config::from_args();
    let probe = CellRssProbe::begin();
    let n = if cfg.quick { 1 << 10 } else { 1 << 14 };
    banner("Figure 14 (memory vs average degree)", &cfg, &format!("n = {n}"));
    let budget: usize = 256 * 1024 * 1024 * 1024;
    let degrees: Vec<usize> = if cfg.quick { vec![10, 100] } else { vec![10, 100, 1000, 10_000] };
    let mut t = Table::new(&["algorithm", "avg_degree", "model bytes", "fits 256GB"]);
    let mut rows = Vec::new();
    for &deg in &degrees {
        let m = n * deg / 2;
        for algo in Algo::ALL {
            if algo == Algo::Graal {
                continue;
            }
            let bytes = model_bytes(algo, n, m);
            let fits = bytes <= budget;
            t.row(&[
                algo.name().into(),
                deg.to_string(),
                fmt_bytes(bytes),
                if fits { "yes".into() } else { "NO".into() },
            ]);
            rows.push(Row {
                algorithm: algo.name().into(),
                n,
                avg_degree: deg,
                model_bytes: bytes,
                fits_256gb: fits,
            });
        }
    }
    t.print();
    if let Some(delta) = probe.delta_bytes() {
        println!("peak RSS growth while tabulating: {}", fmt_bytes(delta));
    }
    cfg.write_json(&rows);
}
