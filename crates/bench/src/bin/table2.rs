//! Regenerates **Table 2**: dataset statistics — node count `n`, edge count
//! `m`, nodes outside the largest connected component `ℓ`, and network type
//! — for the synthetic replicas shipped with this workspace (identical `n`
//! and `m` by construction for the exactly-pinned datasets; ℓ is the
//! replica's own value).

use graphalign_bench::table::Table;
use graphalign_bench::Config;
use graphalign_datasets::{replica, ALL};
use graphalign_graph::traversal::connected_components;

fn main() {
    let cfg = Config::from_args();
    println!("== Table 2: real-graph replicas (paper n/m | replica n/m/l)");
    if cfg.quick {
        println!("   (quick mode verifies the small datasets only; --full builds all 16)");
    }
    let mut t = Table::new(&["Dataset", "n", "m", "l(paper)", "l(replica)", "Type"]);
    let mut rows = Vec::new();
    for spec in &ALL {
        if cfg.quick && spec.n > 3000 {
            t.row(&[
                spec.name.into(),
                spec.n.to_string(),
                spec.m.to_string(),
                spec.left_out.to_string(),
                "-".into(),
                spec.kind.label().into(),
            ]);
            continue;
        }
        let g = replica(spec.id);
        let l = connected_components(&g).nodes_outside_largest();
        t.row(&[
            spec.name.into(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            spec.left_out.to_string(),
            l.to_string(),
            spec.kind.label().into(),
        ]);
        rows.push(graphalign_json::json!({
            "dataset": spec.name,
            "n": g.node_count(),
            "m": g.edge_count(),
            "left_out_paper": spec.left_out,
            "left_out_replica": l,
            "type": spec.kind.label(),
        }));
    }
    t.print();
    cfg.write_json(&rows);
}
