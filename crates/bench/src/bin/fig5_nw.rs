//! Regenerates **Figure 5**: Accuracy, S³ and MNC on NW random
//! graphs under One-Way, Multi-Modal and Two-Way noise up to 5 %
//! (paper §6.3; n = 1133, 10 repetitions at full scale).

use graphalign_bench::figures::{banner, low_noise_levels, model_graph, print_sweep, SweepSession};
use graphalign_bench::Config;
use graphalign_noise::NoiseModel;

fn main() {
    let cfg = Config::from_args();
    let (label, graph, dense) = model_graph("NW", &cfg);
    banner("Figure 5 (NW synthetic graphs)", &cfg, &label);
    let mut session = SweepSession::new(&cfg);
    let rows = session.quality_sweep(
        &label,
        &graph,
        dense,
        &NoiseModel::ALL,
        &low_noise_levels(cfg.quick),
        10,
    );
    print_sweep("Accuracy / S3 / MNC vs noise", &rows);
    cfg.write_json(&rows);
}
