//! Regenerates **Figure 8**: accuracy on ten network-repository datasets
//! with One-Way noise up to 25 %, averaged over 5 runs (paper §6.4.2).

use graphalign_bench::figures::{banner, high_noise_levels, print_sweep, SweepSession};
use graphalign_bench::Config;
use graphalign_datasets::{load, spec, DatasetId, NetworkKind, FIGURE8};
use graphalign_noise::NoiseModel;

fn main() {
    let cfg = Config::from_args();
    banner("Figure 8 (real graphs, high noise)", &cfg, "10 network-repository datasets");
    // Quick mode runs the three smallest datasets; full mode all ten.
    let ids: Vec<DatasetId> = if cfg.quick {
        vec![DatasetId::CaNetscience, DatasetId::BioCelegans, DatasetId::InfEuroroad]
    } else {
        FIGURE8.to_vec()
    };
    // One session across all datasets so `--resume` covers the whole run.
    let mut session = SweepSession::new(&cfg);
    let mut all_rows = Vec::new();
    for id in ids {
        let s = spec(id);
        let graph = load(id);
        // The paper tunes S-GWL's beta by density: dense fb-* datasets use
        // 0.1, sparse infrastructure/collaboration ones 0.025.
        let dense = !matches!(s.kind, NetworkKind::Infrastructure | NetworkKind::Collaboration);
        let rows = session.quality_sweep(
            s.name,
            &graph,
            dense,
            &[NoiseModel::OneWay],
            &high_noise_levels(cfg.quick),
            5,
        );
        all_rows.extend(rows);
    }
    print_sweep("Accuracy on real graphs, one-way noise up to 25%", &all_rows);
    cfg.write_json(&all_rows);
}
