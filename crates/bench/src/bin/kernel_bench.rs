//! Perf baseline harness for the hot numerical kernels (PR 4 tentpole).
//!
//! Times the cache-blocked GEMM, the fused dense·CSRᵀ SpMM, Sinkhorn
//! scaling sweeps, graphlet counting, and a fig11-scale IsoRank iteration
//! loop — each against a *naive reference implementation* reproducing the
//! pre-optimization formulation (plain ikj GEMM with the zero-skip branch,
//! transpose-per-iteration SpMM), so the emitted numbers are honest
//! before/after pairs on the same machine.
//!
//! ```text
//! kernel_bench [--quick] [--threads N] [--seed S] [--out PATH]
//! kernel_bench [--quick] [--threads N] --compare BENCH_kernels.json
//! ```
//!
//! Full mode (the committed-baseline mode) sweeps the whole suite at
//! `threads = 1, 2, 8` so the baseline doubles as a roofline table for the
//! tiled kernels; `--threads` selects the single thread count of a `--quick`
//! run (the CI smoke configuration runs quick at 1 and at 8).
//!
//! Without `--compare`, writes a JSON report (default `BENCH_kernels.json`):
//! `{"schema":"kernel_bench/v1","threads":…,"mode":…,"rows":[{kernel, size,
//! threads, reps, median_ns, throughput}, …]}` where `throughput` is
//! kernel-specific work units per second (flops for GEMM/SpMM, matvec flops
//! for Sinkhorn, edges for graphlets, iteration flops for the IsoRank loop).
//!
//! With `--compare`, reruns the suite and checks the *relative* speedups
//! (naive median / optimized median) against the baseline's — absolute
//! nanoseconds vary across machines, the blocked-vs-naive ratio should not —
//! and exits nonzero when any pair regressed by more than 10% (with an
//! absolute 0.2 cushion for near-parity ratios, where quotient noise
//! outruns a relative threshold — see [`REGRESSION_SLACK_ABS`]). The compare
//! also fails when baseline coverage is missing from the fresh run: exact
//! `(kernel, size, threads)` rows in full mode, kernel names in quick mode —
//! a kernel that silently stops being benchmarked cannot hide a regression.

use graphalign_graph::spectral;
use graphalign_json::Json;
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::{vec_ops, CsrMatrix, DenseMatrix, Workspace};
use std::hint::black_box;
use std::time::Instant;

/// Thread counts swept by a full run (the roofline axis of the baseline).
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Naive/optimized kernel pairs whose speedup ratio `--compare` tracks.
const RATIO_PAIRS: [(&str, &str); 3] = [
    ("gemm_naive", "gemm_blocked"),
    ("spmm_right_naive", "spmm_right_fused"),
    ("isorank_loop_naive", "isorank_loop_fused"),
];

/// Maximum tolerated relative drop of a speedup ratio vs the baseline.
const REGRESSION_SLACK: f64 = 0.10;

/// Absolute ratio cushion for near-parity pairs. A ratio is a quotient of
/// two medians, so its run-to-run noise is multiplicative in both; for a
/// pair sitting near 1.0× (the fused IsoRank loop at n=256, whose fix
/// makes it *not worse* rather than much faster) a ±6% wobble on each
/// median swings the ratio by more than the 10% relative slack. The gate
/// therefore allows whichever cushion is larger — relative for the
/// multi-x pairs where 10% is the bigger allowance, absolute for pairs
/// near parity — and still catches the bug class it exists for (the
/// pre-fix fused loop sat at 0.68×, far below either threshold).
const REGRESSION_SLACK_ABS: f64 = 0.2;

struct Config {
    quick: bool,
    /// Thread count of a `--quick` run; full runs sweep [`THREAD_SWEEP`].
    threads: usize,
    seed: u64,
    out: String,
    compare: Option<String>,
    /// Restrict the run to bench groups whose name contains this substring
    /// (`gemm`, `spmm`, `sinkhorn`, `graphlets`, `isorank`). Measurement
    /// aid only: filtered runs are refused as baselines or compare inputs.
    only: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: kernel_bench [--quick] [--threads N] [--seed S] [--only GROUP] [--out PATH] \
         [--compare BASELINE]\n\
         --threads applies to --quick runs; full runs sweep threads=1,2,8"
    );
    std::process::exit(2);
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            quick: false,
            threads: 1,
            seed: 7,
            out: "BENCH_kernels.json".to_string(),
            compare: None,
            only: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => cfg.threads = n,
                    _ => usage(),
                },
                "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(s) => cfg.seed = s,
                    None => usage(),
                },
                "--out" => match args.next() {
                    Some(p) => cfg.out = p,
                    None => usage(),
                },
                "--compare" => match args.next() {
                    Some(p) => cfg.compare = Some(p),
                    None => usage(),
                },
                "--only" => match args.next() {
                    Some(g) => cfg.only = Some(g),
                    None => usage(),
                },
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage();
                }
            }
        }
        cfg
    }

    fn reps(&self) -> usize {
        if self.quick {
            3
        } else {
            5
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Row {
    kernel: String,
    size: String,
    threads: usize,
    reps: usize,
    median_ns: u64,
    /// Work units per second (kernel-specific; see module docs).
    throughput: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("size".into(), Json::Str(self.size.clone())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("reps".into(), Json::Num(self.reps as f64)),
            ("median_ns".into(), Json::Num(self.median_ns as f64)),
            ("throughput".into(), Json::Num(self.throughput)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            kernel: v.get("kernel")?.as_str()?.to_string(),
            size: v.get("size")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_f64()? as usize,
            reps: v.get("reps")?.as_f64()? as usize,
            median_ns: v.get("median_ns")?.as_f64()? as u64,
            throughput: v.get("throughput")?.as_f64()?,
        })
    }
}

/// One warm-up run, then timed runs; returns `(median_ns, reps)`.
///
/// The warm-up also calibrates the rep count: fast kernels get up to 25
/// reps so their median covers ~250 ms of samples and stays stable under
/// scheduler noise (the `--compare` gate needs reproducible ratios), slow
/// kernels keep the configured floor.
fn time_median<F: FnMut()>(base_reps: usize, mut f: F) -> (u64, usize) {
    let t0 = Instant::now();
    f();
    let warm = (t0.elapsed().as_nanos() as u64).max(1);
    const TARGET_TOTAL_NS: u64 = 250_000_000;
    let reps = base_reps.max(((TARGET_TOTAL_NS / warm) as usize).min(25));
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], reps)
}

fn row(kernel: &str, size: String, threads: usize, work_units: f64, timing: (u64, usize)) -> Row {
    let (median_ns, reps) = timing;
    let throughput = if median_ns > 0 { work_units / (median_ns as f64 / 1e9) } else { 0.0 };
    println!("  {kernel:<20} {size:<12} t{threads} median {median_ns:>12} ns  ({reps} reps)");
    Row { kernel: kernel.to_string(), size, threads, reps, median_ns, throughput }
}

/// The pre-blocking dense GEMM: sequential ikj with row-axpy and the
/// since-removed `a_il == 0.0` skip — the honest "before" reference.
fn gemm_naive_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    let data = out.as_mut_slice();
    for i in 0..m {
        let orow = &mut data[i * n..(i + 1) * n];
        for l in 0..k {
            let a_il = a.get(i, l);
            if a_il == 0.0 {
                continue;
            }
            vec_ops::axpy(a_il, b.row(l), orow);
        }
    }
    out
}

fn dense_of(n: usize, m: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(n, m, |i, j| {
        let t = (i * 31 + j * 17 + seed as usize * 13) % 101;
        (t as f64 - 50.0) / 50.0
    })
}

fn bench_gemm(cfg: &Config, t: usize, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 512, 1024] };
    for &n in sizes {
        let a = dense_of(n, n, cfg.seed);
        let b = dense_of(n, n, cfg.seed + 1);
        let flops = 2.0 * (n as f64).powi(3);
        let size = format!("{n}x{n}");
        let med = time_median(cfg.reps(), || {
            black_box(gemm_naive_ref(black_box(&a), black_box(&b)));
        });
        rows.push(row("gemm_naive", size.clone(), t, flops, med));
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).matmul(black_box(&b)));
        });
        rows.push(row("gemm_blocked", size, t, flops, med));
    }
}

fn bench_spmm(cfg: &Config, t: usize, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[512] } else { &[512, 2048] };
    for &n in sizes {
        let g =
            graphalign_gen::configuration_model(&graphalign_gen::degrees::uniform(n, 10), cfg.seed);
        let a: CsrMatrix = g.adjacency();
        let x = dense_of(n, 64, cfg.seed + 2);
        let flops = 2.0 * a.nnz() as f64 * 64.0;
        let size = format!("{n}x{n}d10");
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).mul_dense(black_box(&x)));
        });
        rows.push(row("spmm", size.clone(), t, flops, med));

        // The tiled transposed-product and dense·denseᵀ kernels, tracked as
        // single roofline rows (their thread scaling, not a naive pair).
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).tr_mul_dense(black_box(&x)));
        });
        rows.push(row("spmm_tr", size.clone(), t, flops, med));
        let y = dense_of(64, n, cfg.seed + 6);
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).mul_dense_tr(black_box(&y)));
        });
        rows.push(row("spmm_dense_tr", size.clone(), t, flops, med));

        // Right-multiplication by a CSR transpose, the IsoRank/GWL shape:
        // fused dense·CSRᵀ kernel vs the transpose-per-call formulation.
        let d = dense_of(n, n, cfg.seed + 3);
        let flops = 2.0 * a.nnz() as f64 * n as f64;
        let med = time_median(cfg.reps(), || {
            let naive = black_box(&a).transpose().mul_dense(&black_box(&d).transpose()).transpose();
            black_box(naive);
        });
        rows.push(row("spmm_right_naive", size.clone(), t, flops, med));
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&d).mul_csr_tr(black_box(&a)));
        });
        rows.push(row("spmm_right_fused", size, t, flops, med));
    }
}

fn bench_sinkhorn(cfg: &Config, t: usize, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 512] };
    const SWEEPS: usize = 50;
    for &n in sizes {
        let cost = DenseMatrix::from_fn(n, n, |i, j| ((i + j) % 17) as f64 / 17.0);
        let mu = uniform_marginal(n);
        // tol = 0 pins the work to exactly SWEEPS sweeps per run.
        let params = SinkhornParams { epsilon: 0.05, max_iter: SWEEPS, tol: 0.0 };
        // Three n-length matvecs of 2n² flops each per sweep.
        let flops = 6.0 * (n as f64).powi(2) * SWEEPS as f64;
        let med = time_median(cfg.reps(), || {
            black_box(sinkhorn(black_box(&cost), &mu, &mu, &params).unwrap());
        });
        rows.push(row("sinkhorn", format!("{n}x{n}i{SWEEPS}"), t, flops, med));
    }
}

fn bench_graphlets(cfg: &Config, t: usize, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[2000] } else { &[2000, 10000] };
    for &n in sizes {
        let g = graphalign_gen::configuration_model(
            &graphalign_gen::degrees::uniform(n, 10),
            cfg.seed + 4,
        );
        let edges = g.edge_count() as f64;
        let med = time_median(cfg.reps(), || {
            black_box(graphalign_graph::graphlets::graphlet_degrees(black_box(&g)));
        });
        rows.push(row("graphlet_degrees", format!("n{n}d10"), t, edges, med));
    }
}

/// The IsoRank inner loop at fig11 scale, old shape vs new shape, on
/// identical inputs. The two variants must produce bit-identical similarity
/// matrices — verified on every run — so the timing difference is purely the
/// kernel work. The fused variant mirrors the production `IsoRank` path
/// exactly: hoisted CSR transpose, reused buffers, and the form-selecting
/// right-SpMM (`mul_csr_tr_into_auto`) whose size cutoff fixes the small-n
/// regression.
fn bench_isorank_loop(cfg: &Config, t: usize, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 1024] };
    const ITERS: usize = 10;
    const ALPHA: f64 = 0.9;
    for &n in sizes {
        let g = graphalign_gen::configuration_model(
            &graphalign_gen::degrees::uniform(n, 10),
            cfg.seed + 5,
        );
        let pa: CsrMatrix = spectral::row_normalized_adjacency(&g).transpose();
        let pb: CsrMatrix = spectral::row_normalized_adjacency(&g);
        let e = DenseMatrix::filled(n, n, 1.0 / (n * n) as f64);
        let flops = 2.0 * 2.0 * pa.nnz() as f64 * n as f64 * ITERS as f64;
        let size = format!("n{n}i{ITERS}");

        let naive = |out: &mut DenseMatrix| {
            let mut r = e.clone();
            for _ in 0..ITERS {
                let left = pa.mul_dense(&r);
                let mut next = pb.transpose().mul_dense(&left.transpose()).transpose();
                next.scale_inplace(ALPHA);
                next.add_scaled(1.0 - ALPHA, &e);
                let total = next.sum();
                if total > 0.0 {
                    next.scale_inplace(1.0 / total);
                }
                r = next;
            }
            *out = r;
        };
        let fused = |out: &mut DenseMatrix| {
            let pbt = pb.transpose();
            let mut r = e.clone();
            let mut left = DenseMatrix::zeros(n, n);
            let mut next = DenseMatrix::zeros(n, n);
            let mut ws = Workspace::new();
            for _ in 0..ITERS {
                pa.mul_dense_into(&r, &mut left);
                left.mul_csr_tr_into_auto(&pbt, &mut next, &mut ws);
                next.scale_inplace(ALPHA);
                next.add_scaled(1.0 - ALPHA, &e);
                let total = next.sum();
                if total > 0.0 {
                    next.scale_inplace(1.0 / total);
                }
                std::mem::swap(&mut r, &mut next);
            }
            *out = r;
        };

        let mut r_naive = DenseMatrix::zeros(n, n);
        let mut r_fused = DenseMatrix::zeros(n, n);
        let med = time_median(cfg.reps(), || naive(black_box(&mut r_naive)));
        rows.push(row("isorank_loop_naive", size.clone(), t, flops, med));
        let med = time_median(cfg.reps(), || fused(black_box(&mut r_fused)));
        rows.push(row("isorank_loop_fused", size, t, flops, med));
        let (a, b) = (r_naive.as_slice(), r_fused.as_slice());
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "fused IsoRank loop diverged bitwise from the naive loop at n={n}"
        );
    }
}

fn run_all(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    // Quick runs measure at the requested thread count; full runs sweep the
    // roofline thread axis so the committed baseline carries scaling rows.
    let sweep: &[usize] = if cfg.quick { &[cfg.threads] } else { &THREAD_SWEEP };
    println!(
        "kernel_bench: {} mode, threads {:?}",
        if cfg.quick { "quick" } else { "full" },
        sweep
    );
    let enabled = |group: &str| cfg.only.as_deref().is_none_or(|o| group.contains(o));
    for &t in sweep {
        graphalign_par::set_max_threads(t);
        if enabled("gemm") {
            bench_gemm(cfg, t, &mut rows);
        }
        if enabled("spmm") {
            bench_spmm(cfg, t, &mut rows);
        }
        if enabled("sinkhorn") {
            bench_sinkhorn(cfg, t, &mut rows);
        }
        if enabled("graphlets") {
            bench_graphlets(cfg, t, &mut rows);
        }
        if enabled("isorank") {
            bench_isorank_loop(cfg, t, &mut rows);
        }
    }
    rows
}

/// Physical parallelism of this host, as recorded in the report header. The
/// thread-sweep rows (`threads = 2, 8`) are oversubscription noise when the
/// recording host has fewer cores — `compare` uses the baseline's value to
/// skip exactly those pairs instead of trusting a prose caveat.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// SIMD dispatch level the kernels ran at (`"avx2"` or `"scalar"`). Both
/// paths are bitwise-identical, so this only contextualizes throughput —
/// but a baseline recorded under one level should be read knowing it.
fn simd_level() -> &'static str {
    if graphalign_linalg::simd::simd_active() {
        "avx2"
    } else {
        "scalar"
    }
}

fn report_json(cfg: &Config, rows: &[Row]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("kernel_bench/v1".into())),
        ("threads".into(), Json::Num(cfg.threads as f64)),
        ("mode".into(), Json::Str(if cfg.quick { "quick" } else { "full" }.into())),
        ("host_cores".into(), Json::Num(host_cores() as f64)),
        ("simd".into(), Json::Str(simd_level().into())),
        ("rows".into(), Json::Arr(rows.iter().map(Row::to_json).collect())),
    ])
}

/// A parsed baseline: its rows plus the host parallelism it was recorded
/// under. `host_cores` is `None` for pre-schema-extension baselines (no
/// skipping is applied for those — the rule cannot be retrofitted honestly).
struct Baseline {
    rows: Vec<Row>,
    host_cores: Option<usize>,
}

fn load_baseline(path: &str) -> Baseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("kernel_bench: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let parsed = graphalign_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("kernel_bench: baseline {path} is not valid JSON: {e:?}");
        std::process::exit(2);
    });
    let rows = parsed
        .get("rows")
        .and_then(Json::as_array)
        .map(|arr| arr.iter().filter_map(Row::from_json).collect::<Vec<_>>())
        .unwrap_or_default();
    if rows.is_empty() {
        eprintln!("kernel_bench: baseline {path} has no parseable rows");
        std::process::exit(2);
    }
    let host_cores = parsed.get("host_cores").and_then(Json::as_f64).map(|c| c as usize);
    if let Some(simd) = parsed.get("simd").and_then(Json::as_str) {
        let current = simd_level();
        if simd != current {
            println!(
                "note: baseline recorded at SIMD level {simd}, this run is {current} — \
                 ratios compare naive/optimized at the same level, so the gate still holds"
            );
        }
    }
    Baseline { rows, host_cores }
}

fn median_of<'a>(rows: &'a [Row], kernel: &str, size: &str, threads: usize) -> Option<&'a Row> {
    rows.iter().find(|r| r.kernel == kernel && r.size == size && r.threads == threads)
}

/// Compares the naive/optimized speedup ratios of the current run against
/// the baseline's, at matching `(size, threads)`. Returns the number of
/// regressions (> 10% ratio drop).
///
/// Pairs at thread counts exceeding the baseline's recorded `host_cores` are
/// skipped with a note: a 1-core host timing `threads = 8` measures
/// oversubscription scheduling, not kernel speed, so its ratios gate
/// nothing. A run where *every* pair is skipped by that rule passes (the
/// machine-checked replacement for the old prose-only caveat); having no
/// comparable pairs for any other reason is still a hard setup error.
fn compare(baseline: &Baseline, current: &[Row]) -> usize {
    let mut regressions = 0;
    let mut pairs_checked = 0;
    let mut skipped_over_cores = 0;
    for &(naive, optimized) in &RATIO_PAIRS {
        for cur_opt in current.iter().filter(|r| r.kernel == optimized) {
            let (size, t) = (&cur_opt.size, cur_opt.threads);
            if let Some(cores) = baseline.host_cores {
                if t > cores {
                    println!(
                        "skip {optimized} [{size} t{t}]: baseline host had {cores} core(s) — \
                         its t{t} rows are oversubscription noise"
                    );
                    skipped_over_cores += 1;
                    continue;
                }
            }
            let Some(cur_naive) = median_of(current, naive, size, t) else { continue };
            let Some(base_opt) = median_of(&baseline.rows, optimized, size, t) else { continue };
            let Some(base_naive) = median_of(&baseline.rows, naive, size, t) else { continue };
            if cur_opt.median_ns == 0 || base_opt.median_ns == 0 {
                continue;
            }
            let cur_ratio = cur_naive.median_ns as f64 / cur_opt.median_ns as f64;
            let base_ratio = base_naive.median_ns as f64 / base_opt.median_ns as f64;
            pairs_checked += 1;
            let floor =
                (base_ratio * (1.0 - REGRESSION_SLACK)).min(base_ratio - REGRESSION_SLACK_ABS);
            let ok = cur_ratio >= floor;
            println!(
                "{} {optimized} [{size} t{t}]: speedup {cur_ratio:.2}x vs baseline \
                 {base_ratio:.2}x",
                if ok { "ok  " } else { "FAIL" },
            );
            if !ok {
                regressions += 1;
            }
        }
    }
    if pairs_checked == 0 {
        if skipped_over_cores > 0 {
            println!(
                "kernel_bench: all {skipped_over_cores} ratio pair(s) exceed the baseline \
                 host's parallelism — nothing to gate at this thread count"
            );
            return 0;
        }
        eprintln!("kernel_bench: no comparable kernel/size pairs between run and baseline");
        std::process::exit(2);
    }
    regressions
}

/// Verifies that the fresh run still covers the committed baseline, so a
/// kernel that silently stops being benchmarked cannot hide a regression.
/// Full runs must reproduce every exact `(kernel, size, threads)` row; quick
/// runs (a deliberate subset of sizes and thread counts) must still exercise
/// every kernel *name* the baseline knows. Returns the number of misses.
fn check_coverage(baseline: &[Row], current: &[Row], quick: bool) -> usize {
    let mut missing = 0;
    if quick {
        let mut reported: Vec<&str> = Vec::new();
        for b in baseline {
            if reported.contains(&b.kernel.as_str()) {
                continue;
            }
            if !current.iter().any(|c| c.kernel == b.kernel) {
                println!("FAIL missing from run: kernel {} absent entirely", b.kernel);
                reported.push(&b.kernel);
                missing += 1;
            }
        }
    } else {
        for b in baseline {
            if median_of(current, &b.kernel, &b.size, b.threads).is_none() {
                println!("FAIL missing from run: {} [{} t{}]", b.kernel, b.size, b.threads);
                missing += 1;
            }
        }
    }
    missing
}

fn main() {
    let cfg = Config::from_args();
    if cfg.only.is_some() && cfg.compare.is_some() {
        eprintln!("kernel_bench: --only produces a partial run; it cannot be used with --compare");
        std::process::exit(2);
    }
    if cfg.only.is_some() && cfg.out == "BENCH_kernels.json" {
        eprintln!(
            "kernel_bench: --only requires an explicit --out (refusing to write a partial \
                   baseline to the default path)"
        );
        std::process::exit(2);
    }
    let rows = run_all(&cfg);
    match &cfg.compare {
        Some(path) => {
            let baseline = load_baseline(path);
            let regressions = compare(&baseline, &rows);
            let missing = check_coverage(&baseline.rows, &rows, cfg.quick);
            if regressions + missing > 0 {
                eprintln!(
                    "kernel_bench: {regressions} speedup regression(s) > 10% and {missing} \
                     missing baseline row(s) vs {path}"
                );
                std::process::exit(1);
            }
            println!("kernel_bench: no speedup regressions, full baseline coverage vs {path}");
        }
        None => {
            let report = report_json(&cfg, &rows);
            std::fs::write(&cfg.out, report.to_string_pretty()).unwrap_or_else(|e| {
                eprintln!("kernel_bench: cannot write {}: {e}", cfg.out);
                std::process::exit(2);
            });
            println!("kernel_bench: wrote {} rows to {}", rows.len(), cfg.out);
        }
    }
}
