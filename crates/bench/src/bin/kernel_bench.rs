//! Perf baseline harness for the hot numerical kernels (PR 4 tentpole).
//!
//! Times the cache-blocked GEMM, the fused dense·CSRᵀ SpMM, Sinkhorn
//! scaling sweeps, graphlet counting, and a fig11-scale IsoRank iteration
//! loop — each against a *naive reference implementation* reproducing the
//! pre-optimization formulation (plain ikj GEMM with the zero-skip branch,
//! transpose-per-iteration SpMM), so the emitted numbers are honest
//! before/after pairs on the same machine.
//!
//! ```text
//! kernel_bench [--quick] [--threads N] [--seed S] [--out PATH]
//! kernel_bench [--quick] [--threads N] --compare BENCH_kernels.json
//! ```
//!
//! Without `--compare`, writes a JSON report (default `BENCH_kernels.json`):
//! `{"schema":"kernel_bench/v1","threads":…,"mode":…,"rows":[{kernel, size,
//! threads, reps, median_ns, throughput}, …]}` where `throughput` is
//! kernel-specific work units per second (flops for GEMM/SpMM, matvec flops
//! for Sinkhorn, edges for graphlets, iteration flops for the IsoRank loop).
//!
//! With `--compare`, reruns the suite and checks the *relative* speedups
//! (naive median / optimized median) against the baseline's — absolute
//! nanoseconds vary across machines, the blocked-vs-naive ratio should not —
//! and exits nonzero when any pair regressed by more than 10%.

use graphalign_graph::spectral;
use graphalign_json::Json;
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::{vec_ops, CsrMatrix, DenseMatrix};
use std::hint::black_box;
use std::time::Instant;

/// Naive/optimized kernel pairs whose speedup ratio `--compare` tracks.
const RATIO_PAIRS: [(&str, &str); 3] = [
    ("gemm_naive", "gemm_blocked"),
    ("spmm_right_naive", "spmm_right_fused"),
    ("isorank_loop_naive", "isorank_loop_fused"),
];

/// Maximum tolerated relative drop of a speedup ratio vs the baseline.
const REGRESSION_SLACK: f64 = 0.10;

struct Config {
    quick: bool,
    threads: usize,
    seed: u64,
    out: String,
    compare: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: kernel_bench [--quick] [--threads N] [--seed S] [--out PATH] [--compare BASELINE]"
    );
    std::process::exit(2);
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            quick: false,
            threads: 1,
            seed: 7,
            out: "BENCH_kernels.json".to_string(),
            compare: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => cfg.threads = n,
                    _ => usage(),
                },
                "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(s) => cfg.seed = s,
                    None => usage(),
                },
                "--out" => match args.next() {
                    Some(p) => cfg.out = p,
                    None => usage(),
                },
                "--compare" => match args.next() {
                    Some(p) => cfg.compare = Some(p),
                    None => usage(),
                },
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage();
                }
            }
        }
        cfg
    }

    fn reps(&self) -> usize {
        if self.quick {
            3
        } else {
            5
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Row {
    kernel: String,
    size: String,
    threads: usize,
    reps: usize,
    median_ns: u64,
    /// Work units per second (kernel-specific; see module docs).
    throughput: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("size".into(), Json::Str(self.size.clone())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("reps".into(), Json::Num(self.reps as f64)),
            ("median_ns".into(), Json::Num(self.median_ns as f64)),
            ("throughput".into(), Json::Num(self.throughput)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            kernel: v.get("kernel")?.as_str()?.to_string(),
            size: v.get("size")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_f64()? as usize,
            reps: v.get("reps")?.as_f64()? as usize,
            median_ns: v.get("median_ns")?.as_f64()? as u64,
            throughput: v.get("throughput")?.as_f64()?,
        })
    }
}

/// One warm-up run, then timed runs; returns `(median_ns, reps)`.
///
/// The warm-up also calibrates the rep count: fast kernels get up to 25
/// reps so their median covers ~250 ms of samples and stays stable under
/// scheduler noise (the `--compare` gate needs reproducible ratios), slow
/// kernels keep the configured floor.
fn time_median<F: FnMut()>(base_reps: usize, mut f: F) -> (u64, usize) {
    let t0 = Instant::now();
    f();
    let warm = (t0.elapsed().as_nanos() as u64).max(1);
    const TARGET_TOTAL_NS: u64 = 250_000_000;
    let reps = base_reps.max(((TARGET_TOTAL_NS / warm) as usize).min(25));
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], reps)
}

fn row(kernel: &str, size: String, cfg: &Config, work_units: f64, timing: (u64, usize)) -> Row {
    let (median_ns, reps) = timing;
    let throughput = if median_ns > 0 { work_units / (median_ns as f64 / 1e9) } else { 0.0 };
    println!("  {kernel:<20} {size:<12} median {median_ns:>12} ns  ({reps} reps)");
    Row { kernel: kernel.to_string(), size, threads: cfg.threads, reps, median_ns, throughput }
}

/// The pre-blocking dense GEMM: sequential ikj with row-axpy and the
/// since-removed `a_il == 0.0` skip — the honest "before" reference.
fn gemm_naive_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    let data = out.as_mut_slice();
    for i in 0..m {
        let orow = &mut data[i * n..(i + 1) * n];
        for l in 0..k {
            let a_il = a.get(i, l);
            if a_il == 0.0 {
                continue;
            }
            vec_ops::axpy(a_il, b.row(l), orow);
        }
    }
    out
}

fn dense_of(n: usize, m: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(n, m, |i, j| {
        let t = (i * 31 + j * 17 + seed as usize * 13) % 101;
        (t as f64 - 50.0) / 50.0
    })
}

fn bench_gemm(cfg: &Config, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 512, 1024] };
    for &n in sizes {
        let a = dense_of(n, n, cfg.seed);
        let b = dense_of(n, n, cfg.seed + 1);
        let flops = 2.0 * (n as f64).powi(3);
        let size = format!("{n}x{n}");
        let med = time_median(cfg.reps(), || {
            black_box(gemm_naive_ref(black_box(&a), black_box(&b)));
        });
        rows.push(row("gemm_naive", size.clone(), cfg, flops, med));
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).matmul(black_box(&b)));
        });
        rows.push(row("gemm_blocked", size, cfg, flops, med));
    }
}

fn bench_spmm(cfg: &Config, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[512] } else { &[512, 2048] };
    for &n in sizes {
        let g =
            graphalign_gen::configuration_model(&graphalign_gen::degrees::uniform(n, 10), cfg.seed);
        let a: CsrMatrix = g.adjacency();
        let x = dense_of(n, 64, cfg.seed + 2);
        let flops = 2.0 * a.nnz() as f64 * 64.0;
        let size = format!("{n}x{n}d10");
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&a).mul_dense(black_box(&x)));
        });
        rows.push(row("spmm", size.clone(), cfg, flops, med));

        // Right-multiplication by a CSR transpose, the IsoRank/GWL shape:
        // fused dense·CSRᵀ kernel vs the transpose-per-call formulation.
        let d = dense_of(n, n, cfg.seed + 3);
        let flops = 2.0 * a.nnz() as f64 * n as f64;
        let med = time_median(cfg.reps(), || {
            let naive = black_box(&a).transpose().mul_dense(&black_box(&d).transpose()).transpose();
            black_box(naive);
        });
        rows.push(row("spmm_right_naive", size.clone(), cfg, flops, med));
        let med = time_median(cfg.reps(), || {
            black_box(black_box(&d).mul_csr_tr(black_box(&a)));
        });
        rows.push(row("spmm_right_fused", size, cfg, flops, med));
    }
}

fn bench_sinkhorn(cfg: &Config, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 512] };
    const SWEEPS: usize = 50;
    for &n in sizes {
        let cost = DenseMatrix::from_fn(n, n, |i, j| ((i + j) % 17) as f64 / 17.0);
        let mu = uniform_marginal(n);
        // tol = 0 pins the work to exactly SWEEPS sweeps per run.
        let params = SinkhornParams { epsilon: 0.05, max_iter: SWEEPS, tol: 0.0 };
        // Three n-length matvecs of 2n² flops each per sweep.
        let flops = 6.0 * (n as f64).powi(2) * SWEEPS as f64;
        let med = time_median(cfg.reps(), || {
            black_box(sinkhorn(black_box(&cost), &mu, &mu, &params).unwrap());
        });
        rows.push(row("sinkhorn", format!("{n}x{n}i{SWEEPS}"), cfg, flops, med));
    }
}

fn bench_graphlets(cfg: &Config, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[2000] } else { &[2000, 10000] };
    for &n in sizes {
        let g = graphalign_gen::configuration_model(
            &graphalign_gen::degrees::uniform(n, 10),
            cfg.seed + 4,
        );
        let edges = g.edge_count() as f64;
        let med = time_median(cfg.reps(), || {
            black_box(graphalign_graph::graphlets::graphlet_degrees(black_box(&g)));
        });
        rows.push(row("graphlet_degrees", format!("n{n}d10"), cfg, edges, med));
    }
}

/// The IsoRank inner loop at fig11 scale, old shape vs new shape, on
/// identical inputs. The two variants must produce bit-identical similarity
/// matrices — verified on every run — so the timing difference is purely the
/// kernel work (hoisted transpose + fused SpMM + buffer reuse).
fn bench_isorank_loop(cfg: &Config, rows: &mut Vec<Row>) {
    let sizes: &[usize] = if cfg.quick { &[256] } else { &[256, 1024] };
    const ITERS: usize = 10;
    const ALPHA: f64 = 0.9;
    for &n in sizes {
        let g = graphalign_gen::configuration_model(
            &graphalign_gen::degrees::uniform(n, 10),
            cfg.seed + 5,
        );
        let pa: CsrMatrix = spectral::row_normalized_adjacency(&g).transpose();
        let pb: CsrMatrix = spectral::row_normalized_adjacency(&g);
        let e = DenseMatrix::filled(n, n, 1.0 / (n * n) as f64);
        let flops = 2.0 * 2.0 * pa.nnz() as f64 * n as f64 * ITERS as f64;
        let size = format!("n{n}i{ITERS}");

        let naive = |out: &mut DenseMatrix| {
            let mut r = e.clone();
            for _ in 0..ITERS {
                let left = pa.mul_dense(&r);
                let mut next = pb.transpose().mul_dense(&left.transpose()).transpose();
                next.scale_inplace(ALPHA);
                next.add_scaled(1.0 - ALPHA, &e);
                let total = next.sum();
                if total > 0.0 {
                    next.scale_inplace(1.0 / total);
                }
                r = next;
            }
            *out = r;
        };
        let fused = |out: &mut DenseMatrix| {
            let pbt = pb.transpose();
            let mut r = e.clone();
            let mut left = DenseMatrix::zeros(n, n);
            let mut next = DenseMatrix::zeros(n, n);
            for _ in 0..ITERS {
                pa.mul_dense_into(&r, &mut left);
                left.mul_csr_tr_into(&pbt, &mut next);
                next.scale_inplace(ALPHA);
                next.add_scaled(1.0 - ALPHA, &e);
                let total = next.sum();
                if total > 0.0 {
                    next.scale_inplace(1.0 / total);
                }
                std::mem::swap(&mut r, &mut next);
            }
            *out = r;
        };

        let mut r_naive = DenseMatrix::zeros(n, n);
        let mut r_fused = DenseMatrix::zeros(n, n);
        let med = time_median(cfg.reps(), || naive(black_box(&mut r_naive)));
        rows.push(row("isorank_loop_naive", size.clone(), cfg, flops, med));
        let med = time_median(cfg.reps(), || fused(black_box(&mut r_fused)));
        rows.push(row("isorank_loop_fused", size, cfg, flops, med));
        let (a, b) = (r_naive.as_slice(), r_fused.as_slice());
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "fused IsoRank loop diverged bitwise from the naive loop at n={n}"
        );
    }
}

fn run_all(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    println!(
        "kernel_bench: {} mode, {} thread(s)",
        if cfg.quick { "quick" } else { "full" },
        cfg.threads
    );
    bench_gemm(cfg, &mut rows);
    bench_spmm(cfg, &mut rows);
    bench_sinkhorn(cfg, &mut rows);
    bench_graphlets(cfg, &mut rows);
    bench_isorank_loop(cfg, &mut rows);
    rows
}

fn report_json(cfg: &Config, rows: &[Row]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("kernel_bench/v1".into())),
        ("threads".into(), Json::Num(cfg.threads as f64)),
        ("mode".into(), Json::Str(if cfg.quick { "quick" } else { "full" }.into())),
        ("rows".into(), Json::Arr(rows.iter().map(Row::to_json).collect())),
    ])
}

fn load_baseline(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("kernel_bench: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let parsed = graphalign_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("kernel_bench: baseline {path} is not valid JSON: {e:?}");
        std::process::exit(2);
    });
    let rows = parsed
        .get("rows")
        .and_then(Json::as_array)
        .map(|arr| arr.iter().filter_map(Row::from_json).collect::<Vec<_>>())
        .unwrap_or_default();
    if rows.is_empty() {
        eprintln!("kernel_bench: baseline {path} has no parseable rows");
        std::process::exit(2);
    }
    rows
}

fn median_of<'a>(rows: &'a [Row], kernel: &str, size: &str) -> Option<&'a Row> {
    rows.iter().find(|r| r.kernel == kernel && r.size == size)
}

/// Compares the naive/optimized speedup ratios of the current run against
/// the baseline's. Returns the number of regressions (> 10% ratio drop).
fn compare(baseline: &[Row], current: &[Row]) -> usize {
    let mut regressions = 0;
    let mut pairs_checked = 0;
    for &(naive, optimized) in &RATIO_PAIRS {
        for cur_opt in current.iter().filter(|r| r.kernel == optimized) {
            let Some(cur_naive) = median_of(current, naive, &cur_opt.size) else { continue };
            let Some(base_opt) = median_of(baseline, optimized, &cur_opt.size) else { continue };
            let Some(base_naive) = median_of(baseline, naive, &cur_opt.size) else { continue };
            if cur_opt.median_ns == 0 || base_opt.median_ns == 0 {
                continue;
            }
            let cur_ratio = cur_naive.median_ns as f64 / cur_opt.median_ns as f64;
            let base_ratio = base_naive.median_ns as f64 / base_opt.median_ns as f64;
            pairs_checked += 1;
            let ok = cur_ratio >= base_ratio * (1.0 - REGRESSION_SLACK);
            println!(
                "{} {optimized} [{}]: speedup {:.2}x vs baseline {:.2}x",
                if ok { "ok  " } else { "FAIL" },
                cur_opt.size,
                cur_ratio,
                base_ratio,
            );
            if !ok {
                regressions += 1;
            }
        }
    }
    if pairs_checked == 0 {
        eprintln!("kernel_bench: no comparable kernel/size pairs between run and baseline");
        std::process::exit(2);
    }
    regressions
}

fn main() {
    let cfg = Config::from_args();
    graphalign_par::set_max_threads(cfg.threads);
    let rows = run_all(&cfg);
    match &cfg.compare {
        Some(path) => {
            let baseline = load_baseline(path);
            let regressions = compare(&baseline, &rows);
            if regressions > 0 {
                eprintln!("kernel_bench: {regressions} speedup regression(s) > 10% vs {path}");
                std::process::exit(1);
            }
            println!("kernel_bench: no speedup regressions vs {path}");
        }
        None => {
            let report = report_json(&cfg, &rows);
            std::fs::write(&cfg.out, report.to_string_pretty()).unwrap_or_else(|e| {
                eprintln!("kernel_bench: cannot write {}: {e}", cfg.out);
                std::process::exit(2);
            });
            println!("kernel_bench: wrote {} rows to {}", rows.len(), cfg.out);
        }
    }
}
