//! Regenerates **Figure 12**: similarity-phase runtime vs average degree on
//! configuration-model graphs with 2¹⁴ nodes and uniform degree
//! distribution, Δ ∈ {10, 10², 10³, 10⁴} (paper §6.6).

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::banner;
use graphalign_bench::harness::run_instance_split;
use graphalign_bench::memprobe::{fmt_bytes, CellRssProbe};
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{secs, Table};
use graphalign_bench::Config;
use graphalign_graph::permutation::AlignmentInstance;

struct Row {
    algorithm: String,
    n: usize,
    avg_degree: usize,
    seconds: f64,
    rss_delta_bytes: Option<usize>,
    /// Representation the algorithm's similarity used (`"dense"`,
    /// `"lowrank"`, `"sparse"`); `None` when the cell never produced one.
    similarity_repr: Option<String>,
    /// Bytes the similarity payload occupies in that representation.
    similarity_bytes: Option<usize>,
    skipped: bool,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    algorithm,
    n,
    avg_degree,
    seconds,
    rss_delta_bytes,
    similarity_repr,
    similarity_bytes,
    skipped,
    error_class
});

fn grids(quick: bool) -> (usize, Vec<usize>) {
    if quick {
        (1 << 9, vec![10, 50, 100])
    } else {
        (1 << 14, vec![10, 100, 1000, 10_000])
    }
}

fn main() {
    let cfg = Config::from_args();
    let (n, degrees) = grids(cfg.quick);
    banner("Figure 12 (runtime vs average degree)", &cfg, &format!("configuration model, n = {n}"));
    let reps = cfg.reps(5);
    let mut t = Table::new(&["algorithm", "avg_degree", "time(similarity)", "rss"]);
    let mut rows = Vec::new();
    for &deg in &degrees {
        let seq = graphalign_gen::degrees::uniform(n, deg);
        let base = graphalign_gen::configuration_model(&seq, cfg.seed ^ deg as u64);
        for algo in Algo::ALL {
            if algo == Algo::Graal {
                continue;
            }
            if !algo.feasible(n, base.avg_degree(), cfg.quick) {
                t.row(&[algo.name().into(), deg.to_string(), "skip (>budget)".into(), "-".into()]);
                rows.push(Row {
                    algorithm: algo.name().into(),
                    n,
                    avg_degree: deg,
                    seconds: 0.0,
                    rss_delta_bytes: None,
                    similarity_repr: None,
                    similarity_bytes: None,
                    skipped: true,
                    error_class: Some("infeasible".into()),
                });
                continue;
            }
            // One budget per (algorithm, degree) cell for `--cell-timeout`.
            let _budget = graphalign_par::budget::install(
                cfg.cell_timeout.map(std::time::Duration::from_secs_f64),
            );
            let probe = CellRssProbe::begin();
            let mut total = 0.0;
            let mut failure = None;
            let mut sim_stats = None;
            for r in 0..reps {
                let inst = AlignmentInstance::permuted(base.clone(), cfg.seed + r as u64);
                match run_instance_split(algo, true, &inst, AssignmentMethod::NearestNeighbor) {
                    Ok((_, s, stats)) => {
                        total += s;
                        sim_stats = Some(stats);
                    }
                    Err(e) => {
                        eprintln!("warning: {} at deg={deg}: {e}", algo.name());
                        failure = Some(e);
                        break;
                    }
                }
            }
            let rss_delta_bytes = probe.delta_bytes();
            let rss_label = rss_delta_bytes.map_or_else(|| "-".into(), fmt_bytes);
            let similarity_repr = sim_stats.map(|s| s.repr.to_string());
            let similarity_bytes = sim_stats.map(|s| s.bytes);
            match failure {
                None => {
                    let avg = total / reps as f64;
                    t.row(&[algo.name().into(), deg.to_string(), secs(avg), rss_label]);
                    rows.push(Row {
                        algorithm: algo.name().into(),
                        n,
                        avg_degree: deg,
                        seconds: avg,
                        rss_delta_bytes,
                        similarity_repr,
                        similarity_bytes,
                        skipped: false,
                        error_class: None,
                    });
                }
                Some(e) => {
                    t.row(&[algo.name().into(), deg.to_string(), e.class.to_string(), rss_label]);
                    rows.push(Row {
                        algorithm: algo.name().into(),
                        n,
                        avg_degree: deg,
                        seconds: 0.0,
                        rss_delta_bytes,
                        similarity_repr,
                        similarity_bytes,
                        skipped: false,
                        error_class: Some(e.class.as_str().into()),
                    });
                }
            }
        }
    }
    t.print();
    cfg.write_json(&rows);
}
