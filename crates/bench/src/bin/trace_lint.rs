//! Validates a `--trace <path>` JSONL sidecar: every line must parse as a
//! [`TraceRecord`] with a known stop reason, finite residuals (NaN residuals
//! are exactly the silent-non-convergence bug class the telemetry layer
//! exists to surface), and a stop reason consistent with its convergence
//! flag. The CI smoke job runs this over the traces of both feature
//! configurations.
//!
//! ```sh
//! trace_lint results/sweep.trace.jsonl
//! ```
//!
//! Exit code 0 when the file is clean, 1 on any violation, 2 on usage/IO
//! errors. An empty trace (no solver ran, or trace mode off) is clean.

use graphalign_bench::telemetry::TraceRecord;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_lint <trace.jsonl>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut records = 0usize;
    let mut violations = 0usize;
    let mut complain = |line_no: usize, msg: String| {
        violations += 1;
        eprintln!("{path}:{line_no}: {msg}");
    };
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = match graphalign_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                complain(line_no, format!("bad JSON: {e}"));
                continue;
            }
        };
        // `TraceRecord::from_json` rejects unknown stop reasons, so an
        // out-of-taxonomy `stop` surfaces here as a schema violation.
        let Some(record) = TraceRecord::from_json(&value) else {
            complain(line_no, "record does not match the trace schema".into());
            continue;
        };
        records += 1;
        if !record.residual.is_finite() {
            complain(line_no, format!("non-finite final residual {}", record.residual));
        }
        if let Some(bad) = record.residuals.iter().find(|r| !r.is_finite()) {
            complain(line_no, format!("non-finite residual {bad} in series"));
        }
        if record.stop == "tolerance" && !record.converged {
            complain(line_no, "stop reason \"tolerance\" with converged=false".into());
        }
        if record.stop == "interrupted" && record.converged {
            complain(line_no, "stop reason \"interrupted\" with converged=true".into());
        }
        if record.residuals.len() > record.iterations {
            complain(
                line_no,
                format!(
                    "series has {} residuals but only {} iterations",
                    record.residuals.len(),
                    record.iterations
                ),
            );
        }
    }
    println!("{path}: {records} trace records, {violations} violations");
    std::process::exit(if violations > 0 { 1 } else { 0 });
}
