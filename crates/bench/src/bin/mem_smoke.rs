//! CI memory smoke: one embedding-method cell at Figure-13 scale must run
//! entirely on the factored similarity.
//!
//! Runs REGAL (a `Similarity::LowRank` emitter) on a configuration-model
//! instance at the Figure-13 quick-grid ceiling and executes the NN and SG
//! assignments through the production [`Aligner::align_with`] path. The
//! process exits non-zero if the densification telemetry shows *any*
//! `Similarity::to_dense` call — i.e. if a dense `n × n` matrix was ever
//! materialized where the factored fast paths should have run.
//!
//! Flags: the shared set (`--quick`/`--full` pick `n = 2¹²` vs `n = 2¹⁴`,
//! `--seed`, `--threads`).

use graphalign::regal::Regal;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::banner;
use graphalign_bench::memprobe::{fmt_bytes, CellRssProbe};
use graphalign_bench::{xl, Config};
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_linalg::Similarity;
use graphalign_par::telemetry;

/// The `--scale xl` gate: every XL roster member must run its similarity
/// phase end-to-end on a streamed instance with **zero** densifications and
/// a per-cell peak-RSS delta within the tier's enforced `O(n·d)` budget
/// ([`xl::budget_bytes`]). Either violation exits non-zero — this is the
/// machine check behind the tier's "never densify" claim.
fn run_xl(cfg: &Config) {
    banner(
        "Memory smoke XL (enforced O(n·d) budget)",
        cfg,
        "streamed instances, full XL roster, zero-densification + RSS gate",
    );
    let n = if cfg.quick { 1 << 15 } else { 1 << 20 };
    let budget = xl::budget_bytes(n);
    let slice = if cfg.quick { xl::XL_EVAL_SLICE_QUICK } else { xl::XL_EVAL_SLICE };
    let dir = xl::stream_dir();
    std::fs::create_dir_all(&dir).expect("create stream dir");
    let inst = xl::instance(&dir, n, cfg.seed).expect("streamed XL instance");
    println!(
        "n={n}, budget {} (a dense n×n would be {})",
        fmt_bytes(budget),
        fmt_bytes(Similarity::dense_bytes(n, n)),
    );
    let mut failed = false;
    for algo in xl::XlAlgo::ALL {
        let m = xl::run_cell(
            algo,
            &inst,
            slice,
            cfg.cell_timeout.map(std::time::Duration::from_secs_f64),
        );
        let rss = m.rss_delta_bytes;
        println!(
            "{} + NN[0..{slice}]: seconds={} acc@slice={} densifications={} rss_delta={}",
            algo.name(),
            m.cell.seconds.map_or_else(|| "-".into(), |s| format!("{s:.2}")),
            m.cell.accuracy.map_or_else(|| "-".into(), |a| format!("{a:.4}")),
            m.densifications,
            rss.map_or_else(|| "unreadable".into(), fmt_bytes),
        );
        if let Some(e) = &m.cell.error {
            eprintln!("FAIL: {} did not complete: {e}", algo.name());
            failed = true;
            continue;
        }
        if m.densifications != 0 {
            eprintln!(
                "FAIL: {} materialized a dense matrix {} time(s) — the XL tier must stay factored",
                algo.name(),
                m.densifications
            );
            failed = true;
        }
        // The RSS gate: `None` (no /proc) degrades to the densification-only
        // check rather than passing vacuously *and* silently.
        match rss {
            Some(delta) if delta > budget => {
                eprintln!(
                    "FAIL: {} peak-RSS delta {} exceeds the O(n·d) budget {}",
                    algo.name(),
                    fmt_bytes(delta),
                    fmt_bytes(budget)
                );
                failed = true;
            }
            Some(_) => {}
            None => eprintln!(
                "note: /proc unavailable — RSS gate for {} degraded to the \
                 densification check",
                algo.name()
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("ok: XL roster stayed factored and within the O(n·d) peak-RSS budget");
}

fn main() {
    let cfg = Config::from_args();
    if cfg.xl {
        run_xl(&cfg);
        return;
    }
    banner("Memory smoke (factored assignment)", &cfg, "REGAL at the fig13 grid scale");
    let n = if cfg.quick { 1 << 12 } else { 1 << 14 };
    let dense_footprint = Similarity::dense_bytes(n, n);
    let seq = graphalign_gen::degrees::normal(n, 10.0, 2.5, cfg.seed);
    let base = graphalign_gen::configuration_model(&seq, cfg.seed ^ n as u64);
    let inst = AlignmentInstance::permuted(base, cfg.seed);

    let probe = CellRssProbe::begin();
    let mut failed = false;
    for method in [AssignmentMethod::NearestNeighbor, AssignmentMethod::SortGreedy] {
        let _ = telemetry::drain(); // isolate this cell's counters
        let matching = Regal::default()
            .align_with(&inst.source, &inst.target, method)
            .expect("REGAL runs at smoke scale");
        assert_eq!(matching.len(), n, "matching must cover every source node");
        let t = telemetry::drain();
        println!(
            "REGAL + {}: densifications={} densified_bytes={}",
            method.label(),
            t.densifications,
            fmt_bytes(t.densified_bytes as usize),
        );
        if t.densifications != 0 {
            eprintln!(
                "FAIL: REGAL + {} materialized a dense matrix ({} — the factored \
                 path must stay under the {} a dense n×n would cost)",
                method.label(),
                fmt_bytes(t.densified_bytes as usize),
                fmt_bytes(dense_footprint),
            );
            failed = true;
        }
    }
    let factored_delta = probe.delta_bytes();
    if let Some(delta) = factored_delta {
        println!(
            "peak RSS growth across the factored cell: {} (a dense n×n similarity \
             alone would be {})",
            fmt_bytes(delta),
            fmt_bytes(dense_footprint),
        );
    }

    // Reference pass: what every cell paid before the pipeline went
    // factored — materialize the dense n×n similarity and assign on it.
    let probe = CellRssProbe::begin();
    let sim =
        Regal::default().similarity(&inst.source, &inst.target).expect("REGAL runs at smoke scale");
    let payload = sim.approx_bytes();
    let dense = Similarity::Dense(sim.into_dense());
    let matching = graphalign_assignment::assign(&dense, AssignmentMethod::NearestNeighbor);
    assert_eq!(matching.len(), n);
    if let Some(before) = probe.delta_bytes() {
        println!("dense-reference pass peak RSS growth: {}", fmt_bytes(before));
    }
    // RSS deltas within one process are allocator-order biased (the first
    // pass pays all cold arena growth), so the exact payload accounting is
    // the comparison that matters:
    println!(
        "n={n}: similarity payload {} factored vs {} densified",
        fmt_bytes(payload),
        fmt_bytes(dense.approx_bytes()),
    );

    if failed {
        std::process::exit(1);
    }
    println!("ok: no densifications on the embedding-method NN/SG paths");
}
