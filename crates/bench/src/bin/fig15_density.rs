//! Regenerates **Figure 15**: accuracy under 1 % one-way noise on
//! Newman–Watts graphs with 2000 nodes, sweeping (a) the rewiring
//! probability `p` at fixed `k` and (b) the neighbor count `k` at fixed
//! `p = 0.5` — the paper's density study (§6.7).

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::banner;
use graphalign_bench::harness::run_cell;
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{pct, Table};
use graphalign_bench::Config;
use graphalign_noise::{NoiseConfig, NoiseModel};

struct Row {
    sweep: String,
    p: f64,
    k: usize,
    algorithm: String,
    accuracy: Option<f64>,
    wall_clock: f64,
    threads: usize,
    skipped: bool,
    reps_ok: usize,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    sweep,
    p,
    k,
    algorithm,
    accuracy,
    wall_clock,
    threads,
    skipped,
    reps_ok,
    error_class
});

fn main() {
    let cfg = Config::from_args();
    let n = if cfg.quick { 300 } else { 2000 };
    banner("Figure 15 (density)", &cfg, &format!("Newman-Watts, n = {n}, 1% one-way noise"));
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.01);
    let policy = cfg.policy(5);
    let mut t = Table::new(&["sweep", "p", "k", "algorithm", "accuracy"]);
    let mut rows = Vec::new();
    // (a) Sweep the rewiring probability at fixed k.
    let ps: Vec<f64> =
        if cfg.quick { vec![0.2, 0.5, 0.8] } else { vec![0.2, 0.35, 0.5, 0.65, 0.8] };
    let k_fixed = 14;
    for &p in &ps {
        let base = graphalign_gen::newman_watts(n, k_fixed, p, cfg.seed ^ (p * 100.0) as u64);
        for algo in Algo::ALL {
            let cell =
                run_cell(algo, &base, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
            t.row(&[
                "vary p".into(),
                format!("{p:.2}"),
                k_fixed.to_string(),
                cell.algorithm.clone(),
                match cell.accuracy {
                    Some(a) if !cell.skipped => pct(a),
                    _ => "-".into(),
                },
            ]);
            rows.push(Row {
                sweep: "vary_p".into(),
                p,
                k: k_fixed,
                algorithm: cell.algorithm,
                accuracy: cell.accuracy,
                wall_clock: cell.wall_clock,
                threads: cell.threads,
                skipped: cell.skipped,
                reps_ok: cell.reps_ok,
                error_class: cell.error_class,
            });
        }
    }
    // (b) Sweep the neighbor count at fixed p = 0.5.
    let ks: Vec<usize> =
        if cfg.quick { vec![10, 50, 100] } else { vec![10, 50, 100, 200, 400, 600] };
    for &k in &ks {
        if k >= n {
            continue;
        }
        let base = graphalign_gen::newman_watts(n, k, 0.5, cfg.seed ^ k as u64);
        for algo in Algo::ALL {
            let cell =
                run_cell(algo, &base, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
            t.row(&[
                "vary k".into(),
                "0.50".into(),
                k.to_string(),
                cell.algorithm.clone(),
                match cell.accuracy {
                    Some(a) if !cell.skipped => pct(a),
                    _ => "-".into(),
                },
            ]);
            rows.push(Row {
                sweep: "vary_k".into(),
                p: 0.5,
                k,
                algorithm: cell.algorithm,
                accuracy: cell.accuracy,
                wall_clock: cell.wall_clock,
                threads: cell.threads,
                skipped: cell.skipped,
                reps_ok: cell.reps_ok,
                error_class: cell.error_class,
            });
        }
    }
    t.print();
    for (sweep, x_of) in [
        ("vary_p", Box::new(|r: &Row| r.p) as Box<dyn Fn(&Row) -> f64>),
        ("vary_k", Box::new(|r: &Row| r.k as f64)),
    ] {
        let chart_rows: Vec<(String, f64, f64)> = rows
            .iter()
            .filter(|r| r.sweep == sweep && !r.skipped && r.reps_ok > 0)
            .map(|r| (r.algorithm.clone(), x_of(r), r.accuracy.unwrap_or(0.0)))
            .collect();
        if chart_rows.is_empty() {
            continue;
        }
        let series = graphalign_bench::plot::series_from_rows(&chart_rows);
        println!();
        print!(
            "{}",
            graphalign_bench::plot::line_chart(
                &format!("accuracy — {sweep} (1% one-way noise)"),
                &series,
                60,
                12,
            )
        );
    }
    cfg.write_json(&rows);
}
