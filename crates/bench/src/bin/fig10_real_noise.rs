//! Regenerates **Figure 10**: Accuracy, MNC and S³ on the three evolving
//! datasets with *real* noise — HighSchool and Voles temporal variants at
//! 80/85/90/99 % edge retention, and the five MultiMagna variants
//! (paper §6.5).

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::banner;
use graphalign_bench::harness::run_instance;
use graphalign_bench::suite::Algo;
use graphalign_bench::table::{pct, secs, Table};
use graphalign_bench::Config;
use graphalign_datasets::evolving::{self, EvolvingDataset};
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_graph::Permutation;
use std::time::Instant;

struct Row {
    dataset: String,
    variant: String,
    algorithm: String,
    accuracy: f64,
    mnc: f64,
    s3: f64,
    seconds: f64,
    skipped: bool,
    error_class: Option<String>,
}

graphalign_json::impl_to_json!(Row {
    dataset,
    variant,
    algorithm,
    accuracy,
    mnc,
    s3,
    seconds,
    skipped,
    error_class,
});

fn datasets(cfg: &Config) -> Vec<EvolvingDataset> {
    if cfg.quick {
        // Scaled-down stand-ins under the identical §6.5 protocol.
        vec![
            evolving::temporal(
                "HighSchool~",
                graphalign_gen::watts_strogatz(160, 18, 0.5, cfg.seed),
                cfg.seed ^ 0xa,
            ),
            evolving::temporal(
                "Voles~",
                graphalign_gen::watts_strogatz(200, 6, 0.5, cfg.seed ^ 1),
                cfg.seed ^ 0xb,
            ),
            evolving::multi_magna_protocol(
                graphalign_gen::powerlaw_cluster(250, 8, 0.5, cfg.seed ^ 2),
                cfg.seed ^ 0xc,
            ),
        ]
    } else {
        evolving::all()
    }
}

fn main() {
    let cfg = Config::from_args();
    banner("Figure 10 (real-noise evolving graphs)", &cfg, "HighSchool / Voles / MultiMagna");
    let mut t = Table::new(&["dataset", "variant", "algorithm", "accuracy", "MNC", "S3", "time"]);
    let mut rows = Vec::new();
    for ds in datasets(&cfg) {
        for variant in &ds.variants {
            // Align the *base* (latest) graph to each variant; the harness
            // permutes the variant so ids carry no information.
            let perm = Permutation::random(variant.graph.node_count(), cfg.seed ^ 0x515);
            let instance = AlignmentInstance {
                source: ds.base.clone(),
                target: perm.apply_to_graph(&variant.graph),
                ground_truth: perm.as_slice().to_vec(),
            };
            for algo in Algo::ALL {
                let n = instance.source.node_count();
                let feasible = algo.feasible(n, instance.source.avg_degree(), cfg.quick);
                if !feasible {
                    t.row(&[
                        ds.name.into(),
                        variant.label.clone(),
                        algo.name().into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "skip".into(),
                    ]);
                    rows.push(Row {
                        dataset: ds.name.into(),
                        variant: variant.label.clone(),
                        algorithm: algo.name().into(),
                        accuracy: 0.0,
                        mnc: 0.0,
                        s3: 0.0,
                        seconds: 0.0,
                        skipped: true,
                        error_class: Some("infeasible".into()),
                    });
                    continue;
                }
                // One budget per cell, so `--cell-timeout` bounds each
                // dataset/variant/algorithm combination independently.
                let _budget = graphalign_par::budget::install(
                    cfg.cell_timeout.map(std::time::Duration::from_secs_f64),
                );
                let start = Instant::now();
                let result = run_instance(algo, true, &instance, AssignmentMethod::JonkerVolgenant);
                let elapsed = start.elapsed().as_secs_f64();
                match result {
                    Ok((report, _)) => {
                        t.row(&[
                            ds.name.into(),
                            variant.label.clone(),
                            algo.name().into(),
                            pct(report.accuracy),
                            pct(report.mnc),
                            pct(report.s3),
                            secs(elapsed),
                        ]);
                        rows.push(Row {
                            dataset: ds.name.into(),
                            variant: variant.label.clone(),
                            algorithm: algo.name().into(),
                            accuracy: report.accuracy,
                            mnc: report.mnc,
                            s3: report.s3,
                            seconds: elapsed,
                            skipped: false,
                            error_class: None,
                        });
                    }
                    Err(e) => {
                        eprintln!("warning: {} on {}/{}: {e}", algo.name(), ds.name, variant.label);
                        t.row(&[
                            ds.name.into(),
                            variant.label.clone(),
                            algo.name().into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            e.class.to_string(),
                        ]);
                        rows.push(Row {
                            dataset: ds.name.into(),
                            variant: variant.label.clone(),
                            algorithm: algo.name().into(),
                            accuracy: 0.0,
                            mnc: 0.0,
                            s3: 0.0,
                            seconds: elapsed,
                            skipped: false,
                            error_class: Some(e.class.as_str().into()),
                        });
                    }
                }
            }
        }
    }
    t.print();
    cfg.write_json(&rows);
}
