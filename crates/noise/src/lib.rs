//! Edge-perturbation noise models for graph-alignment benchmarks.
//!
//! The paper (§5.1.1) evaluates every algorithm under three noise regimes
//! applied to a permuted copy of the source graph:
//!
//! * [`NoiseModel::OneWay`] — remove a fraction of edges from the target;
//! * [`NoiseModel::MultiModal`] — remove a fraction of edges from the target
//!   and add the *same number* of random non-edges;
//! * [`NoiseModel::TwoWay`] — remove a fraction of edges from both source
//!   and target (independently).
//!
//! [`make_instance`] packages the full §5.1 protocol: permute the node ids of
//! the copy, perturb per the chosen model, keep the ground-truth permutation.
//! Optionally ([`NoiseConfig::keep_connected`]) edge removals that would
//! disconnect the graph are rejected and retried, as in the paper's
//! assignment-method experiment (§6.2: "removing edges with uniform
//! probability ... while keeping the graph connected").

use graphalign_graph::permutation::AlignmentInstance;
use graphalign_graph::traversal::is_connected;
use graphalign_graph::{Graph, GraphBuilder, Permutation};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The three noise regimes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseModel {
    /// Remove edges from the target graph only.
    OneWay,
    /// Remove edges from the target and add the same number of new edges.
    MultiModal,
    /// Remove edges from both source and target, independently.
    TwoWay,
}

impl NoiseModel {
    /// All three models, in the order the paper's figures present them.
    pub const ALL: [NoiseModel; 3] =
        [NoiseModel::OneWay, NoiseModel::MultiModal, NoiseModel::TwoWay];

    /// Short label used in harness output ("One-Way", "Multi-Modal",
    /// "Two-Way").
    pub fn label(&self) -> &'static str {
        match self {
            NoiseModel::OneWay => "One-Way",
            NoiseModel::MultiModal => "Multi-Modal",
            NoiseModel::TwoWay => "Two-Way",
        }
    }
}

/// Configuration of a noisy benchmark instance.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Which perturbation regime to apply.
    pub model: NoiseModel,
    /// Fraction of edges to perturb, in `[0, 1]`.
    pub level: f64,
    /// Reject removals that would disconnect the graph (best effort: if a
    /// removal budget cannot be met after `10 × m` attempts, fewer edges are
    /// removed).
    pub keep_connected: bool,
}

impl NoiseConfig {
    /// Convenience constructor with `keep_connected = false` (the default
    /// protocol of §5.1).
    pub fn new(model: NoiseModel, level: f64) -> Self {
        Self { model, level, keep_connected: false }
    }
}

/// Removes `⌊level · m⌋` uniformly random edges from `g`.
///
/// With `keep_connected`, candidate removals that disconnect the graph are
/// skipped; if the budget cannot be met the function removes as many edges
/// as it can (the paper's protocol for its §6.2 experiment).
pub fn remove_edges(g: &Graph, level: f64, keep_connected: bool, rng: &mut StdRng) -> Graph {
    assert!((0.0..=1.0).contains(&level), "noise level {level} outside [0, 1]");
    let m = g.edge_count();
    let budget = (level * m as f64).floor() as usize;
    if budget == 0 {
        return g.clone();
    }
    let mut builder = GraphBuilder::from_graph(g);
    let mut edges: Vec<(usize, usize)> = builder.edge_vec();
    edges.shuffle(rng);
    let mut removed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = 10 * m;
    let mut idx = 0usize;
    while removed < budget && attempts < max_attempts && !edges.is_empty() {
        if idx >= edges.len() {
            // Re-shuffle the survivors and sweep again (only reachable in
            // keep_connected mode, where some removals were rejected).
            edges = builder.edge_vec();
            edges.shuffle(rng);
            idx = 0;
            if edges.is_empty() {
                break;
            }
        }
        let (u, v) = edges[idx];
        idx += 1;
        attempts += 1;
        if !builder.has_edge(u, v) {
            continue;
        }
        builder.remove_edge(u, v);
        if keep_connected {
            let candidate = builder.build();
            if !is_connected(&candidate) {
                builder.add_edge(u, v);
                continue;
            }
        }
        removed += 1;
    }
    builder.build()
}

/// Adds `count` uniformly random non-edges to `g` (no self-loops, no
/// duplicates). If the graph is too dense to accommodate `count` new edges,
/// as many as possible are added.
pub fn add_edges(g: &Graph, count: usize, rng: &mut StdRng) -> Graph {
    let n = g.node_count();
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let mut builder = GraphBuilder::from_graph(g);
    let target = (builder.edge_count() + count).min(max_edges);
    let mut attempts = 0usize;
    let max_attempts = 100 * count.max(1) + 1000;
    while builder.edge_count() < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Applies the configured noise to a `(source, target)` pair, returning the
/// perturbed pair. The ground truth mapping is unaffected: noise changes
/// edges, never node identities.
pub fn perturb_pair(
    source: &Graph,
    target: &Graph,
    config: &NoiseConfig,
    rng: &mut StdRng,
) -> (Graph, Graph) {
    match config.model {
        NoiseModel::OneWay => {
            let t = remove_edges(target, config.level, config.keep_connected, rng);
            (source.clone(), t)
        }
        NoiseModel::MultiModal => {
            let t = remove_edges(target, config.level, config.keep_connected, rng);
            let removed = target.edge_count() - t.edge_count();
            let t = add_edges(&t, removed, rng);
            (source.clone(), t)
        }
        NoiseModel::TwoWay => {
            let s = remove_edges(source, config.level, config.keep_connected, rng);
            let t = remove_edges(target, config.level, config.keep_connected, rng);
            (s, t)
        }
    }
}

/// The full §5.1 benchmark protocol: permute the node ids of a copy of
/// `source` (ground truth = the permutation), then perturb with `config`.
///
/// `seed` drives both the permutation and the noise, so instances are fully
/// reproducible.
pub fn make_instance(source: &Graph, config: &NoiseConfig, seed: u64) -> AlignmentInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let perm = Permutation::random(source.node_count(), rng.random());
    let permuted = perm.apply_to_graph(source);
    let (src, tgt) = perturb_pair(source, &permuted, config, &mut rng);
    AlignmentInstance { source: src, target: tgt, ground_truth: perm.as_slice().to_vec() }
}

/// Builds a *subgraph alignment* instance: the source is the induced
/// subgraph on a random `keep_fraction` of the nodes, the target is a
/// permuted copy of the full graph. This is the "align a partial crawl
/// against the full network" scenario (source strictly smaller than target
/// — the one-to-one solvers embed the source into the target).
///
/// `ground_truth[u]` gives, for each retained source node `u`, its node id
/// in the permuted target.
///
/// # Panics
/// Panics if `keep_fraction` is outside `(0, 1]` or keeps fewer than one
/// node.
pub fn make_subgraph_instance(graph: &Graph, keep_fraction: f64, seed: u64) -> AlignmentInstance {
    assert!(
        keep_fraction > 0.0 && keep_fraction <= 1.0,
        "keep_fraction {keep_fraction} outside (0, 1]"
    );
    let n = graph.node_count();
    let keep = ((keep_fraction * n as f64).round() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.shuffle(&mut rng);
    let mut kept: Vec<usize> = nodes.into_iter().take(keep).collect();
    kept.sort_unstable();
    // Induced subgraph with local renumbering.
    let mut local = vec![usize::MAX; n];
    for (li, &v) in kept.iter().enumerate() {
        local[v] = li;
    }
    let sub_edges: Vec<(usize, usize)> = graph
        .edges()
        .filter_map(|(u, v)| {
            let (lu, lv) = (local[u], local[v]);
            if lu != usize::MAX && lv != usize::MAX {
                Some((lu, lv))
            } else {
                None
            }
        })
        .collect();
    let source = Graph::from_edges(keep, &sub_edges);
    let perm = Permutation::random(n, rng.random());
    let target = perm.apply_to_graph(graph);
    let ground_truth: Vec<usize> = kept.iter().map(|&v| perm.apply(v)).collect();
    AlignmentInstance { source, target, ground_truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn remove_edges_removes_exact_budget() {
        let g = cycle(100);
        let h = remove_edges(&g, 0.1, false, &mut rng(1));
        assert_eq!(h.edge_count(), 90);
        assert_eq!(h.node_count(), 100);
    }

    #[test]
    fn remove_zero_level_is_identity() {
        let g = cycle(10);
        assert_eq!(remove_edges(&g, 0.0, false, &mut rng(2)), g);
    }

    #[test]
    fn removed_edges_are_a_subset() {
        let g = cycle(50);
        let h = remove_edges(&g, 0.2, false, &mut rng(3));
        for (u, v) in h.edges() {
            assert!(g.has_edge(u, v), "noise must not invent edges on removal");
        }
    }

    #[test]
    fn keep_connected_preserves_connectivity() {
        // A path is maximally fragile: any removal disconnects it, so the
        // keep_connected removal must remove nothing.
        let path = Graph::from_edges(20, &(0..19).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let h = remove_edges(&path, 0.3, true, &mut rng(4));
        assert!(is_connected(&h));
        assert_eq!(h.edge_count(), path.edge_count());
        // A denser graph can lose edges while staying connected.
        let g = cycle(30);
        let h = remove_edges(&g, 0.1, true, &mut rng(5));
        assert!(is_connected(&h));
        assert!(h.edge_count() < g.edge_count());
    }

    #[test]
    fn add_edges_adds_exact_count() {
        let g = cycle(30);
        let h = add_edges(&g, 5, &mut rng(6));
        assert_eq!(h.edge_count(), 35);
        for (u, v) in g.edges() {
            assert!(h.has_edge(u, v), "additions must not remove edges");
        }
    }

    #[test]
    fn add_edges_respects_density_cap() {
        // K4 is complete: nothing can be added.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let h = add_edges(&k4, 10, &mut rng(7));
        assert_eq!(h.edge_count(), 6);
    }

    #[test]
    fn multimodal_preserves_edge_count() {
        let g = cycle(100);
        let cfg = NoiseConfig::new(NoiseModel::MultiModal, 0.05);
        let (_, t) = perturb_pair(&g, &g, &cfg, &mut rng(8));
        assert_eq!(t.edge_count(), g.edge_count());
        // But the edge set differs.
        let same = t.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        assert!(same < g.edge_count());
    }

    #[test]
    fn one_way_leaves_source_untouched() {
        let g = cycle(40);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.1);
        let (s, t) = perturb_pair(&g, &g, &cfg, &mut rng(9));
        assert_eq!(s, g);
        assert!(t.edge_count() < g.edge_count());
    }

    #[test]
    fn two_way_perturbs_both_sides() {
        let g = cycle(100);
        let cfg = NoiseConfig::new(NoiseModel::TwoWay, 0.1);
        let (s, t) = perturb_pair(&g, &g, &cfg, &mut rng(10));
        assert_eq!(s.edge_count(), 90);
        assert_eq!(t.edge_count(), 90);
        assert_ne!(s, t, "independent removals should differ");
    }

    #[test]
    fn make_instance_is_reproducible() {
        let g = cycle(60);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.05);
        let a = make_instance(&g, &cfg, 123);
        let b = make_instance(&g, &cfg, 123);
        assert_eq!(a.target, b.target);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = make_instance(&g, &cfg, 124);
        assert_ne!(a.ground_truth, c.ground_truth);
    }

    #[test]
    fn make_instance_ground_truth_maps_surviving_edges() {
        let g = cycle(50);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.1);
        let inst = make_instance(&g, &cfg, 7);
        // Every target edge corresponds, through the inverse ground truth,
        // to a source edge (one-way noise only deletes).
        let inv = {
            let mut inv = vec![0usize; inst.ground_truth.len()];
            for (u, &v) in inst.ground_truth.iter().enumerate() {
                inv[v] = u;
            }
            inv
        };
        for (x, y) in inst.target.edges() {
            assert!(inst.source.has_edge(inv[x], inv[y]));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_level_panics() {
        remove_edges(&cycle(5), 1.5, false, &mut rng(0));
    }

    #[test]
    fn subgraph_instance_has_consistent_truth() {
        let g = cycle(60);
        let inst = make_subgraph_instance(&g, 0.6, 3);
        assert_eq!(inst.source.node_count(), 36);
        assert_eq!(inst.target.node_count(), 60);
        assert_eq!(inst.ground_truth.len(), 36);
        // Every source edge maps, through the truth, to a target edge
        // (the subgraph is induced, so no edges are invented).
        for (u, v) in inst.source.edges() {
            assert!(inst.target.has_edge(inst.ground_truth[u], inst.ground_truth[v]));
        }
        // The truth is injective.
        let mut seen = std::collections::HashSet::new();
        for &t in &inst.ground_truth {
            assert!(seen.insert(t));
        }
    }

    #[test]
    fn subgraph_instance_full_fraction_is_a_permuted_copy() {
        let g = cycle(12);
        let inst = make_subgraph_instance(&g, 1.0, 9);
        assert_eq!(inst.source.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn subgraph_rejects_zero_fraction() {
        make_subgraph_instance(&cycle(5), 0.0, 0);
    }
}
