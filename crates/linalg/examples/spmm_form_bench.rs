//! Spot-timer for the two bit-identical right-SpMM formulations used by the
//! IsoRank loop: scatter over the CSR rows (`mul_csr`) vs gather over a
//! hoisted transpose (`mul_csr_tr`). Prints per-call medians across sizes so
//! the production cutoff can be picked from measurements, not guesses.

use graphalign_linalg::{CsrMatrix, DenseMatrix};
use std::hint::black_box;
use std::time::Instant;

fn median_ns<F: FnMut()>(mut f: F) -> u64 {
    f();
    let t0 = Instant::now();
    f();
    let warm = (t0.elapsed().as_nanos() as u64).max(1);
    let reps = ((200_000_000 / warm) as usize).clamp(3, 25);
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    for n in [64usize, 128, 256, 320, 384, 448, 512, 1024, 2048] {
        // Synthetic degree-10 sparse matrix (xorshift column picks), the
        // IsoRank operand shape without pulling in the generator crates.
        let mut state = 0x9e3779b97f4a7c15u64 ^ n as u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut triplets = Vec::with_capacity(n * 10);
        for i in 0..n {
            for _ in 0..10 {
                triplets.push((i, (rand() % n as u64) as usize, 0.1));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let at = a.transpose();
        let d = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 101) as f64 / 50.0 - 1.0);
        let mut out = DenseMatrix::zeros(n, n);

        let scatter = median_ns(|| black_box(&d).mul_csr_into(black_box(&a), &mut out));
        let gather = median_ns(|| black_box(&d).mul_csr_tr_into(black_box(&at), &mut out));
        // The hoisted-transpose/axpy form: out = (Aᵀ · Dᵀ)ᵀ with the CSR
        // transpose hoisted, paying two dense transposes per call but using
        // the row-axpy CSR·dense kernel.
        let mut dt = DenseMatrix::zeros(n, n);
        let mut out_t = DenseMatrix::zeros(n, n);
        let hoist = median_ns(|| {
            black_box(&d).transpose_into(&mut dt);
            at.mul_dense_into(&dt, &mut out_t);
            out_t.transpose_into(&mut out);
        });
        println!(
            "n={n:>5}  scatter {scatter:>12}   gather {gather:>12}   hoist+axpy {hoist:>12}   \
             best={}",
            if hoist <= gather && hoist <= scatter {
                "hoist"
            } else if gather <= scatter {
                "gather"
            } else {
                "scatter"
            }
        );
    }
    black_box(&());
}
