//! Microkernel spot-timer: times 4-row GEMM tile variants over hot and
//! streaming panels, printing GFLOP/s per variant. Measurement aid for
//! tuning the register-tiled kernels; not part of any benchmark baseline.

use graphalign_linalg::simd;
use std::hint::black_box;
use std::time::Instant;

/// The pre-SIMD unroll-by-2 microkernel, kept here as the comparison
/// reference for tuning runs.
fn old_tile4(a: [&[f64]; 4], panel: &[f64], nc: usize, rows: &mut [Vec<f64>]) {
    let kc = a[0].len();
    let (q0, rest) = rows.split_at_mut(1);
    let (q1, rest) = rest.split_at_mut(1);
    let (q2, q3) = rest.split_at_mut(1);
    let o0 = &mut q0[0][..nc];
    let o1 = &mut q1[0][..nc];
    let o2 = &mut q2[0][..nc];
    let o3 = &mut q3[0][..nc];
    let mut l = 0;
    while l + 2 <= kc {
        let (b0, b1) = panel[l * nc..(l + 2) * nc].split_at(nc);
        let (a00, a01) = (a[0][l], a[0][l + 1]);
        let (a10, a11) = (a[1][l], a[1][l + 1]);
        let (a20, a21) = (a[2][l], a[2][l + 1]);
        let (a30, a31) = (a[3][l], a[3][l + 1]);
        for j in 0..nc {
            let (x0, x1) = (b0[j], b1[j]);
            o0[j] = o0[j] + a00 * x0 + a01 * x1;
            o1[j] = o1[j] + a10 * x0 + a11 * x1;
            o2[j] = o2[j] + a20 * x0 + a21 * x1;
            o3[j] = o3[j] + a30 * x0 + a31 * x1;
        }
        l += 2;
    }
}

fn main() {
    let kc = 256usize;
    let nc = 128usize;
    // 16 panels = 4 MB: rotating over them defeats L2 residency, which is
    // the streaming pattern gemm_core sees at n = 1024.
    let npanels = 16usize;
    let panels: Vec<Vec<f64>> = (0..npanels)
        .map(|p| (0..kc * nc).map(|t| (((t + p * 37) * 7 % 13) as f64 - 6.0) / 3.0).collect())
        .collect();
    let segs: Vec<Vec<f64>> =
        (0..4).map(|r| (0..kc).map(|l| ((r * kc + l) as f64 * 0.37).sin()).collect()).collect();
    let mut rows: Vec<Vec<f64>> = (0..4).map(|_| vec![0.0; nc]).collect();

    let iters = 20_000usize;
    let flops = (4 * 2 * kc * nc * iters) as f64;

    for streaming in [false, true] {
        let rot = if streaming { npanels } else { 1 };
        for label in ["avx2", "scalar", "old"] {
            simd::set_force_scalar(label == "scalar");
            let t0 = Instant::now();
            for it in 0..iters {
                let panel = black_box(&panels[it % rot]);
                if label == "old" {
                    old_tile4([&segs[0], &segs[1], &segs[2], &segs[3]], panel, nc, &mut rows);
                } else {
                    let [r0, r1, r2, r3] = &mut rows[..] else { unreachable!() };
                    simd::gemm_tile4(
                        [&segs[0], &segs[1], &segs[2], &segs[3]],
                        panel,
                        nc,
                        r0,
                        r1,
                        r2,
                        r3,
                    );
                }
            }
            let dt = t0.elapsed().as_secs_f64();
            let kind = if streaming { "stream" } else { "hot" };
            println!("tile4 {label:>7} [{kind:>6}]: {:7.2} GFLOP/s", flops / dt / 1e9);
        }
    }
    simd::set_force_scalar(false);
    black_box(&rows);
}
