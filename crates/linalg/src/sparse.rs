//! Compressed sparse row (CSR) matrices.
//!
//! Adjacency matrices of the benchmark graphs are sparse (average degree 10 to
//! a few hundred on up to 2¹⁶ nodes in the scalability sweeps), so the
//! algorithms that iterate `A · X`-style products (IsoRank, NSD, CONE's
//! proximity matrix, GRASP's Laplacian) run on this CSR type rather than on
//! dense matrices.

use crate::dense::DenseMatrix;
use crate::vec_ops;
use crate::workspace::Workspace;
use graphalign_par as par;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (maintained by all constructors):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * column indices within each row are strictly increasing;
/// * no explicitly stored zeros are required (duplicates are merged by
///   [`CsrMatrix::from_triplets`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; resulting explicit zeros are kept (callers that
    /// care can [`CsrMatrix::prune`] them).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds for {rows}x{cols}");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let p = next[r];
            col_idx[p] = c;
            values[p] = v;
            next[r] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_col = Vec::with_capacity(col_idx.len());
        let mut out_val = Vec::with_capacity(values.len());
        let mut row_ptr = vec![0usize; rows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            scratch.extend(
                col_idx[counts[r]..counts[r + 1]]
                    .iter()
                    .copied()
                    .zip(values[counts[r]..counts[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in scratch.iter() {
                if let Some(last) = out_col.last() {
                    if *last == c && out_col.len() > row_ptr[r] {
                        let lv: &mut f64 = out_val.last_mut().expect("values track col indices");
                        *lv += v;
                        continue;
                    }
                }
                out_col.push(c);
                out_val.push(v);
            }
            row_ptr[r + 1] = out_col.len();
        }
        Self { rows, cols, row_ptr, col_idx: out_col, values: out_val }
    }

    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m.get(i, j);
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(m.rows(), m.cols(), &triplets)
    }

    /// Densifies the matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                out.set(i, j, v);
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates `(col, value)` pairs of row `i` in increasing column order.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()].iter().copied().zip(self.values[span].iter().copied())
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Value at `(i, j)`, `0.0` when not stored. `O(log nnz(row i))`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&j) {
            Ok(p) => self.row_values(i)[p],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Sparse matrix–vector product into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x length mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec: out length mismatch");
        let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
        par::for_each_chunk_mut(out, avg_nnz, |_, range, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                let i = range.start + off;
                let mut acc = 0.0;
                for (j, v) in self.row_iter(i) {
                    acc += v * x[j];
                }
                *o = acc;
            }
        });
    }

    /// Transposed sparse matrix–vector product `selfᵀ * x`.
    pub fn tr_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_mul_vec: x length mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row_iter(i) {
                out[j] += v * xi;
            }
        }
        out
    }

    /// Sparse × dense product `self * rhs`, parallelized over output rows.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_dense(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols());
        self.mul_dense_into(rhs, &mut out);
        out
    }

    /// Sparse × dense product into a caller-provided matrix — the
    /// allocation-free form iterative solvers call every iteration.
    /// Bit-identical to [`CsrMatrix::mul_dense`].
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn mul_dense_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols, rhs.rows(), "mul_dense: inner dimensions differ");
        assert_eq!(out.shape(), (self.rows, rhs.cols()), "mul_dense_into: output shape mismatch");
        par::telemetry::count_matmul();
        let n = rhs.cols();
        let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
        let data = out.as_mut_slice();
        data.fill(0.0);
        par::for_each_row_block_mut(data, n.max(1), avg_nnz * n, |rows, block| {
            for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                for (j, v) in self.row_iter(rows.start + off) {
                    vec_ops::axpy(v, rhs.row(j), out_row);
                }
            }
        });
    }

    /// Fused transposed product `selfᵀ * rhs` without materializing the
    /// transpose. The stored entries are counting-sorted by column into a
    /// compact transpose *structure* (column pointers + source rows, with
    /// ascending source-row order inside each output row), and the output
    /// rows are then filled in parallel, each accumulating its `axpy`
    /// contributions over ascending source row. Bit-identical to
    /// `self.transpose().mul_dense(rhs)` — and to the sequential
    /// entry-by-entry scatter this kernel replaced — at any thread count.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn tr_mul_dense(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows(), "tr_mul_dense: inner dimensions differ");
        par::telemetry::count_matmul();
        let n = rhs.cols();
        // Counting sort by column. Walking rows in ascending order keeps
        // the entries of each output row in ascending source-row order —
        // the accumulation order the determinism contract fixes.
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            col_ptr[c + 1] += 1;
        }
        for j in 0..self.cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut src_row = vec![0usize; self.nnz()];
        let mut src_val = vec![0.0; self.nnz()];
        let mut next = col_ptr[..self.cols].to_vec();
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                let p = next[j];
                src_row[p] = i;
                src_val[p] = v;
                next[j] += 1;
            }
        }
        let mut out = DenseMatrix::zeros(self.cols, n);
        let avg_nnz = (self.nnz() / self.cols.max(1)).max(1);
        par::for_each_row_block_mut(
            out.as_mut_slice(),
            n.max(1),
            avg_nnz * n.max(1),
            |rows, block| {
                for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                    let j = rows.start + off;
                    for p in col_ptr[j]..col_ptr[j + 1] {
                        vec_ops::axpy(src_val[p], rhs.row(src_row[p]), out_row);
                    }
                }
            },
        );
        out
    }

    /// Fused product `self * rhsᵀ` without materializing the dense
    /// transpose: each output row gathers sparse dot products of one CSR
    /// row against the rows of `rhs`, parallelized over output row blocks
    /// and tiled over `rhs` rows so one tile of `rhs` is reused across a
    /// whole block of output rows before the next tile streams in. Tiling
    /// only reorders whole output elements — each element is still one
    /// gather over the CSR row's stored entries in ascending column order —
    /// so results are bit-identical at any tile size and thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn mul_dense_tr(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.cols(), "mul_dense_tr: column counts differ");
        par::telemetry::count_matmul();
        let n = rhs.rows();
        // 64 rhs rows per tile ≈ 32 KB at the benchmark feature width,
        // small enough to stay cache-resident across the output row block.
        const TILE_J: usize = 64;
        let mut data = vec![0.0; self.rows * n];
        let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
        par::for_each_row_block_mut(&mut data, n.max(1), avg_nnz * n, |rows, block| {
            let w = n.max(1);
            let nrows = block.len() / w;
            for jt in (0..n).step_by(TILE_J) {
                let je = (jt + TILE_J).min(n);
                for off in 0..nrows {
                    let i = rows.start + off;
                    let cols_i = self.row_cols(i);
                    let vals_i = self.row_values(i);
                    let out_seg = &mut block[off * w + jt..off * w + je];
                    for (j, o) in (jt..je).zip(out_seg.iter_mut()) {
                        let r = rhs.row(j);
                        let mut acc = 0.0;
                        for (&l, &v) in cols_i.iter().zip(vals_i) {
                            acc += v * r[l];
                        }
                        *o = acc;
                    }
                }
            }
        });
        DenseMatrix::from_vec(self.rows, n, data)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                triplets.push((j, i, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Scales row `i` by `factors[i]` (i.e. computes `diag(factors) * self`).
    ///
    /// # Panics
    /// Panics if `factors.len() != rows`.
    pub fn scale_rows(&mut self, factors: &[f64]) {
        assert_eq!(factors.len(), self.rows, "scale_rows: length mismatch");
        for i in 0..self.rows {
            let f = factors[i];
            for v in &mut self.values[self.row_ptr[i]..self.row_ptr[i + 1]] {
                *v *= f;
            }
        }
    }

    /// Scales column `j` by `factors[j]` (i.e. computes `self * diag(factors)`).
    ///
    /// # Panics
    /// Panics if `factors.len() != cols`.
    pub fn scale_cols(&mut self, factors: &[f64]) {
        assert_eq!(factors.len(), self.cols, "scale_cols: length mismatch");
        for (c, v) in self.col_idx.iter().zip(self.values.iter_mut()) {
            *v *= factors[*c];
        }
    }

    /// Row sums (for an adjacency matrix: weighted degrees).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_values(i).iter().sum()).collect()
    }

    /// Normalizes each row to sum 1 (rows summing to 0 are left untouched),
    /// producing a row-stochastic matrix `D⁻¹ · self`.
    pub fn row_normalize(&mut self) {
        let sums = self.row_sums();
        let inv: Vec<f64> = sums.iter().map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 }).collect();
        self.scale_rows(&inv);
    }

    /// Removes stored entries with `|value| <= tol`.
    pub fn prune(&mut self, tol: f64) {
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                if v.abs() > tol {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vec_ops::norm2(&self.values)
    }

    /// Approximate heap footprint in bytes (indices + values + row pointers);
    /// used by the memory-scalability harness (paper Figures 13–14).
    pub fn nbytes(&self) -> usize {
        self.row_ptr.len() * size_of::<usize>()
            + self.col_idx.len() * size_of::<usize>()
            + self.values.len() * size_of::<f64>()
    }
}

// Dense-left mixed products live here (rather than in `dense`) because the
// dense module does not otherwise know about the CSR type.
impl DenseMatrix {
    /// Fused dense × sparseᵀ product `self * rhsᵀ` for a CSR right-hand
    /// side. Each output element is a sparse dot of one dense row with one
    /// CSR row, so `X · S` for CSR `S` is `x.mul_csr_tr(&s_t)` with the
    /// transpose `s_t` hoisted once per solve — this is the kernel that
    /// removes the per-iteration dense transposes from the IsoRank and GWL
    /// updates. Accumulation per element runs over the CSR row's stored
    /// entries in ascending column order, matching the bit pattern of the
    /// former `s.mul_dense(x.transpose()).transpose()` formulation.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn mul_csr_tr(&self, rhs: &CsrMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows(), rhs.rows());
        self.mul_csr_tr_into(rhs, &mut out);
        out
    }

    /// [`DenseMatrix::mul_csr_tr`] into a caller-provided matrix.
    ///
    /// # Panics
    /// Panics on column-count or output-shape mismatch.
    pub fn mul_csr_tr_into(&self, rhs: &CsrMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols(), rhs.cols(), "mul_csr_tr: column counts differ");
        assert_eq!(
            out.shape(),
            (self.rows(), rhs.rows()),
            "mul_csr_tr_into: output shape mismatch"
        );
        par::telemetry::count_matmul();
        let n = rhs.rows();
        let cost_per_row = rhs.nnz().max(1);
        par::for_each_row_block_mut(out.as_mut_slice(), n.max(1), cost_per_row, |rows, block| {
            for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let self_row = self.row(rows.start + off);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (&l, &v) in rhs.row_cols(j).iter().zip(rhs.row_values(j)) {
                        acc += v * self_row[l];
                    }
                    *o = acc;
                }
            }
        });
    }

    /// Fused dense × sparse product `self · rhs` for a CSR right-hand side,
    /// in scatter form: for each dense row, the stored entries of `rhs`'s
    /// row `l` scatter `self[i,l] · v` into the output at ascending `l`.
    ///
    /// Exactly the same terms reach each output element in exactly the same
    /// ascending-`l` order as the gather form, so this is bit-identical to
    /// `self.mul_csr_tr(&rhs.transpose())` — but where the gather serializes
    /// each output element behind a floating-point add dependency chain
    /// (~4 cycles per stored entry), the scatter updates independent
    /// elements back to back, and it needs no transpose hoist. Useful when
    /// the CSR transpose is not worth materializing; for the repeated
    /// right-multiplications of the iterative solvers, the measured-fastest
    /// form at every size is picked by [`DenseMatrix::mul_csr_tr_into_auto`].
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_csr(&self, rhs: &CsrMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows(), rhs.cols());
        self.mul_csr_into(rhs, &mut out);
        out
    }

    /// [`DenseMatrix::mul_csr`] into a caller-provided matrix — the
    /// allocation-free form the iterative solvers call every iteration.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn mul_csr_into(&self, rhs: &CsrMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols(), rhs.rows(), "mul_csr: inner dimensions differ");
        assert_eq!(out.shape(), (self.rows(), rhs.cols()), "mul_csr_into: output shape mismatch");
        par::telemetry::count_matmul();
        let n = rhs.cols();
        let k = rhs.rows();
        let cost_per_row = rhs.nnz().max(1) + k;
        let data = out.as_mut_slice();
        data.fill(0.0);
        par::for_each_row_block_mut(data, n.max(1), cost_per_row, |rows, block| {
            for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let self_row = self.row(rows.start + off);
                for (l, &sv) in self_row.iter().enumerate() {
                    for (j, v) in rhs.row_iter(l) {
                        out_row[j] += sv * v;
                    }
                }
            }
        });
    }

    /// Form-selecting `self · rhsᵀ`: picks between the gather kernel
    /// ([`DenseMatrix::mul_csr_tr_into`]) and the hoisted-transpose row-axpy
    /// formulation `(rhs · selfᵀ)ᵀ` based on output size.
    ///
    /// Below [`SPMM_RIGHT_HOIST_CUTOFF`] output elements, the row-axpy form
    /// wins: its SIMD `axpy` inner loop streams whole dense rows while the
    /// gather walks a ~4-cycle floating-point add dependency chain per
    /// output element, and the two dense transposes it pays per call stay
    /// L2-resident at small sizes. Above the cutoff those transposes turn
    /// into strided cache misses over a multi-megabyte working set and the
    /// gather takes over. (This size-dependent inversion is exactly the
    /// fused-IsoRank small-`n` regression; the measured crossover on the
    /// benchmark machine is n ≈ 512 for square operands.)
    ///
    /// Both formulations feed every output element the same terms in the
    /// same ascending shared-index order, so the result is **bit-identical**
    /// whichever side of the cutoff executes — the cutoff is a pure
    /// performance decision, invisible in the output.
    ///
    /// # Panics
    /// Panics on column-count or output-shape mismatch.
    pub fn mul_csr_tr_into_auto(&self, rhs: &CsrMatrix, out: &mut DenseMatrix, ws: &mut Workspace) {
        assert_eq!(self.cols(), rhs.cols(), "mul_csr_tr: column counts differ");
        assert_eq!(
            out.shape(),
            (self.rows(), rhs.rows()),
            "mul_csr_tr_into: output shape mismatch"
        );
        if self.rows() * rhs.rows() < SPMM_RIGHT_HOIST_CUTOFF {
            let mut st = ws.take_matrix(self.cols(), self.rows());
            let mut ot = ws.take_matrix(rhs.rows(), self.rows());
            self.transpose_into(&mut st);
            rhs.mul_dense_into(&st, &mut ot);
            ot.transpose_into(out);
            ws.give_matrix(ot);
            ws.give_matrix(st);
        } else {
            self.mul_csr_tr_into(rhs, out);
        }
    }
}

/// Output-element cutoff below which [`DenseMatrix::mul_csr_tr_into_auto`]
/// uses the hoisted-transpose row-axpy formulation instead of the gather
/// kernel. Chosen from `spmm_form_bench` medians on the benchmark machine:
/// the axpy form wins through n = 448 and loses abruptly at n = 512, where
/// the per-call dense transposes (2·n²·8 B = 4 MB) overflow the 2 MB L2.
pub const SPMM_RIGHT_HOIST_CUTOFF: usize = 512 * 512;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 3]
        CsrMatrix::from_triplets(2, 3, &[(0, 2, 2.0), (0, 0, 1.0), (1, 2, 3.0)])
    }

    #[test]
    fn triplets_are_sorted_within_rows() {
        let m = sample();
        assert_eq!(m.row_cols(0), &[0, 2]);
        assert_eq!(m.row_values(0), &[1.0, 2.0]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x), m.to_dense().mul_vec(&x));
    }

    #[test]
    fn tr_spmv_matches_dense_transpose() {
        let m = sample();
        let x = [1.0, 2.0];
        assert_eq!(m.tr_mul_vec(&x), m.to_dense().transpose().mul_vec(&x));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(m.mul_dense(&d), m.to_dense().matmul(&d));
    }

    #[test]
    fn mul_dense_into_matches_allocating_form_bitwise() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[&[1.5, -2.0], &[0.25, 1.0], &[1.0, 3.0]]);
        let mut out = DenseMatrix::filled(2, 2, f64::NAN);
        m.mul_dense_into(&d, &mut out);
        assert_eq!(out, m.mul_dense(&d));
    }

    #[test]
    fn tr_mul_dense_matches_materialized_transpose_bitwise() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, -0.5]]);
        assert_eq!(m.tr_mul_dense(&d), m.transpose().mul_dense(&d));
    }

    #[test]
    fn mul_dense_tr_matches_materialized_transpose() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 0.0, 4.0]]);
        let fused = m.mul_dense_tr(&d);
        let naive = m.mul_dense(&d.transpose());
        assert_eq!(fused.shape(), naive.shape());
        assert!(fused.sub(&naive).max_abs() < 1e-14);
    }

    #[test]
    fn dense_mul_csr_tr_matches_transposed_spmm_bitwise() {
        // The IsoRank inner-loop shape: left · s computed as
        // left.mul_csr_tr(&sᵀ) must match the former
        // sᵀ.mul_dense(leftᵀ).transpose() formulation bit for bit.
        let s = sample(); // 2×3
        let st = s.transpose(); // 3×2
        let left = DenseMatrix::from_rows(&[&[0.5, -1.0], &[1.0 / 3.0, 0.125], &[2.0, -0.7]]); // 3×2
        let fused = left.mul_csr_tr(&st); // left · stᵀ = left · s : 3×3
        let reference = st.mul_dense(&left.transpose()).transpose();
        assert_eq!(fused, reference);
    }

    #[test]
    fn dense_mul_csr_matches_gather_form_bitwise() {
        // The scatter form must agree bit for bit with the gather form on
        // the hoisted transpose — same terms, same ascending-l order per
        // output element, commutative multiplies.
        let s = sample(); // 2×3
        let left = DenseMatrix::from_rows(&[&[0.5, -1.0], &[1.0 / 3.0, 0.125], &[2.0, -0.7]]); // 3×2
        let scatter = left.mul_csr(&s); // 3×3
        let gather = left.mul_csr_tr(&s.transpose());
        assert_eq!(scatter, gather);
        let mut out = DenseMatrix::filled(3, 3, f64::NAN);
        left.mul_csr_into(&s, &mut out);
        assert_eq!(out, scatter);
    }

    #[test]
    fn mul_csr_tr_into_auto_is_bitwise_stable_across_the_cutoff() {
        // Rectangular shapes straddling SPMM_RIGHT_HOIST_CUTOFF = 512·512
        // output elements with modest dimensions: 330×790 = 260 700 (below,
        // hoisted row-axpy form) and 330×800 = 264 000 (above, gather form).
        // Whichever side executes must match the plain gather kernel bit
        // for bit — the cutoff may never be visible in the output.
        let k = 40;
        let mut ws = Workspace::new();
        for rhs_rows in [790usize, 800] {
            let below = 330 * rhs_rows < SPMM_RIGHT_HOIST_CUTOFF;
            let left =
                DenseMatrix::from_fn(330, k, |i, j| ((i * 7 + j * 13) % 23) as f64 / 11.0 - 1.0);
            let triplets: Vec<(usize, usize, f64)> = (0..rhs_rows)
                .flat_map(|r| {
                    (0..5).map(move |t| (r, (r * 31 + t * 17) % k, ((t + r) % 7) as f64 - 3.0))
                })
                .collect();
            let s = CsrMatrix::from_triplets(rhs_rows, k, &triplets);
            let mut auto_out = DenseMatrix::filled(330, rhs_rows, f64::NAN);
            left.mul_csr_tr_into_auto(&s, &mut auto_out, &mut ws);
            let gather = left.mul_csr_tr(&s);
            assert_eq!(
                auto_out, gather,
                "auto form (hoist={below}) diverged from gather at rhs_rows={rhs_rows}"
            );
        }
    }

    #[test]
    fn tr_mul_dense_handles_empty_and_dense_columns() {
        // A matrix with an empty column and a column hit by both rows, so
        // the counting-sorted transpose structure sees nnz 0 and 2 rows.
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 2.0), (1, 2, 3.0), (1, 0, -1.0)]);
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, -0.5]]);
        assert_eq!(m.tr_mul_dense(&d), m.transpose().mul_dense(&d));
    }

    #[test]
    fn mul_csr_tr_into_reuses_buffer() {
        let s = sample();
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut out = DenseMatrix::filled(1, 2, f64::NAN);
        x.mul_csr_tr_into(&s, &mut out);
        assert_eq!(out, x.mul_csr_tr(&s));
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn dense_round_trip_drops_zeros() {
        let d = DenseMatrix::from_rows(&[&[0.0, 5.0], &[0.0, 0.0]]);
        let m = CsrMatrix::from_dense(&d);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn row_normalize_makes_rows_stochastic() {
        let mut m = sample();
        m.row_normalize();
        let sums = m.row_sums();
        for s in sums {
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn row_normalize_leaves_empty_rows() {
        let mut m = CsrMatrix::zeros(2, 2);
        m.row_normalize();
        assert_eq!(m.row_sums(), vec![0.0, 0.0]);
    }

    #[test]
    fn scale_cols_matches_dense() {
        let mut m = sample();
        m.scale_cols(&[2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 2), 8.0);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn prune_removes_small_entries() {
        let mut m = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1e-12), (0, 1, 1.0), (0, 2, -1e-12)]);
        m.prune(1e-9);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn nbytes_is_positive_and_grows_with_nnz() {
        let small = CsrMatrix::zeros(10, 10);
        let big = sample();
        assert!(big.nbytes() > 0);
        assert!(big.nbytes() > small.nnz() * 16);
    }
}
