//! Small dense-vector helpers shared by the iterative solvers.
//!
//! These are deliberately plain free functions over `&[f64]` so they can be
//! used on matrix rows, embedding vectors, and Lanczos basis vectors alike
//! without wrapping them in a vector type.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch ({} vs {})", x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖₂²`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm and returns the original norm.
/// If the norm is zero (or subnormal), `x` is left untouched and `0.0` is
/// returned, so callers can detect breakdown.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Both squared distances `(‖x − y‖₂², ‖x + y‖₂²)` in one pass.
///
/// Each sum accumulates left to right exactly like two separate
/// [`dist2_sq`] calls (the second on a sign-flipped `y`), so callers that
/// previously materialized `-y` can drop the copy without changing a bit.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist2_sq_both(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "dist2_sq_both: length mismatch");
    let mut minus = 0.0;
    let mut plus = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        minus += (a - b) * (a - b);
        plus += (a + b) * (a + b);
    }
    (minus, plus)
}

/// GEMM microkernel over one packed panel: `out[j] += Σ_l a[l] * panel[l*nc + j]`.
///
/// `panel` holds `a.len()` rows of `nc` contiguous values (a packed slice of
/// the right-hand side). The shared dimension is unrolled by 4 with each
/// term added separately, so every output element accumulates its
/// contributions in ascending-`l` order — bit-identical to the naive ikj
/// loop — while the compiler vectorizes across `j` and fuses each
/// multiply-add.
///
/// # Panics
/// Panics (in debug builds) on inconsistent panel/output lengths.
pub fn gemm_microkernel(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    let kc = a.len();
    debug_assert_eq!(panel.len(), kc * nc, "gemm_microkernel: panel length mismatch");
    debug_assert_eq!(out.len(), nc, "gemm_microkernel: output length mismatch");
    let mut l = 0;
    while l + 4 <= kc {
        let (a0, a1, a2, a3) = (a[l], a[l + 1], a[l + 2], a[l + 3]);
        let rows = &panel[l * nc..(l + 4) * nc];
        let (b0, rest) = rows.split_at(nc);
        let (b1, rest) = rest.split_at(nc);
        let (b2, b3) = rest.split_at(nc);
        for ((((o, &x0), &x1), &x2), &x3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            let mut acc = *o;
            acc += a0 * x0;
            acc += a1 * x1;
            acc += a2 * x2;
            acc += a3 * x3;
            *o = acc;
        }
        l += 4;
    }
    while l < kc {
        axpy(a[l], &panel[l * nc..(l + 1) * nc], out);
        l += 1;
    }
}

/// Four-row GEMM microkernel over one packed panel.
///
/// `quad` is four contiguous output rows of length `row_len`; the kernel
/// updates the `nc`-wide window starting at column `jt` of each:
/// `quad[r][jt + j] += Σ_l a[r][l] * panel[l*nc + j]`. Processing four rows
/// per panel pass loads each packed right-hand-side row once for four
/// output rows, quartering panel bandwidth versus four single-row
/// [`gemm_microkernel`] calls. Every output element still accumulates its
/// terms in ascending-`l` order with a single accumulator — row blocking
/// only interleaves updates to *different* elements — so the result is
/// bit-identical to the naive ikj loop.
///
/// # Panics
/// Panics (in debug builds) on inconsistent segment/panel/quad lengths.
pub fn gemm_microkernel4(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    quad: &mut [f64],
    row_len: usize,
    jt: usize,
) {
    let kc = a[0].len();
    debug_assert!(a.iter().all(|s| s.len() == kc), "gemm_microkernel4: ragged lhs segments");
    debug_assert_eq!(panel.len(), kc * nc, "gemm_microkernel4: panel length mismatch");
    debug_assert_eq!(quad.len(), 4 * row_len, "gemm_microkernel4: quad length mismatch");
    debug_assert!(jt + nc <= row_len, "gemm_microkernel4: window out of range");
    let (q0, rest) = quad.split_at_mut(row_len);
    let (q1, rest) = rest.split_at_mut(row_len);
    let (q2, q3) = rest.split_at_mut(row_len);
    let o0 = &mut q0[jt..jt + nc];
    let o1 = &mut q1[jt..jt + nc];
    let o2 = &mut q2[jt..jt + nc];
    let o3 = &mut q3[jt..jt + nc];
    let mut l = 0;
    while l + 2 <= kc {
        let (b0, b1) = panel[l * nc..(l + 2) * nc].split_at(nc);
        let (a00, a01) = (a[0][l], a[0][l + 1]);
        let (a10, a11) = (a[1][l], a[1][l + 1]);
        let (a20, a21) = (a[2][l], a[2][l + 1]);
        let (a30, a31) = (a[3][l], a[3][l + 1]);
        for j in 0..nc {
            let (x0, x1) = (b0[j], b1[j]);
            o0[j] = o0[j] + a00 * x0 + a01 * x1;
            o1[j] = o1[j] + a10 * x0 + a11 * x1;
            o2[j] = o2[j] + a20 * x0 + a21 * x1;
            o3[j] = o3[j] + a30 * x0 + a31 * x1;
        }
        l += 2;
    }
    if l < kc {
        let b0 = &panel[l * nc..(l + 1) * nc];
        axpy(a[0][l], b0, o0);
        axpy(a[1][l], b0, o1);
        axpy(a[2][l], b0, o2);
        axpy(a[3][l], b0, o3);
    }
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Index of the maximum entry (first occurrence); `None` for empty input or
/// all-NaN input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// True when every entry is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm_and_returns_old_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_reports_breakdown() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_picks_first_max_and_skips_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn dist2_sq_matches_manual() {
        assert_eq!(dist2_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn dist2_sq_both_matches_separate_calls_bitwise() {
        let x = [1.5, -0.25, 3.0, 0.1, -2.0];
        let y = [0.5, 2.25, -1.0, 0.7, 0.3];
        let y_neg: Vec<f64> = y.iter().map(|v| -1.0 * v).collect();
        let (minus, plus) = dist2_sq_both(&x, &y);
        assert_eq!(minus.to_bits(), dist2_sq(&x, &y).to_bits());
        assert_eq!(plus.to_bits(), dist2_sq(&x, &y_neg).to_bits());
    }

    #[test]
    fn gemm_microkernel_matches_naive_accumulation_bitwise() {
        // 7 shared-dim entries exercises both the unrolled-by-4 body and
        // the scalar tail; nc = 3 columns.
        let a = [0.5, -1.25, 2.0, 0.125, -0.75, 3.5, 1.0 / 3.0];
        let (kc, nc) = (a.len(), 3);
        let panel: Vec<f64> = (0..kc * nc).map(|t| ((t * 7 % 13) as f64 - 6.0) / 3.0).collect();
        let mut out = vec![0.1, -0.2, 0.3];
        let mut naive = out.clone();
        for l in 0..kc {
            for j in 0..nc {
                naive[j] += a[l] * panel[l * nc + j];
            }
        }
        gemm_microkernel(&a, &panel, nc, &mut out);
        for (o, n) in out.iter().zip(&naive) {
            assert_eq!(o.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn gemm_microkernel_empty_shared_dim_is_noop() {
        let mut out = vec![1.0, 2.0];
        gemm_microkernel(&[], &[], 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn gemm_microkernel4_matches_single_row_kernel_bitwise() {
        // Odd shared dimension exercises the unroll-by-2 tail; the window
        // starts mid-row to exercise the jt offset.
        let (kc, nc, row_len, jt) = (5, 3, 7, 2);
        let segs: Vec<Vec<f64>> =
            (0..4).map(|r| (0..kc).map(|l| ((r * kc + l) as f64 * 0.37).sin()).collect()).collect();
        let panel: Vec<f64> = (0..kc * nc).map(|t| ((t * 7 % 13) as f64 - 6.0) / 3.0).collect();
        let mut quad: Vec<f64> = (0..4 * row_len).map(|t| (t as f64 * 0.11).cos()).collect();
        let mut expect = quad.clone();
        for r in 0..4 {
            let row = &mut expect[r * row_len..(r + 1) * row_len];
            gemm_microkernel(&segs[r], &panel, nc, &mut row[jt..jt + nc]);
        }
        gemm_microkernel4(
            [&segs[0], &segs[1], &segs[2], &segs[3]],
            &panel,
            nc,
            &mut quad,
            row_len,
            jt,
        );
        for (got, want) in quad.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
