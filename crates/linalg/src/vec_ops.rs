//! Small dense-vector helpers shared by the iterative solvers.
//!
//! These are deliberately plain free functions over `&[f64]` so they can be
//! used on matrix rows, embedding vectors, and Lanczos basis vectors alike
//! without wrapping them in a vector type.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch ({} vs {})", x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖₂²`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm and returns the original norm.
/// If the norm is zero (or subnormal), `x` is left untouched and `0.0` is
/// returned, so callers can detect breakdown.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Index of the maximum entry (first occurrence); `None` for empty input or
/// all-NaN input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// True when every entry is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm_and_returns_old_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_reports_breakdown() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_picks_first_max_and_skips_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn dist2_sq_matches_manual() {
        assert_eq!(dist2_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
