//! Small dense-vector helpers shared by the iterative solvers.
//!
//! These are deliberately plain free functions over `&[f64]` so they can be
//! used on matrix rows, embedding vectors, and Lanczos basis vectors alike
//! without wrapping them in a vector type. The heavy lifting lives in
//! [`crate::simd`]: every function here validates shapes and forwards to the
//! runtime-dispatched kernel, whose AVX2 and scalar paths are bitwise
//! identical. The reductions ([`dot`], [`sum`], [`dist2_sq`],
//! [`dist2_sq_both`]) use the fixed 8-stripe lane-group summation order
//! documented in [`crate::simd`] — a pure function of the input, independent
//! of both thread count and instruction set.

use crate::simd;

/// Dot product `x · y` in the lane-group reduction order.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch ({} vs {})", x.len(), y.len());
    simd::dot(x, y)
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖₂²` in the lane-group reduction order.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    simd::dist2_sq(x, y)
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    simd::axpy(alpha, x, y);
}

/// In-place scaling `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    simd::scale(alpha, x);
}

/// Normalizes `x` to unit Euclidean norm and returns the original norm.
/// If the norm is zero (or subnormal), `x` is left untouched and `0.0` is
/// returned, so callers can detect breakdown.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Both squared distances `(‖x − y‖₂², ‖x + y‖₂²)` in one pass.
///
/// Each sum accumulates in the lane-group order exactly like two separate
/// [`dist2_sq`] calls (the second on a sign-flipped `y`), so callers that
/// previously materialized `-y` can drop the copy without changing a bit.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dist2_sq_both(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "dist2_sq_both: length mismatch");
    simd::dist2_sq_both(x, y)
}

/// GEMM microkernel over one packed panel: `out[j] += Σ_l a[l] * panel[l*nc + j]`.
///
/// `panel` holds `a.len()` rows of `nc` contiguous values (a packed slice of
/// the right-hand side). Every output element accumulates its contributions
/// in ascending-`l` order with a single running accumulator — bit-identical
/// to the naive ikj loop — while the AVX2 path vectorizes across `j` and
/// keeps the accumulators in registers for the whole shared-dimension loop.
///
/// # Panics
/// Panics (in debug builds) on inconsistent panel/output lengths.
pub fn gemm_microkernel(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    debug_assert_eq!(panel.len(), a.len() * nc, "gemm_microkernel: panel length mismatch");
    debug_assert_eq!(out.len(), nc, "gemm_microkernel: output length mismatch");
    simd::gemm_tile1(a, panel, nc, out);
}

/// Four-row GEMM microkernel over one packed panel.
///
/// `quad` is four contiguous output rows of length `row_len`; the kernel
/// updates the `nc`-wide window starting at column `jt` of each:
/// `quad[r][jt + j] += Σ_l a[r][l] * panel[l*nc + j]`. Processing four rows
/// per panel pass loads each packed right-hand-side row once for four
/// output rows, and the AVX2 path holds the full 4×8 output tile in
/// registers across the shared-dimension loop. Every output element still
/// accumulates its terms in ascending-`l` order with a single accumulator —
/// row blocking only interleaves updates to *different* elements — so the
/// result is bit-identical to the naive ikj loop.
///
/// # Panics
/// Panics (in debug builds) on inconsistent segment/panel/quad lengths.
pub fn gemm_microkernel4(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    quad: &mut [f64],
    row_len: usize,
    jt: usize,
) {
    debug_assert_eq!(quad.len(), 4 * row_len, "gemm_microkernel4: quad length mismatch");
    debug_assert!(jt + nc <= row_len, "gemm_microkernel4: window out of range");
    let (q0, rest) = quad.split_at_mut(row_len);
    let (q1, rest) = rest.split_at_mut(row_len);
    let (q2, q3) = rest.split_at_mut(row_len);
    simd::gemm_tile4(
        a,
        panel,
        nc,
        &mut q0[jt..jt + nc],
        &mut q1[jt..jt + nc],
        &mut q2[jt..jt + nc],
        &mut q3[jt..jt + nc],
    );
}

/// Sum of all entries in the lane-group reduction order.
pub fn sum(x: &[f64]) -> f64 {
    simd::sum(x)
}

/// Index of the maximum entry (first occurrence); `None` for empty input or
/// all-NaN input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// True when every entry is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn dot_matches_lane_group_reference() {
        // 19 entries exercises both the 8-wide stripes and the tail.
        let x: Vec<f64> = (0..19).map(|i| (i as f64 * 0.31).sin()).collect();
        let y: Vec<f64> = (0..19).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_eq!(dot(&x, &y).to_bits(), crate::simd::dot_scalar(&x, &y).to_bits());
        assert_eq!(sum(&x).to_bits(), crate::simd::sum_scalar(&x).to_bits());
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm_and_returns_old_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_reports_breakdown() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_picks_first_max_and_skips_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn dist2_sq_matches_manual() {
        assert_eq!(dist2_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn dist2_sq_both_matches_separate_calls_bitwise() {
        // Length 21 spans two full stripes plus a tail, so the lane-group
        // order is exercised, not just the sequential remainder.
        let x: Vec<f64> = (0..21).map(|i| (i as f64 * 0.73).sin() * 2.0).collect();
        let y: Vec<f64> = (0..21).map(|i| (i as f64 * 0.41).cos() - 0.3).collect();
        let y_neg: Vec<f64> = y.iter().map(|v| -1.0 * v).collect();
        let (minus, plus) = dist2_sq_both(&x, &y);
        assert_eq!(minus.to_bits(), dist2_sq(&x, &y).to_bits());
        assert_eq!(plus.to_bits(), dist2_sq(&x, &y_neg).to_bits());
    }

    #[test]
    fn gemm_microkernel_matches_naive_accumulation_bitwise() {
        // 7 shared-dim entries exercises both the vector body and the
        // scalar tail; nc = 3 columns.
        let a = [0.5, -1.25, 2.0, 0.125, -0.75, 3.5, 1.0 / 3.0];
        let (kc, nc) = (a.len(), 3);
        let panel: Vec<f64> = (0..kc * nc).map(|t| ((t * 7 % 13) as f64 - 6.0) / 3.0).collect();
        let mut out = vec![0.1, -0.2, 0.3];
        let mut naive = out.clone();
        for l in 0..kc {
            for j in 0..nc {
                naive[j] += a[l] * panel[l * nc + j];
            }
        }
        gemm_microkernel(&a, &panel, nc, &mut out);
        for (o, n) in out.iter().zip(&naive) {
            assert_eq!(o.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn gemm_microkernel_empty_shared_dim_is_noop() {
        let mut out = vec![1.0, 2.0];
        gemm_microkernel(&[], &[], 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn gemm_microkernel4_matches_single_row_kernel_bitwise() {
        // Shared dim 5, window width 11 (vector body + tail), starting
        // mid-row to exercise the jt offset.
        let (kc, nc, row_len, jt) = (5, 11, 15, 2);
        let segs: Vec<Vec<f64>> =
            (0..4).map(|r| (0..kc).map(|l| ((r * kc + l) as f64 * 0.37).sin()).collect()).collect();
        let panel: Vec<f64> = (0..kc * nc).map(|t| ((t * 7 % 13) as f64 - 6.0) / 3.0).collect();
        let mut quad: Vec<f64> = (0..4 * row_len).map(|t| (t as f64 * 0.11).cos()).collect();
        let mut expect = quad.clone();
        for r in 0..4 {
            let row = &mut expect[r * row_len..(r + 1) * row_len];
            gemm_microkernel(&segs[r], &panel, nc, &mut row[jt..jt + nc]);
        }
        gemm_microkernel4(
            [&segs[0], &segs[1], &segs[2], &segs[3]],
            &panel,
            nc,
            &mut quad,
            row_len,
            jt,
        );
        for (got, want) in quad.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
