//! Reusable scratch buffers for allocation-free hot loops.
//!
//! Iterative solvers (Sinkhorn, power iteration, the IsoRank/GWL/GRASP
//! outer loops) need the same handful of temporaries on every iteration.
//! A [`Workspace`] is a small pool of `Vec<f64>` buffers those loops draw
//! from with [`Workspace::take`] and return with [`Workspace::give`]: the
//! first iteration allocates, every later one reuses. Each reuse that
//! avoided a fresh heap allocation is counted through
//! [`graphalign_par::telemetry::count_alloc_saved`], so the saving shows up
//! in the `allocs_saved` / `alloc_bytes_saved` fields of the cell telemetry
//! JSON.
//!
//! The pool's state is a pure function of the take/give call sequence — it
//! never depends on thread count or timing — so workspace reuse preserves
//! the workspace-wide bit-identity contract.

use crate::dense::DenseMatrix;
use graphalign_par::telemetry;

/// A pool of reusable `f64` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty workspace; buffers are pooled as they are given back.
    pub const fn new() -> Self {
        Self { pool: Vec::new() }
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing a
    /// pooled buffer when one is available: best fit first (the smallest
    /// pooled buffer whose capacity covers `len`), else the largest pooled
    /// buffer, grown in place. A reuse whose capacity already covers `len`
    /// (no fresh heap allocation) is counted via
    /// [`telemetry::count_alloc_saved`].
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                self.pool.iter().enumerate().max_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
            });
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                if buf.capacity() >= len {
                    telemetry::count_alloc_saved((len * std::mem::size_of::<f64>()) as u64);
                }
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Takes a zero-filled `rows × cols` matrix backed by a pooled buffer.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a matrix's buffer to the pool.
    pub fn give_matrix(&mut self, m: DenseMatrix) {
        self.give(m.into_vec());
    }

    /// Number of buffers currently pooled (idle).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers_of_requested_length() {
        let mut ws = Workspace::new();
        let mut b = ws.take(4);
        assert_eq!(b, vec![0.0; 4]);
        b[0] = 7.0;
        ws.give(b);
        let b2 = ws.take(3);
        assert_eq!(b2, vec![0.0; 3], "reused buffers come back zeroed");
    }

    #[test]
    fn reuse_is_counted_in_telemetry() {
        let _g = telemetry::install(false);
        let mut ws = Workspace::new();
        let b = ws.take(8); // fresh: not counted
        ws.give(b);
        let b = ws.take(8); // reuse within capacity: counted
        ws.give(b);
        let _big = ws.take(1 << 20); // reuse forces a realloc: not counted
        let t = telemetry::drain();
        assert_eq!(t.allocs_saved, 1);
        assert_eq!(t.alloc_bytes_saved, 8 * 8);
    }

    #[test]
    fn take_is_best_fit_then_largest() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(2));
        ws.give(Vec::with_capacity(100));
        let b = ws.take(50);
        assert!(b.capacity() >= 100, "only the cap-100 buffer fits a 50-element take");
        assert_eq!(ws.pooled(), 1);
        ws.give(b);
        ws.give(Vec::with_capacity(8));
        let b = ws.take(4);
        assert!(
            b.capacity() >= 4 && b.capacity() < 100,
            "best fit leaves the big buffer for big takes (got capacity {})",
            b.capacity()
        );
    }

    #[test]
    fn matrix_round_trip() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice(), &[0.0; 6]);
        ws.give_matrix(m);
        assert_eq!(ws.pooled(), 1);
    }
}
