//! The pipeline currency between the algorithm and assignment layers: a
//! similarity matrix in whichever representation the algorithm naturally
//! produces — dense, factored low-rank, or sparse.
//!
//! The EDBT 2023 framework is "any similarity notion × any assignment
//! method"; forcing every notion through a dense `n × m` matrix caps the
//! memory-scalability sweeps (paper Figures 13–14) at the dense footprint
//! even for algorithms whose natural output is a pair of rank-`d` factors or
//! a candidate list. [`Similarity`] lets each aligner hand the assignment
//! layer its native representation, and makes the only dense materialization
//! path an audited choke point ([`Similarity::to_dense`]) that reuses the
//! [`Workspace`] pool and reports `densifications`/`densified_bytes`
//! telemetry.

use crate::dense::DenseMatrix;
use crate::lowrank::LowRankSim;
use crate::sparse::CsrMatrix;
use crate::workspace::Workspace;

/// A similarity matrix in its producer's native representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Similarity {
    /// Fully materialized `rows × cols` matrix.
    Dense(DenseMatrix),
    /// Implicit matrix in factored form (`kernel(Ya.row(i), Yb.row(j))`).
    LowRank(LowRankSim),
    /// Sparse candidate matrix; absent entries are exact `0.0`.
    Sparse(CsrMatrix),
}

impl Similarity {
    /// Number of rows (source vertices).
    pub fn rows(&self) -> usize {
        match self {
            Similarity::Dense(m) => m.rows(),
            Similarity::LowRank(lr) => lr.rows(),
            Similarity::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns (target vertices).
    pub fn cols(&self) -> usize {
        match self {
            Similarity::Dense(m) => m.cols(),
            Similarity::LowRank(lr) => lr.cols(),
            Similarity::Sparse(s) => s.cols(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Stable representation name used in the per-cell JSON
    /// (`similarity_repr`): `"dense"`, `"lowrank"` or `"sparse"`.
    pub fn repr_kind(&self) -> &'static str {
        match self {
            Similarity::Dense(_) => "dense",
            Similarity::LowRank(_) => "lowrank",
            Similarity::Sparse(_) => "sparse",
        }
    }

    /// Approximate heap bytes held by this representation (the quantity the
    /// memory-scalability harness reports as `similarity_bytes`).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Similarity::Dense(m) => Self::dense_bytes(m.rows(), m.cols()),
            Similarity::LowRank(lr) => lr.nbytes(),
            Similarity::Sparse(s) => s.nbytes(),
        }
    }

    /// Model footprint of a dense `rows × cols` similarity (`8·rows·cols`),
    /// for a-priori memory models (`memprobe`).
    pub fn dense_bytes(rows: usize, cols: usize) -> usize {
        8 * rows * cols
    }

    /// Model footprint of a rank-`rank` factored `rows × cols` similarity
    /// (`8·(rows + cols)·rank`), for a-priori memory models (`memprobe`).
    pub fn lowrank_bytes(rows: usize, cols: usize, rank: usize) -> usize {
        8 * (rows + cols) * rank
    }

    /// Bytes a CSR representation with `rows` rows and `nnz` stored entries
    /// occupies (row pointers + column indices + values), matching
    /// [`CsrMatrix::nbytes`]. The analytic twin used by the memory models:
    /// sparse similarities and adjacencies are accounted at their nnz-based
    /// footprint, not a dense upper bound.
    pub fn sparse_bytes(rows: usize, nnz: usize) -> usize {
        (rows + 1) * size_of::<usize>() + nnz * (size_of::<usize>() + size_of::<f64>())
    }

    /// Entry `(i, j)`, evaluated without materializing anything.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Similarity::Dense(m) => m.get(i, j),
            Similarity::LowRank(lr) => lr.value(i, j),
            Similarity::Sparse(s) => s.get(i, j),
        }
    }

    /// Borrows the dense matrix when this is already [`Similarity::Dense`].
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            Similarity::Dense(m) => Some(m),
            _ => None,
        }
    }

    /// Whether every representable entry is free of NaN/infinities (for
    /// `LowRank`, checks the factors and offsets — entries are then finite
    /// for every kernel the pipeline uses).
    pub fn all_finite(&self) -> bool {
        match self {
            Similarity::Dense(m) => m.all_finite(),
            Similarity::LowRank(lr) => lr.all_finite(),
            Similarity::Sparse(s) => {
                (0..s.rows()).all(|i| crate::vec_ops::all_finite(s.row_values(i)))
            }
        }
    }

    /// **The audited densification choke point.** Materializes the full
    /// matrix into a buffer drawn from `ws` (return it with
    /// [`Workspace::give_matrix`] so repeated densifications reuse the
    /// allocation). Densifying a non-dense representation is counted in
    /// telemetry as one `densification` of `8·rows·cols` bytes; cloning an
    /// already-dense similarity is not.
    ///
    /// The result is bit-identical to what the pre-factored dense
    /// constructors produced: `Dot` goes through `matmul_tr_into`, the
    /// distance kernels evaluate the exact former `par_from_fn` closures, and
    /// sparse entries scatter onto an exact-zero background.
    pub fn to_dense(&self, ws: &mut Workspace) -> DenseMatrix {
        match self {
            Similarity::Dense(m) => m.clone(),
            Similarity::LowRank(lr) => {
                graphalign_par::telemetry::count_densify(
                    Self::dense_bytes(lr.rows(), lr.cols()) as u64
                );
                let mut out = ws.take_matrix(lr.rows(), lr.cols());
                lr.fill_dense(&mut out, ws);
                out
            }
            Similarity::Sparse(s) => {
                graphalign_par::telemetry::count_densify(
                    Self::dense_bytes(s.rows(), s.cols()) as u64
                );
                let mut out = ws.take_matrix(s.rows(), s.cols());
                out.par_fill_from_fn(|_, _| 0.0);
                for i in 0..s.rows() {
                    for (j, v) in s.row_iter(i) {
                        out.set(i, j, v);
                    }
                }
                out
            }
        }
    }

    /// Consumes the representation into a dense matrix: free for
    /// [`Similarity::Dense`], otherwise a [`Self::to_dense`] densification
    /// through a throwaway workspace.
    pub fn into_dense(self) -> DenseMatrix {
        match self {
            Similarity::Dense(m) => m,
            other => other.to_dense(&mut Workspace::new()),
        }
    }
}

impl From<DenseMatrix> for Similarity {
    fn from(m: DenseMatrix) -> Self {
        Similarity::Dense(m)
    }
}

impl From<LowRankSim> for Similarity {
    fn from(lr: LowRankSim) -> Self {
        Similarity::LowRank(lr)
    }
}

impl From<CsrMatrix> for Similarity {
    fn from(s: CsrMatrix) -> Self {
        Similarity::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowrank::LowRankKernel;

    #[test]
    fn shapes_and_repr_kinds() {
        let d = Similarity::Dense(DenseMatrix::zeros(2, 3));
        assert_eq!(d.shape(), (2, 3));
        assert_eq!(d.repr_kind(), "dense");
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::zeros(2, 4),
            DenseMatrix::zeros(3, 4),
            LowRankKernel::Dot,
        ));
        assert_eq!(lr.shape(), (2, 3));
        assert_eq!(lr.repr_kind(), "lowrank");
        let sp = Similarity::Sparse(CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0)]));
        assert_eq!(sp.shape(), (2, 3));
        assert_eq!(sp.repr_kind(), "sparse");
    }

    #[test]
    fn approx_bytes_tracks_the_representation() {
        let d = Similarity::Dense(DenseMatrix::zeros(10, 10));
        assert_eq!(d.approx_bytes(), 800);
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::zeros(10, 2),
            DenseMatrix::zeros(10, 2),
            LowRankKernel::Dot,
        ));
        assert_eq!(lr.approx_bytes(), Similarity::lowrank_bytes(10, 10, 2));
        assert!(lr.approx_bytes() < d.approx_bytes());
    }

    #[test]
    fn sparse_to_dense_keeps_explicit_zeros_and_negatives() {
        let s = CsrMatrix::from_triplets(2, 3, &[(0, 1, -2.5), (1, 0, 0.0), (1, 2, 4.0)]);
        let sim = Similarity::Sparse(s.clone());
        let mut ws = Workspace::new();
        let dense = sim.to_dense(&mut ws);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(dense.get(i, j), s.get(i, j));
            }
        }
        assert_eq!(dense.get(0, 0), 0.0);
        assert_eq!(dense.get(0, 1), -2.5);
    }

    #[test]
    fn to_dense_counts_densifications_only_for_non_dense() {
        let _g = graphalign_par::telemetry::install(false);
        let mut ws = Workspace::new();
        let d = Similarity::Dense(DenseMatrix::zeros(4, 4));
        let _ = d.to_dense(&mut ws);
        let t = graphalign_par::telemetry::drain();
        assert_eq!(t.densifications, 0, "dense clone is not a densification");
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::zeros(4, 2),
            DenseMatrix::zeros(5, 2),
            LowRankKernel::ExpNegSqDist,
        ));
        let _ = lr.to_dense(&mut ws);
        let sp = Similarity::Sparse(CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0)]));
        let _ = sp.to_dense(&mut ws);
        let t = graphalign_par::telemetry::drain();
        assert_eq!(t.densifications, 2);
        assert_eq!(t.densified_bytes, (4 * 5 * 8 + 3 * 3 * 8) as u64);
    }

    #[test]
    fn to_dense_reuses_pooled_buffers() {
        let _g = graphalign_par::telemetry::install(false);
        let mut ws = Workspace::new();
        let lr = Similarity::LowRank(LowRankSim::new(
            DenseMatrix::zeros(6, 2),
            DenseMatrix::zeros(6, 2),
            LowRankKernel::Dot,
        ));
        let first = lr.to_dense(&mut ws);
        ws.give_matrix(first);
        let _ = graphalign_par::telemetry::drain();
        let second = lr.to_dense(&mut ws);
        ws.give_matrix(second);
        let t = graphalign_par::telemetry::drain();
        assert!(t.allocs_saved > 0, "second densification must reuse the pooled buffer");
    }

    #[test]
    fn get_matches_to_dense_for_every_variant() {
        let mut ws = Workspace::new();
        let ya = DenseMatrix::from_rows(&[&[0.6, 0.8], &[1.0, 0.0]]);
        let yb = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.8, 0.6], &[0.6, 0.8]]);
        for sim in [
            Similarity::Dense(DenseMatrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.5, 0.25, 9.0]])),
            Similarity::LowRank(LowRankSim::new(ya, yb, LowRankKernel::ExpNegSqDist)),
            Similarity::Sparse(CsrMatrix::from_triplets(2, 3, &[(0, 2, 3.0), (1, 1, -1.0)])),
        ] {
            let dense = sim.to_dense(&mut ws);
            for i in 0..sim.rows() {
                for j in 0..sim.cols() {
                    assert_eq!(sim.get(i, j).to_bits(), dense.get(i, j).to_bits());
                }
            }
        }
    }
}
