//! Landmark (Nyström) Sinkhorn: entropic OT on a factored Gibbs kernel.
//!
//! The dense OT path builds an `n × m` cost matrix and its Gibbs kernel —
//! the exact n×n wall the XL tier must avoid. This module replaces the dense
//! kernel with its Nyström approximation through `k` landmark points:
//!
//! ```text
//!   K ≈ K̃ = K_aL · W · K_bLᵀ,     W = pinv(K_LL)
//! ```
//!
//! where `K_aL` (`n × k`) and `K_bL` (`m × k`) hold Gibbs affinities between
//! the two embedding sets and the landmarks, and `K_LL` is the `k × k`
//! landmark self-affinity block. Every Sinkhorn matvec then costs
//! `O((n + m) · k)` and the peak footprint is `O((n + m) · k)` — never `n·m`.
//!
//! Landmarks are a deterministic stride over the target embedding rows, so
//! results are reproducible and thread-count independent. The scaling loop
//! mirrors [`crate::sinkhorn`]'s semantics exactly: same update rule, same
//! degenerate-denominator reporting, same telemetry and budget hooks.

use crate::dense::DenseMatrix;
use crate::sinkhorn::{scaling_update, SinkhornParams, KERNEL_FLOOR};
use crate::vec_ops;
use crate::LinalgError;
use graphalign_par as par;
use graphalign_par::telemetry::{self, Convergence};

/// Factored Gibbs kernel `diag-free` Nyström approximation plus the scaling
/// solver that runs Sinkhorn against it.
#[derive(Debug, Clone)]
pub struct LandmarkSinkhorn {
    /// `n × k` source-to-landmark Gibbs block.
    ka: DenseMatrix,
    /// `k × k` pseudo-inverse of the landmark self-affinity block.
    w: DenseMatrix,
    /// `m × k` target-to-landmark Gibbs block.
    kb: DenseMatrix,
    /// Target-row indices chosen as landmarks (deterministic stride).
    landmarks: Vec<usize>,
}

/// Deterministic landmark selection: an even stride over `0..m`, so the same
/// `(m, k)` always yields the same landmark set at any thread count.
pub fn stride_landmarks(m: usize, k: usize) -> Vec<usize> {
    let k = k.clamp(1, m.max(1));
    (0..k).map(|l| l * m / k).collect()
}

impl LandmarkSinkhorn {
    /// Builds the factored Gibbs kernel between embedding rows of `xa`
    /// (`n × d`) and `xb` (`m × d`) with `landmarks` target rows and
    /// regularization `epsilon`.
    ///
    /// Costs are squared Euclidean distances normalized by the maximum
    /// observed landmark-block distance (the factored stand-in for the dense
    /// path's max-abs cost normalization), so `epsilon` keeps the same
    /// meaning as in the dense solver.
    ///
    /// # Errors
    /// [`LinalgError::NotFinite`] when the embeddings contain NaN/∞, and
    /// propagates SVD failures from the `k × k` pseudo-inverse.
    ///
    /// # Panics
    /// Panics when the embedding dimensions differ or either side is empty.
    pub fn build(
        xa: &DenseMatrix,
        xb: &DenseMatrix,
        landmarks: usize,
        epsilon: f64,
    ) -> Result<Self, LinalgError> {
        let routine = "sinkhorn_landmark";
        assert_eq!(xa.cols(), xb.cols(), "landmark sinkhorn: embedding dim mismatch");
        let (n, m) = (xa.rows(), xb.rows());
        assert!(n > 0 && m > 0, "landmark sinkhorn: empty embedding set");
        if !xa.all_finite() || !xb.all_finite() {
            return Err(LinalgError::NotFinite { routine });
        }
        let idx = stride_landmarks(m, landmarks);
        let k = idx.len();
        let lm = xb.select_rows(&idx);
        // Squared-distance blocks to the landmarks; one deterministic parallel
        // pass each, O((n + m)·k·d) work and O((n + m)·k) memory.
        let da = DenseMatrix::par_from_fn(n, k, |i, l| vec_ops::dist2_sq(xa.row(i), lm.row(l)));
        let db = DenseMatrix::par_from_fn(m, k, |j, l| vec_ops::dist2_sq(xb.row(j), lm.row(l)));
        // Normalize by the largest observed distance so epsilon is scale-free,
        // exactly as the dense path divides its cost matrix by max-abs.
        let scale = da.max_abs().max(db.max_abs()).max(1e-12);
        let eps = epsilon.max(1e-12) * scale;
        let gibbs = |v: f64| (-v / eps).exp().max(KERNEL_FLOOR);
        let mut ka = da;
        ka.map_inplace(gibbs);
        let mut kb = db;
        kb.map_inplace(gibbs);
        // K_LL is the landmark rows of K_bL; pinv handles (near-)duplicate
        // landmarks gracefully by truncating tiny singular values.
        let kll = kb.select_rows(&(0..k).map(|l| idx[l]).collect::<Vec<_>>());
        let w = crate::svd::pinv(&kll, 1e-6)?;
        Ok(Self { ka, w, kb, landmarks: idx })
    }

    /// Number of source rows `n`.
    pub fn rows(&self) -> usize {
        self.ka.rows()
    }

    /// Number of target rows `m`.
    pub fn cols(&self) -> usize {
        self.kb.rows()
    }

    /// The target-row indices used as landmarks.
    pub fn landmark_indices(&self) -> &[usize] {
        &self.landmarks
    }

    /// Approximate heap footprint of the factorization in bytes.
    pub fn nbytes(&self) -> usize {
        let k = self.landmarks.len();
        8 * (self.ka.rows() * k + self.kb.rows() * k + k * k) + 8 * k
    }

    /// `out = K̃ v` through the factors, clamped to the kernel floor (the
    /// Nyström approximation can produce small negative entries; Sinkhorn
    /// scalings require positive denominators).
    fn kv_into(&self, v: &[f64], t: &mut Vec<f64>, out: &mut [f64]) {
        t.clear();
        t.extend_from_slice(&self.kb.tr_mul_vec(v));
        let wt = self.w.mul_vec(t);
        self.ka.mul_vec_into(&wt, out);
        for o in out.iter_mut() {
            *o = o.max(KERNEL_FLOOR);
        }
    }

    /// `out = K̃ᵀ u` through the factors, clamped like [`Self::kv_into`].
    fn ktu_into(&self, u: &[f64], t: &mut Vec<f64>, out: &mut [f64]) {
        t.clear();
        t.extend_from_slice(&self.ka.tr_mul_vec(u));
        let wt = self.w.tr_mul_vec(t);
        self.kb.mul_vec_into(&wt, out);
        for o in out.iter_mut() {
            *o = o.max(KERNEL_FLOOR);
        }
    }

    /// Runs the Sinkhorn scaling loop against the factored kernel, returning
    /// the scalings `(u, v)` and how the loop stopped. Mirrors the dense
    /// [`crate::sinkhorn::sinkhorn`] semantics: same update rule, residual
    /// definition (L1 row-marginal violation), telemetry events, and
    /// cooperative budget checks.
    ///
    /// # Errors
    /// [`LinalgError::Singular`] when a scaling denominator degenerates
    /// against positive marginal mass, [`LinalgError::NotFinite`] if the
    /// scalings blow up, [`LinalgError::Interrupted`] on budget expiry.
    ///
    /// # Panics
    /// Panics on marginal length mismatch.
    pub fn solve(
        &self,
        mu: &[f64],
        nu: &[f64],
        params: &SinkhornParams,
    ) -> Result<(Vec<f64>, Vec<f64>, Convergence), LinalgError> {
        let routine = "sinkhorn_landmark";
        let (n, m) = (self.rows(), self.cols());
        assert_eq!(mu.len(), n, "landmark sinkhorn: mu length mismatch");
        assert_eq!(nu.len(), m, "landmark sinkhorn: nu length mismatch");
        let mut u = vec![1.0; n];
        let mut v = vec![1.0; m];
        let mut kv = vec![0.0; n];
        let mut ktu = vec![0.0; m];
        let mut t = Vec::with_capacity(self.landmarks.len());
        let mut iterations = 0;
        let mut last_violation = 0.0;
        let mut hit_tol = false;
        for it in 0..params.max_iter {
            crate::check_budget(routine, it)?;
            telemetry::count_sinkhorn_sweep();
            iterations = it + 1;
            // u ← μ ./ (K̃ v)
            self.kv_into(&v, &mut t, &mut kv);
            scaling_update(mu, &kv, &mut u, routine)?;
            // v ← ν ./ (K̃ᵀ u)
            self.ktu_into(&u, &mut t, &mut ktu);
            scaling_update(nu, &ktu, &mut v, routine)?;
            if !vec_ops::all_finite(&u) || !vec_ops::all_finite(&v) {
                return Err(LinalgError::NotFinite { routine });
            }
            self.kv_into(&v, &mut t, &mut kv);
            let violation = par::sum_indexed(n, 1, |i| (u[i] * kv[i] - mu[i]).abs());
            last_violation = violation;
            telemetry::record_residual(routine, violation);
            if violation < params.tol {
                hit_tol = true;
                break;
            }
        }
        let convergence = if hit_tol {
            Convergence::tolerance(iterations, last_violation)
        } else {
            Convergence::max_iter(iterations, last_violation)
        };
        telemetry::record(routine, convergence);
        Ok((u, v, convergence))
    }

    /// Applies the transport plan to a tall factor without materializing it:
    /// `T̃ · rhs = diag(u) · K_aL · W · K_bLᵀ · diag(v) · rhs`, at
    /// `O((n + m) · k · d)` cost and `O((n + m) · d)` memory. This is the
    /// barycentric-projection step CONE's Procrustes needs (`P · Y_b`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn plan_mul(&self, u: &[f64], v: &[f64], rhs: &DenseMatrix) -> DenseMatrix {
        let (n, m) = (self.rows(), self.cols());
        assert_eq!(u.len(), n, "plan_mul: u length mismatch");
        assert_eq!(v.len(), m, "plan_mul: v length mismatch");
        assert_eq!(rhs.rows(), m, "plan_mul: rhs row mismatch");
        let d = rhs.cols();
        // diag(v) · rhs
        let scaled = DenseMatrix::par_from_fn(m, d, |j, c| v[j] * rhs.get(j, c));
        let t1 = self.kb.tr_matmul(&scaled); // k × d
        let t2 = self.w.matmul(&t1); // k × d
        let t3 = self.ka.matmul(&t2); // n × d
        DenseMatrix::par_from_fn(n, d, |i, c| u[i] * t3.get(i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::{sinkhorn, uniform_marginal};

    fn ring_embeddings(n: usize, phase: f64) -> DenseMatrix {
        DenseMatrix::from_fn(n, 2, |i, j| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64 + phase;
            if j == 0 {
                theta.cos()
            } else {
                theta.sin()
            }
        })
    }

    #[test]
    fn stride_landmarks_are_deterministic_and_bounded() {
        assert_eq!(stride_landmarks(10, 5), vec![0, 2, 4, 6, 8]);
        assert_eq!(stride_landmarks(3, 10), vec![0, 1, 2], "k clamps to m");
        assert_eq!(stride_landmarks(7, 1), vec![0]);
    }

    #[test]
    fn full_landmark_set_matches_dense_sinkhorn_plan() {
        // With k = m landmarks the Nyström factorization is exact (W is the
        // inverse of the full kernel's landmark block = the kernel itself),
        // so the factored plan must match the dense plan closely.
        let n = 12;
        let xa = ring_embeddings(n, 0.0);
        let xb = ring_embeddings(n, 0.05);
        let params = SinkhornParams { epsilon: 0.2, max_iter: 500, tol: 1e-10 };
        let lk = LandmarkSinkhorn::build(&xa, &xb, n, params.epsilon).unwrap();
        let (u, v, conv) = lk.solve(&uniform_marginal(n), &uniform_marginal(n), &params).unwrap();
        assert!(conv.converged);
        // Dense reference on the same normalized cost.
        let mut cost =
            DenseMatrix::par_from_fn(n, n, |i, j| crate::vec_ops::dist2_sq(xa.row(i), xb.row(j)));
        let scale = cost.max_abs().max(1e-12);
        cost.map_inplace(|c| c / scale);
        let (t_dense, _) =
            sinkhorn(&cost, &uniform_marginal(n), &uniform_marginal(n), &params).unwrap();
        // Compare plan actions on the identity factor.
        let eye = DenseMatrix::identity(n);
        let t_fact = lk.plan_mul(&u, &v, &eye);
        assert!(
            t_fact.sub(&t_dense).max_abs() < 1e-4,
            "exact-landmark plan should match dense: {}",
            t_fact.sub(&t_dense).max_abs()
        );
    }

    #[test]
    fn sampled_landmarks_approximately_satisfy_marginals() {
        let n = 64;
        let xa = ring_embeddings(n, 0.0);
        let xb = ring_embeddings(n, 0.02);
        let params = SinkhornParams { epsilon: 0.1, max_iter: 400, tol: 1e-9 };
        let lk = LandmarkSinkhorn::build(&xa, &xb, 16, params.epsilon).unwrap();
        assert_eq!(lk.landmark_indices().len(), 16);
        let mu = uniform_marginal(n);
        let nu = uniform_marginal(n);
        let (u, v, _) = lk.solve(&mu, &nu, &params).unwrap();
        // Row marginals of the factored plan.
        let eye = DenseMatrix::identity(n);
        let t = lk.plan_mul(&u, &v, &eye);
        for i in 0..n {
            let row: f64 = t.row(i).iter().sum();
            assert!((row - mu[i]).abs() < 1e-5, "row {i}: {row} vs {}", mu[i]);
        }
    }

    #[test]
    fn solve_is_deterministic_across_thread_counts() {
        let n = 48;
        let xa = ring_embeddings(n, 0.0);
        let xb = ring_embeddings(n, 0.1);
        let params = SinkhornParams { epsilon: 0.1, max_iter: 100, tol: 1e-8 };
        let run = || {
            let lk = LandmarkSinkhorn::build(&xa, &xb, 12, params.epsilon).unwrap();
            let (u, v, _) = lk.solve(&uniform_marginal(n), &uniform_marginal(n), &params).unwrap();
            (u, v)
        };
        graphalign_par::set_max_threads(1);
        let (u1, v1) = run();
        graphalign_par::set_max_threads(8);
        let (u8, v8) = run();
        graphalign_par::set_max_threads(0);
        assert_eq!(u1, u8, "scalings bit-identical at any thread count");
        assert_eq!(v1, v8);
    }

    #[test]
    fn rejects_non_finite_embeddings() {
        let xa = DenseMatrix::from_rows(&[&[f64::NAN, 0.0], &[0.0, 1.0]]);
        let xb = DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let err = LandmarkSinkhorn::build(&xa, &xb, 2, 0.1).unwrap_err();
        assert!(matches!(err, LinalgError::NotFinite { .. }));
    }

    #[test]
    fn expired_budget_interrupts_solve() {
        let xa = ring_embeddings(8, 0.0);
        let xb = ring_embeddings(8, 0.0);
        let lk = LandmarkSinkhorn::build(&xa, &xb, 4, 0.1).unwrap();
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = lk
            .solve(&uniform_marginal(8), &uniform_marginal(8), &SinkhornParams::default())
            .unwrap_err();
        assert!(err.is_interrupted(), "got {err:?}");
    }
}
