//! Householder QR factorization.
//!
//! Used for (a) re-orthonormalizing the low-rank factors LREA accumulates,
//! (b) the Lanczos restart path, and (c) as the preconditioning step of the
//! thin SVD in [`crate::svd`].

use crate::dense::DenseMatrix;
use graphalign_par as par;

/// A thin QR factorization `A = Q R` with `Q` of shape `m × k`,
/// `R` of shape `k × k`, `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct ThinQr {
    /// Orthonormal columns spanning the column space of `A`.
    pub q: DenseMatrix,
    /// Upper-triangular factor.
    pub r: DenseMatrix,
}

/// Computes a thin Householder QR factorization of `a` (`m × n`).
///
/// Works for any shape; for `m < n` the factorization is `A = Q R` with `Q`
/// `m × m` orthogonal and `R` `m × n` upper-trapezoidal.
pub fn thin_qr(a: &DenseMatrix) -> ThinQr {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Householder vectors stored column-by-column.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        // Build the Householder reflector for column j, rows j..m.
        let mut v: Vec<f64> = (j..m).map(|i| r.get(i, j)).collect();
        let alpha = {
            let norm = crate::vec_ops::norm2(&v);
            if v[0] >= 0.0 {
                -norm
            } else {
                norm
            }
        };
        if alpha == 0.0 {
            // Column already zero below the diagonal; identity reflector.
            vs.push(vec![0.0; m - j]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = crate::vec_ops::norm2(&v);
        if vnorm <= f64::MIN_POSITIVE {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        for vi in v.iter_mut() {
            *vi /= vnorm;
        }
        // Apply reflector H = I - 2 v vᵀ to R[j.., j..]. The per-column dot
        // products `vᵀ R[j.., col]` are independent and run in parallel, as
        // do the row-block updates; arithmetic order per entry is unchanged.
        let dots = {
            let r_ro = &r;
            par::map_collect(n - j, m - j, |c| {
                let mut dot = 0.0;
                for (t, &vi) in v.iter().enumerate() {
                    dot += vi * r_ro.get(j + t, j + c);
                }
                dot
            })
        };
        let sub = &mut r.as_mut_slice()[j * n..];
        par::for_each_row_block_mut(sub, n, n - j, |rows, block| {
            for (off, row) in block.chunks_mut(n).enumerate() {
                let vi = v[rows.start + off];
                for (c, &d) in dots.iter().enumerate() {
                    row[j + c] -= 2.0 * d * vi;
                }
            }
        });
        vs.push(v);
    }
    // Accumulate Q by applying the reflectors (in reverse) to the first k
    // columns of the identity.
    let mut q = DenseMatrix::zeros(m, k);
    for j in 0..k {
        q.set(j, j, 1.0);
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        let dots = {
            let q_ro = &q;
            par::map_collect(k, m - j, |col| {
                let mut dot = 0.0;
                for (t, &vi) in v.iter().enumerate() {
                    dot += vi * q_ro.get(j + t, col);
                }
                dot
            })
        };
        let sub = &mut q.as_mut_slice()[j * k..];
        par::for_each_row_block_mut(sub, k, k, |rows, block| {
            for (off, row) in block.chunks_mut(k).enumerate() {
                let vi = v[rows.start + off];
                for (col, &d) in dots.iter().enumerate() {
                    row[col] -= 2.0 * d * vi;
                }
            }
        });
    }
    // Truncate R to k × n (thin form).
    let mut r_thin = DenseMatrix::zeros(k, n);
    for i in 0..k {
        for j in 0..n {
            r_thin.set(i, j, r.get(i, j));
        }
    }
    ThinQr { q, r: r_thin }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &DenseMatrix, tol: f64) {
        let gram = q.tr_matmul(q);
        let id = DenseMatrix::identity(q.cols());
        assert!(gram.sub(&id).max_abs() < tol, "QᵀQ != I: {}", gram.sub(&id).max_abs());
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let f = thin_qr(&a);
        assert_eq!(f.q.shape(), (4, 2));
        assert_eq!(f.r.shape(), (2, 2));
        assert_orthonormal_cols(&f.q, 1e-12);
        assert!(f.q.matmul(&f.r).sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn qr_reconstructs_wide_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 7.0]]);
        let f = thin_qr(&a);
        assert_eq!(f.q.shape(), (2, 2));
        assert_eq!(f.r.shape(), (2, 3));
        assert_orthonormal_cols(&f.q, 1e-12);
        assert!(f.q.matmul(&f.r).sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let f = thin_qr(&a);
        for i in 0..f.r.rows() {
            for j in 0..i.min(f.r.cols()) {
                assert!(f.r.get(i, j).abs() < 1e-12, "R[{i}][{j}] not zero");
            }
        }
    }

    #[test]
    fn rank_deficient_input_still_reconstructs() {
        // Second column is a multiple of the first.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let f = thin_qr(&a);
        assert!(f.q.matmul(&f.r).sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn random_matrices_reconstruct() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, n) in &[(6, 6), (10, 4), (4, 10), (1, 5), (5, 1)] {
            let a = DenseMatrix::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0));
            let f = thin_qr(&a);
            assert!(
                f.q.matmul(&f.r).sub(&a).max_abs() < 1e-11,
                "reconstruction failed for {m}x{n}"
            );
            assert_orthonormal_cols(&f.q, 1e-10);
        }
    }
}
