//! Row-major dense `f64` matrices.
//!
//! [`DenseMatrix`] is the workhorse representation for the similarity matrices
//! the alignment algorithms exchange with the assignment solvers, for
//! embedding matrices (rows = nodes), and for the small square systems inside
//! the eigen/SVD/QR routines. Hot products are parallelized over row blocks
//! through [`graphalign_par`] (matching the paper's many-core testbed); the
//! chunking is deterministic, so results are identical for any thread count
//! and for the sequential `--no-default-features` build.

use crate::simd;
use crate::vec_ops;
use crate::workspace::Workspace;
use graphalign_par as par;

/// k-tile depth of the blocked product: one packed strip covers up to
/// `GEMM_KC` rows of the right-hand side.
const GEMM_KC: usize = 256;
/// Column width of one packed panel: `GEMM_KC × GEMM_NC` f64 ≈ 256 KB,
/// sized so a panel stays L2-resident while every output row streams over
/// it, and an `nc`-wide output segment stays in L1.
const GEMM_NC: usize = 128;
/// Multiply-add count below which the plain triple loop beats packing.
const GEMM_SMALL: usize = 1 << 15;

/// Cache-blocked row-major GEMM core: `out ← a · b` with `a: m×k`, `b: k×n`.
///
/// The right-hand side is packed one k-strip at a time into panel-major
/// scratch (drawn from `ws`), and the strip's contribution is added to
/// every output row in parallel over the fixed row-block schedule. Each
/// output element accumulates its k terms in ascending order — strips
/// ascending, then ascending within a strip — so the result is
/// bit-identical to the naive ikj loop at every thread count and for any
/// blocking parameters.
fn gemm_core(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    ws: &mut Workspace,
) {
    debug_assert_eq!(a.len(), m * k, "gemm_core: lhs length mismatch");
    debug_assert_eq!(b.len(), k * n, "gemm_core: rhs length mismatch");
    debug_assert_eq!(out.len(), m * n, "gemm_core: output length mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    if m * k * n <= GEMM_SMALL {
        for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            for (&a_il, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                for (o, &b_lj) in out_row.iter_mut().zip(b_row) {
                    *o += a_il * b_lj;
                }
            }
        }
        return;
    }
    let mut packed = ws.take(GEMM_KC.min(k) * GEMM_NC.min(n));
    for kt in (0..k).step_by(GEMM_KC) {
        let kc = GEMM_KC.min(k - kt);
        for jt in (0..n).step_by(GEMM_NC) {
            let nc = GEMM_NC.min(n - jt);
            // Pack just this kc×nc panel into micro-strip layout (see
            // simd::pack_panel): one panel is ≈ kc·nc·8 bytes, small enough
            // to stay L2-resident while every output row streams over it,
            // and the microkernels read it purely sequentially.
            let panel = &mut packed[..kc * nc];
            simd::pack_panel(b, n, kt, jt, kc, nc, panel);
            let panel = &packed[..kc * nc];
            par::for_each_row_block_mut(out, n, kc.saturating_mul(nc), |rows, block| {
                // Rows four at a time: the 4×8 register tile loads each
                // packed strip row once per four output rows. None of the
                // blocking changes which terms reach an output element or
                // in what order: each element is touched exactly once per
                // (kt, jt) pair, accumulating ascending-`l` — strips
                // ascending, ascending within a strip.
                let nrows = block.len() / n;
                let seg = |r: usize| {
                    let base = (rows.start + r) * k + kt;
                    &a[base..base + kc]
                };
                let mut r = 0;
                while r + 4 <= nrows {
                    let quad = &mut block[r * n..(r + 4) * n];
                    let (q0, rest) = quad.split_at_mut(n);
                    let (q1, rest) = rest.split_at_mut(n);
                    let (q2, q3) = rest.split_at_mut(n);
                    simd::gemm_tile4_packed(
                        [seg(r), seg(r + 1), seg(r + 2), seg(r + 3)],
                        panel,
                        nc,
                        &mut q0[jt..jt + nc],
                        &mut q1[jt..jt + nc],
                        &mut q2[jt..jt + nc],
                        &mut q3[jt..jt + nc],
                    );
                    r += 4;
                }
                for out_row in block[r * n..nrows * n].chunks_mut(n) {
                    simd::gemm_tile1_packed(seg(r), panel, nc, &mut out_row[jt..jt + nc]);
                    r += 1;
                }
            });
        }
    }
    ws.give(packed);
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position, in
    /// parallel over row blocks for large matrices.
    ///
    /// Unlike [`DenseMatrix::from_fn`] the closure must be pure (`Fn + Sync`);
    /// use this for hot constructors such as similarity matrices where `f`
    /// only reads shared data.
    pub fn par_from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let mut data = vec![0.0; rows * cols];
        par::for_each_row_block_mut(&mut data, cols.max(1), cols, |row_range, block| {
            for (off, row) in block.chunks_mut(cols.max(1)).enumerate() {
                let i = row_range.start + off;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = f(i, j);
                }
            }
        });
        Self { rows, cols, data }
    }

    /// Overwrites every entry with `f(row, col)`, in parallel over row
    /// blocks — the in-place counterpart of [`DenseMatrix::par_from_fn`] for
    /// pooled buffers, filling the same values bit for bit.
    pub fn par_fill_from_fn(&mut self, f: impl Fn(usize, usize) -> f64 + Sync) {
        let cols = self.cols;
        par::for_each_row_block_mut(&mut self.data, cols.max(1), cols, |row_range, block| {
            for (off, row) in block.chunks_mut(cols.max(1)).enumerate() {
                let i = row_range.start + off;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = f(i, j);
                }
            }
        });
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy, parallelized over output rows.
    pub fn transpose(&self) -> DenseMatrix {
        let mut data = vec![0.0; self.rows * self.cols];
        self.transpose_into_buf(&mut data);
        DenseMatrix { rows: self.cols, cols: self.rows, data }
    }

    /// Transposed copy into a caller-provided `cols × rows` matrix.
    ///
    /// # Panics
    /// Panics if `out` is not `self.cols() × self.rows()`.
    pub fn transpose_into(&self, out: &mut DenseMatrix) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into: output shape mismatch");
        self.transpose_into_buf(&mut out.data);
    }

    fn transpose_into_buf(&self, out: &mut [f64]) {
        let r = self.rows;
        debug_assert_eq!(out.len(), r * self.cols);
        par::for_each_row_block_mut(out, r.max(1), r, |out_rows, block| {
            for (off, out_row) in block.chunks_mut(r.max(1)).enumerate() {
                let j = out_rows.start + off;
                for (i, o) in out_row.iter_mut().enumerate() {
                    *o = self.get(i, j);
                }
            }
        });
    }

    /// Matrix product `self * rhs`: cache-blocked with packed right-hand
    /// panels ([`Self::matmul_into`]), parallelized over rows of `self`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out, &mut Workspace::new());
        out
    }

    /// Matrix product `self * rhs` into a caller-provided matrix, with
    /// packing scratch drawn from `ws` — the allocation-free form hot
    /// loops call every iteration. The blocked schedule accumulates each
    /// output element in ascending shared-index order, so results are
    /// bit-identical to the naive triple loop at every thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into: output shape mismatch");
        par::telemetry::count_matmul();
        gemm_core(self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data, ws);
    }

    /// `selfᵀ * rhs`.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn tr_matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, rhs.cols);
        self.tr_matmul_into(rhs, &mut out, &mut Workspace::new());
        out
    }

    /// `selfᵀ * rhs` into a caller-provided matrix. The transpose is
    /// materialized once into `ws` scratch and multiplied with the blocked
    /// core, which keeps the per-element ascending shared-index summation
    /// order (bit-identical to the former streaming implementation) while
    /// making the product parallel and cache-blocked.
    ///
    /// # Panics
    /// Panics on row-count or output-shape mismatch.
    pub fn tr_matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) {
        assert_eq!(self.rows, rhs.rows, "tr_matmul: row counts differ");
        assert_eq!(out.shape(), (self.cols, rhs.cols), "tr_matmul_into: output shape mismatch");
        par::telemetry::count_matmul();
        let mut t = ws.take(self.rows * self.cols);
        self.transpose_into_buf(&mut t);
        gemm_core(self.cols, self.rows, rhs.cols, &t, &rhs.data, &mut out.data, ws);
        ws.give(t);
    }

    /// `self * rhsᵀ`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_tr(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        self.matmul_tr_into(rhs, &mut out, &mut Workspace::new());
        out
    }

    /// `self * rhsᵀ` into a caller-provided matrix; `rhs` is transposed
    /// once into `ws` scratch and fed to the blocked core. Per-element
    /// summation order (ascending shared index) matches the former
    /// dot-product implementation bit for bit.
    ///
    /// # Panics
    /// Panics on column-count or output-shape mismatch.
    pub fn matmul_tr_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) {
        assert_eq!(self.cols, rhs.cols, "matmul_tr: column counts differ");
        assert_eq!(out.shape(), (self.rows, rhs.rows), "matmul_tr_into: output shape mismatch");
        par::telemetry::count_matmul();
        let mut t = ws.take(rhs.rows * rhs.cols);
        rhs.transpose_into_buf(&mut t);
        gemm_core(self.rows, self.cols, rhs.rows, &self.data, &t, &mut out.data, ws);
        ws.give(t);
    }

    /// Matrix–vector product `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Matrix–vector product into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x length mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec: out length mismatch");
        par::for_each_chunk_mut(out, self.cols, |_, range, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                *o = vec_ops::dot(self.row(range.start + off), x);
            }
        });
    }

    /// Vector–matrix product `xᵀ * self` (i.e. `selfᵀ x`).
    ///
    /// Parallelized as a chunked reduction over rows: per-chunk partial
    /// vectors are combined in chunk order, so the result is thread-count
    /// independent (fixed chunk boundaries, see [`graphalign_par`]).
    pub fn tr_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.tr_mul_vec_into(x, &mut out);
        out
    }

    /// [`Self::tr_mul_vec`] into a caller-provided buffer: the same chunked
    /// reduction (partials combined in chunk order, zero entries of `x`
    /// skipped), so the bit pattern is unchanged — only the output
    /// allocation moves to the caller.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn tr_mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "tr_mul_vec: x length mismatch");
        assert_eq!(out.len(), self.cols, "tr_mul_vec: out length mismatch");
        let cols = self.cols;
        let partials = par::fold_chunks(self.rows, cols, |rows| {
            let mut acc = vec![0.0; cols];
            for i in rows {
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                vec_ops::axpy(xi, self.row(i), &mut acc);
            }
            acc
        });
        out.fill(0.0);
        for part in partials {
            for (o, p) in out.iter_mut().zip(&part) {
                *o += p;
            }
        }
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// Entry-wise difference `self − rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self ← self + alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, rhs: &DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        vec_ops::axpy(alpha, &rhs.data, &mut self.data);
    }

    /// Out-of-place `out ← self + alpha * rhs` — the allocation-free form
    /// of `self.clone()` followed by [`Self::add_scaled`], bit-identical to
    /// that sequence.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled_into(&self, alpha: f64, rhs: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled_into: shape mismatch");
        assert_eq!(self.shape(), out.shape(), "add_scaled_into: output shape mismatch");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a + alpha * b;
        }
    }

    /// Copies `rhs` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, rhs: &DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "copy_from: shape mismatch");
        self.data.copy_from_slice(&rhs.data);
    }

    /// Scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> DenseMatrix {
        let data = self.data.iter().map(|v| alpha * v).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scaling `self ← alpha * self`.
    pub fn scale_inplace(&mut self, alpha: f64) {
        vec_ops::scale(alpha, &mut self.data);
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        par::for_each_chunk_mut(&mut self.data, 1, |_, _, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }

    /// Frobenius norm `‖self‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        vec_ops::norm2(&self.data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        vec_ops::sum(&self.data)
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        vec_ops::all_finite(&self.data)
    }

    /// Normalizes every row to unit Euclidean norm; zero rows are left as-is.
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        par::for_each_row_block_mut(&mut self.data, cols.max(1), cols, |_, block| {
            for row in block.chunks_mut(cols.max(1)) {
                vec_ops::normalize(row);
            }
        });
    }

    /// Extracts the sub-matrix with the given rows (in order).
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal stack `[self | rhs]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows, "hstack: row counts differ");
        let mut out = DenseMatrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Vertical stack `[self; rhs]`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.cols, "vstack: column counts differ");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        DenseMatrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &DenseMatrix, b: &DenseMatrix, tol: f64) -> bool {
        a.shape() == b.shape() && a.sub(b).max_abs() < tol
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert!(approx(&a.matmul(&i), &a, 1e-15));
        assert!(approx(&i.matmul(&a), &a, 1e-15));
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tr_matmul_equals_explicit_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(approx(&a.tr_matmul(&b), &a.transpose().matmul(&b), 1e-14));
    }

    #[test]
    fn matmul_tr_equals_explicit_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert!(approx(&a.matmul_tr(&b), &a.matmul(&b.transpose()), 1e-14));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_and_tr_mul_vec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_mul_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn row_normalization_makes_unit_rows_and_keeps_zero_rows() {
        let mut a = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows();
        assert!((crate::vec_ops::norm2(a.row(0)) - 1.0).abs() < 1e-15);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn stacking() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hstack(&b), DenseMatrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vstack(&b), DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn select_rows_reorders() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.select_rows(&[2, 0]), DenseMatrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn frobenius_and_sum() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn blocked_matmul_matches_naive_ikj_bitwise() {
        // 37·41·33 > GEMM_SMALL forces the packed path; the odd shared
        // dimension exercises the microkernel tail, 37 rows the non-quad
        // remainder, and 33 columns a partial panel.
        let (m, k, n) = (37, 41, 33);
        assert!(m * k * n > GEMM_SMALL);
        let a = DenseMatrix::from_fn(m, k, |i, j| ((i * 13 + j * 7) as f64).sin());
        let b = DenseMatrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) as f64).cos());
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a.get(i, l) * b.get(l, j);
                }
                assert_eq!(c.get(i, j).to_bits(), acc.to_bits(), "element ({i}, {j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul: inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
