//! Row-major dense `f64` matrices.
//!
//! [`DenseMatrix`] is the workhorse representation for the similarity matrices
//! the alignment algorithms exchange with the assignment solvers, for
//! embedding matrices (rows = nodes), and for the small square systems inside
//! the eigen/SVD/QR routines. Hot products are parallelized over row blocks
//! through [`graphalign_par`] (matching the paper's many-core testbed); the
//! chunking is deterministic, so results are identical for any thread count
//! and for the sequential `--no-default-features` build.

use crate::vec_ops;
use graphalign_par as par;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position, in
    /// parallel over row blocks for large matrices.
    ///
    /// Unlike [`DenseMatrix::from_fn`] the closure must be pure (`Fn + Sync`);
    /// use this for hot constructors such as similarity matrices where `f`
    /// only reads shared data.
    pub fn par_from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let mut data = vec![0.0; rows * cols];
        par::for_each_row_block_mut(&mut data, cols.max(1), cols, |row_range, block| {
            for (off, row) in block.chunks_mut(cols.max(1)).enumerate() {
                let i = row_range.start + off;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = f(i, j);
                }
            }
        });
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy, parallelized over output rows.
    pub fn transpose(&self) -> DenseMatrix {
        let (r, c) = (self.rows, self.cols);
        let mut data = vec![0.0; r * c];
        par::for_each_row_block_mut(&mut data, r.max(1), r, |out_rows, block| {
            for (off, out_row) in block.chunks_mut(r.max(1)).enumerate() {
                let j = out_rows.start + off;
                for (i, o) in out_row.iter_mut().enumerate() {
                    *o = self.get(i, j);
                }
            }
        });
        DenseMatrix { rows: c, cols: r, data }
    }

    /// Matrix product `self * rhs`, parallelized over rows of `self`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        par::telemetry::count_matmul();
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; m * n];
        par::for_each_row_block_mut(&mut out, n.max(1), k.saturating_mul(n), |rows, block| {
            for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let a_row = self.row(rows.start + off);
                // ikj loop order: stream through rhs rows, accumulate into out_row.
                for (l, &a_il) in a_row.iter().enumerate().take(k) {
                    if a_il == 0.0 {
                        continue;
                    }
                    let b_row = rhs.row(l);
                    for (o, &b_lj) in out_row.iter_mut().zip(b_row) {
                        *o += a_il * b_lj;
                    }
                }
            }
        });
        DenseMatrix { rows: m, cols: n, data: out }
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn tr_matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows, "tr_matmul: row counts differ");
        par::telemetry::count_matmul();
        let (m, n) = (self.cols, rhs.cols);
        let mut out = DenseMatrix::zeros(m, n);
        for l in 0..self.rows {
            let a_row = self.row(l);
            let b_row = rhs.row(l);
            for (i, &a_li) in a_row.iter().enumerate() {
                if a_li == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b_lj) in out_row.iter_mut().zip(b_row) {
                    *o += a_li * b_lj;
                }
            }
        }
        out
    }

    /// `self * rhsᵀ`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_tr(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.cols, "matmul_tr: column counts differ");
        par::telemetry::count_matmul();
        let (m, n) = (self.rows, rhs.rows);
        let k = self.cols;
        let mut out = vec![0.0; m * n];
        par::for_each_row_block_mut(&mut out, n.max(1), k.saturating_mul(n), |rows, block| {
            for (off, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let a_row = self.row(rows.start + off);
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = vec_ops::dot(a_row, rhs.row(j));
                }
            }
        });
        DenseMatrix { rows: m, cols: n, data: out }
    }

    /// Matrix–vector product `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Matrix–vector product into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x length mismatch");
        assert_eq!(out.len(), self.rows, "mul_vec: out length mismatch");
        par::for_each_chunk_mut(out, self.cols, |_, range, chunk| {
            for (off, o) in chunk.iter_mut().enumerate() {
                *o = vec_ops::dot(self.row(range.start + off), x);
            }
        });
    }

    /// Vector–matrix product `xᵀ * self` (i.e. `selfᵀ x`).
    ///
    /// Parallelized as a chunked reduction over rows: per-chunk partial
    /// vectors are combined in chunk order, so the result is thread-count
    /// independent (fixed chunk boundaries, see [`graphalign_par`]).
    pub fn tr_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_mul_vec: x length mismatch");
        let cols = self.cols;
        let partials = par::fold_chunks(self.rows, cols, |rows| {
            let mut acc = vec![0.0; cols];
            for i in rows {
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                vec_ops::axpy(xi, self.row(i), &mut acc);
            }
            acc
        });
        let mut out = vec![0.0; cols];
        for part in partials {
            for (o, p) in out.iter_mut().zip(&part) {
                *o += p;
            }
        }
        out
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// Entry-wise difference `self − rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self ← self + alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, rhs: &DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled: shape mismatch");
        vec_ops::axpy(alpha, &rhs.data, &mut self.data);
    }

    /// Scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> DenseMatrix {
        let data = self.data.iter().map(|v| alpha * v).collect();
        DenseMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scaling `self ← alpha * self`.
    pub fn scale_inplace(&mut self, alpha: f64) {
        vec_ops::scale(alpha, &mut self.data);
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        par::for_each_chunk_mut(&mut self.data, 1, |_, _, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }

    /// Frobenius norm `‖self‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        vec_ops::norm2(&self.data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        vec_ops::sum(&self.data)
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        vec_ops::all_finite(&self.data)
    }

    /// Normalizes every row to unit Euclidean norm; zero rows are left as-is.
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        par::for_each_row_block_mut(&mut self.data, cols.max(1), cols, |_, block| {
            for row in block.chunks_mut(cols.max(1)) {
                vec_ops::normalize(row);
            }
        });
    }

    /// Extracts the sub-matrix with the given rows (in order).
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal stack `[self | rhs]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, rhs.rows, "hstack: row counts differ");
        let mut out = DenseMatrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Vertical stack `[self; rhs]`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.cols, "vstack: column counts differ");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        DenseMatrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &DenseMatrix, b: &DenseMatrix, tol: f64) -> bool {
        a.shape() == b.shape() && a.sub(b).max_abs() < tol
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert!(approx(&a.matmul(&i), &a, 1e-15));
        assert!(approx(&i.matmul(&a), &a, 1e-15));
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tr_matmul_equals_explicit_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(approx(&a.tr_matmul(&b), &a.transpose().matmul(&b), 1e-14));
    }

    #[test]
    fn matmul_tr_equals_explicit_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert!(approx(&a.matmul_tr(&b), &a.matmul(&b.transpose()), 1e-14));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_and_tr_mul_vec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_mul_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn row_normalization_makes_unit_rows_and_keeps_zero_rows() {
        let mut a = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows();
        assert!((crate::vec_ops::norm2(a.row(0)) - 1.0).abs() < 1e-15);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn stacking() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hstack(&b), DenseMatrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vstack(&b), DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn select_rows_reorders() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.select_rows(&[2, 0]), DenseMatrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn frobenius_and_sum() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
